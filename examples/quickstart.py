#!/usr/bin/env python
"""Quickstart: few-shot power modeling with AutoPower.

Train on two known configurations (C1, C15) and predict the power of an
unseen configuration (C8) on every workload — the paper's core scenario.

Run:  python examples/quickstart.py
"""

from repro import AutoPower, VlsiFlow, WORKLOADS, config_by_name
from repro.ml.metrics import mape

def main() -> None:
    # The synthetic EDA flow plays the role of the paper's
    # Chipyard + VCS + Design Compiler + PrimePower + gem5 stack.
    flow = VlsiFlow()

    # Few-shot training: only two known configurations.
    train_configs = [config_by_name("C1"), config_by_name("C15")]
    print("training AutoPower on:", [c.name for c in train_configs])
    model = AutoPower(library=flow.library).fit(flow, train_configs, list(WORKLOADS))

    # Predict an unseen configuration.
    target = config_by_name("C8")
    print(f"\npredicting {target.name} (never seen during training):\n")
    print(f"{'workload':>12s} {'golden mW':>10s} {'predicted mW':>12s} {'error %':>8s}")
    golden_all, pred_all = [], []
    for workload in WORKLOADS:
        run = flow.run(target, workload)          # golden reference
        predicted = model.predict_total(target, run.events, workload)
        golden = run.power.total
        err = abs(predicted - golden) / golden * 100.0
        golden_all.append(golden)
        pred_all.append(predicted)
        print(f"{workload.name:>12s} {golden:10.2f} {predicted:12.2f} {err:8.2f}")

    print(f"\nMAPE on {target.name}: {mape(golden_all, pred_all):.2f}%")

    # Per-group view of one prediction (the power-group decoupling).
    run = flow.run(target, WORKLOADS[0])
    report = model.predict_report(target, run.events, WORKLOADS[0])
    print(f"\npower groups for {target.name} / {WORKLOADS[0].name}:")
    for group in ("clock", "sram", "register", "comb"):
        print(f"  {group:>9s}: {report.group_total(group):8.2f} mW")
    print(f"  {'total':>9s}: {report.total:8.2f} mW")


if __name__ == "__main__":
    main()
