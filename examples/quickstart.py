#!/usr/bin/env python
"""Quickstart: few-shot power modeling through the ``repro.api`` façade.

Train on two known configurations (C1, C15) and predict the power of an
unseen configuration (C8) on every workload — the paper's core scenario.
Methods are resolved by registry name (``api.fit("autopower", ...)``), so
swapping in a baseline is a one-string change.

Run:  python examples/quickstart.py
"""

import repro.api as api
from repro import VlsiFlow, WORKLOADS, config_by_name
from repro.ml.metrics import mape

def main() -> None:
    # The synthetic EDA flow plays the role of the paper's
    # Chipyard + VCS + Design Compiler + PrimePower + gem5 stack.
    flow = VlsiFlow()

    # Few-shot training: only two known configurations.  Any registered
    # method fits through the same call — api.list_methods() names them.
    train_configs = [config_by_name("C1"), config_by_name("C15")]
    print("training AutoPower on:", [c.name for c in train_configs])
    model = api.fit(
        "autopower", flow=flow, train_configs=train_configs,
        workloads=list(WORKLOADS),
    )

    # Predict an unseen configuration.
    target = config_by_name("C8")
    print(f"\npredicting {target.name} (never seen during training):\n")
    print(f"{'workload':>12s} {'golden mW':>10s} {'predicted mW':>12s} {'error %':>8s}")
    golden_all, pred_all = [], []
    for workload in WORKLOADS:
        run = flow.run(target, workload)          # golden reference
        predicted = model.predict_total(target, run.events, workload)
        golden = run.power.total
        err = abs(predicted - golden) / golden * 100.0
        golden_all.append(golden)
        pred_all.append(predicted)
        print(f"{workload.name:>12s} {golden:10.2f} {predicted:12.2f} {err:8.2f}")

    print(f"\nMAPE on {target.name}: {mape(golden_all, pred_all):.2f}%")

    # Per-group view of one prediction (the power-group decoupling).
    run = flow.run(target, WORKLOADS[0])
    report = model.predict_report(target, run.events, WORKLOADS[0])
    print(f"\npower groups for {target.name} / {WORKLOADS[0].name}:")
    for group in ("clock", "sram", "register", "comb"):
        print(f"  {group:>9s}: {report.group_total(group):8.2f} mW")
    print(f"  {'total':>9s}: {report.total:8.2f} mW")

    # The hand-off artifact: save the fitted model (format-v2 JSON), load
    # it back, and serve predictions through the batched service — the
    # architects' side needs no EDA flow at all.
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "autopower.json"
        api.save_model(model, path)
        service = api.PredictionService(api.load_model(path))
        requests = [
            api.PredictRequest(target, flow.run(target, w).events, w)
            for w in WORKLOADS
        ]
        responses = service.submit_many(requests)  # one fused batch call
        worst = max(
            abs(r.total - p) / p for r, p in zip(responses, pred_all)
        )
        print(f"\nsaved + reloaded model serves {len(responses)} requests "
              f"in {service.stats.model_calls} batched model call(s); "
              f"round-trip drift {worst:.2e}")


if __name__ == "__main__":
    main()
