#!/usr/bin/env python
"""Design-space exploration with a few-shot power model.

The paper's motivation: architects need fast, accurate early power
estimates to steer microarchitecture exploration.  This example trains
AutoPower on two known configurations, then ranks *all* 15 BOOM
configurations by performance, predicted power and energy efficiency —
without running the slow reference flow on any unseen design point.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro import AutoPower, BOOM_CONFIGS, VlsiFlow, WORKLOADS, config_by_name
from repro.sim.perf import PerfSimulator


def main() -> None:
    flow = VlsiFlow()
    train = [config_by_name("C1"), config_by_name("C15")]
    model = AutoPower(library=flow.library).fit(flow, train, list(WORKLOADS))
    perf = PerfSimulator()

    print("exploring 15 configurations x 8 workloads "
          "(power from AutoPower, performance from the gem5-like simulator)\n")

    rows = []
    for config in BOOM_CONFIGS:
        ipcs, powers = [], []
        for workload in WORKLOADS:
            events = perf.run(config, workload)  # architecture-level only
            ipcs.append(events.ipc)
            powers.append(model.predict_total(config, events, workload))
        ipc = float(np.mean(ipcs))
        power = float(np.mean(powers))
        rows.append((config.name, ipc, power, ipc / power * 1000.0))

    print(f"{'config':>6s} {'mean IPC':>9s} {'pred. power mW':>15s} {'IPC/W':>8s}  note")
    best_eff = max(r[3] for r in rows)
    for name, ipc, power, eff in rows:
        marks = []
        if name in ("C1", "C15"):
            marks.append("train")
        if eff == best_eff:
            marks.append("<-- most efficient")
        print(f"{name:>6s} {ipc:9.2f} {power:15.1f} {eff:8.1f}  {' '.join(marks)}")

    # A simple Pareto front over (IPC up, power down).
    pareto = []
    for name, ipc, power, _ in rows:
        dominated = any(
            other_ipc >= ipc and other_power <= power and (other_ipc, other_power) != (ipc, power)
            for _, other_ipc, other_power, _ in rows
        )
        if not dominated:
            pareto.append(name)
    print("\nPareto-optimal configurations (IPC vs predicted power):", ", ".join(pareto))


if __name__ == "__main__":
    main()
