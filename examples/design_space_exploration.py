#!/usr/bin/env python
"""Design-space exploration with a few-shot power model.

The paper's motivation: architects need fast, accurate early power
estimates to steer microarchitecture exploration.  This example trains
AutoPower on two known configurations, then ranks *all* 15 BOOM
configurations by performance, predicted power and energy efficiency —
without running the slow reference flow on any unseen design point.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

import repro.api as api
from repro import BOOM_CONFIGS, VlsiFlow, WORKLOADS, config_by_name
from repro.sim.perf import PerfSimulator


def main() -> None:
    flow = VlsiFlow()
    train = [config_by_name("C1"), config_by_name("C15")]
    model = api.fit(
        "autopower", flow=flow, train_configs=train, workloads=list(WORKLOADS)
    )
    perf = PerfSimulator()

    print("exploring 15 configurations x 8 workloads "
          "(power from AutoPower, performance from the gem5-like simulator)\n")

    # The whole 15 x 8 grid goes through the batched prediction service:
    # one coalesced model call per configuration instead of 120 scalar
    # calls, with identical numbers.
    requests = [
        api.PredictRequest(config, perf.run(config, w), w)
        for config in BOOM_CONFIGS
        for w in WORKLOADS
    ]
    service = api.PredictionService(model)
    responses = service.submit_many(requests)
    print(f"({len(requests)} predictions served by "
          f"{service.stats.model_calls} batched model calls)\n")

    rows = []
    for i, config in enumerate(BOOM_CONFIGS):
        chunk = responses[i * len(WORKLOADS) : (i + 1) * len(WORKLOADS)]
        ipc = float(np.mean([r.events.ipc for r in requests[
            i * len(WORKLOADS) : (i + 1) * len(WORKLOADS)]]))
        power = float(np.mean([r.total for r in chunk]))
        rows.append((config.name, ipc, power, ipc / power * 1000.0))

    print(f"{'config':>6s} {'mean IPC':>9s} {'pred. power mW':>15s} {'IPC/W':>8s}  note")
    best_eff = max(r[3] for r in rows)
    for name, ipc, power, eff in rows:
        marks = []
        if name in ("C1", "C15"):
            marks.append("train")
        if eff == best_eff:
            marks.append("<-- most efficient")
        print(f"{name:>6s} {ipc:9.2f} {power:15.1f} {eff:8.1f}  {' '.join(marks)}")

    # A simple Pareto front over (IPC up, power down).
    pareto = []
    for name, ipc, power, _ in rows:
        dominated = any(
            other_ipc >= ipc and other_power <= power and (other_ipc, other_power) != (ipc, power)
            for _, other_ipc, other_power, _ in rows
        )
        if not dominated:
            pareto.append(name)
    print("\nPareto-optimal configurations (IPC vs predicted power):", ", ".join(pareto))


if __name__ == "__main__":
    main()
