#!/usr/bin/env python
"""Time-based power-trace prediction (the paper's Table IV scenario).

Predict the 50-cycle power trace of GEMM (millions of cycles) on an
unseen configuration, using a model trained only on the *average* power
of two known configurations — no trace-level tuning.

Run:  python examples/power_trace_prediction.py
"""

import numpy as np

import repro.api as api
from repro import VlsiFlow, WORKLOADS, config_by_name, workload_by_name
from repro.power.trace import golden_trace_power
from repro.sim.trace import WindowTraceGenerator


def sparkline(values: np.ndarray, width: int = 72) -> str:
    """Coarse ASCII rendering of a trace."""
    blocks = " .:-=+*#%@"
    chunks = np.array_split(values, width)
    means = np.array([c.mean() for c in chunks])
    lo, hi = means.min(), means.max()
    span = hi - lo if hi > lo else 1.0
    return "".join(blocks[int((m - lo) / span * (len(blocks) - 1))] for m in means)


def main() -> None:
    flow = VlsiFlow()
    train = [config_by_name("C1"), config_by_name("C15")]
    model = api.fit(
        "autopower", flow=flow, train_configs=train, workloads=list(WORKLOADS)
    )

    config = config_by_name("C2")
    gemm = workload_by_name("gemm")
    print(f"workload: {gemm.name}, configuration: {config.name} (unseen)")

    trace = WindowTraceGenerator(window_cycles=50).generate(config, gemm)
    print(f"trace: {trace.n_windows} windows of 50 cycles "
          f"({trace.total_cycles / 1e6:.1f}M cycles total)")

    golden = golden_trace_power(flow, config, gemm, trace.scales)
    events = flow.run(config, gemm).events
    # A trace request through the service: one batched anchor sweep.
    service = api.PredictionService(model)
    response = service.predict(
        api.PredictRequest(
            config, events, gemm, kind="trace",
            scales=trace.scales, window_cycles=50,
        )
    )
    predicted = response.trace

    print("\ngolden   |" + sparkline(golden) + "|")
    print("predicted|" + sparkline(predicted) + "|")

    avg_err = float(np.mean(np.abs(predicted - golden) / golden)) * 100.0
    max_err = abs(predicted.max() - golden.max()) / golden.max() * 100.0
    min_err = abs(predicted.min() - golden.min()) / golden.min() * 100.0
    print(f"\nmax-power error: {max_err:5.2f}%   "
          f"min-power error: {min_err:5.2f}%   "
          f"average error: {avg_err:5.2f}%")
    print("(paper Table IV reports average errors of 2-11% on large workloads)")


if __name__ == "__main__":
    main()
