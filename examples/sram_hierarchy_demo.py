#!/usr/bin/env python
"""Walk the four-level SRAM hierarchy (the paper's Table I example).

Component -> SRAM Position -> SRAM Block -> SRAM Macro, for the IFU
metadata table: fit the scaling-pattern hardware model on two known
configurations, inspect the discovered laws, predict block shapes for
every configuration, and map the blocks onto memory-compiler macros.

Run:  python examples/sram_hierarchy_demo.py
"""

import repro.api as api
from repro import BOOM_CONFIGS, VlsiFlow, WORKLOADS, config_by_name


def main() -> None:
    flow = VlsiFlow()
    train = [config_by_name("C1"), config_by_name("C15")]
    model = api.fit(
        "autopower", flow=flow, train_configs=train, workloads=list(WORKLOADS)
    )
    sram = model.sram_model

    print("Level 1: Component = IFU")
    print("Level 2: SRAM positions discovered from the training RTL:",
          [p for p in sram.position_names if sram._positions[p].component == "IFU"])

    print("\nLevel 3: scaling laws fitted for the 'meta' position "
          "(trained on C1 + C15 only):")
    for kind, law in sram.laws("meta").items():
        print(f"  {kind:>10s} = {law.describe()}")

    print("\npredicted SRAM Block shapes (width x depth x count):")
    print(f"{'config':>7s} {'true':>12s} {'predicted':>12s}")
    for config in BOOM_CONFIGS:
        true = flow.design(config).component("IFU").position("meta").block
        pred = sram.predict_block("meta", config)
        t = f"{true.width}x{true.depth}x{true.count}"
        p = f"{pred.width}x{pred.depth}x{pred.count}"
        print(f"{config.name:>7s} {t:>12s} {p:>12s}")

    print("\nLevel 4: macro mapping (the VLSI flow's deterministic rule):")
    for name in ("C1", "C8", "C15"):
        config = config_by_name(name)
        block = sram.predict_block("meta", config)
        mapping = flow.mapper.map(block.width, block.depth)
        print(
            f"  {name}: block {block.width}x{block.depth} -> "
            f"{mapping.n_row}x{mapping.n_col} of {mapping.macro.name} "
            f"(read {mapping.macro.read_energy_pj:.2f} pJ, "
            f"write {mapping.macro.write_energy_pj:.2f} pJ)"
        )

    print(
        f"\ncalibrated per-macro constant C (pin toggling + leakage): "
        f"{sram.c_constant_mw * 1000.0:.3f} uW"
    )


if __name__ == "__main__":
    main()
