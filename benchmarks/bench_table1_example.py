"""Bench: Table I — the IFU metadata-table scaling-law walk-through.

The hardware model, trained on {C1, C15}, must discover Capacity =
240 * FetchWidth * DecodeWidth and Width/Throughput = 30 * FetchWidth and
predict exact block shapes for all 15 configurations.
"""

from repro.experiments import table1_example
from repro.experiments.tables import format_table


def test_table1_meta_example(benchmark, flow):
    result = benchmark.pedantic(
        table1_example.run, args=(flow,), rounds=1, iterations=1
    )
    print()
    print(f"Capacity   = {result.capacity_law}")
    print(f"Throughput = {result.throughput_law}")
    print(f"Width      = {result.width_law}")
    print(
        format_table(
            ["config", "true WxDxC", "predicted WxDxC", "exact"], result.rows()
        )
    )
    benchmark.extra_info["capacity_law"] = result.capacity_law
    assert "FetchWidth" in result.capacity_law
    assert "DecodeWidth" in result.capacity_law
    assert result.throughput_law == "30 * FetchWidth"
    assert result.all_exact
