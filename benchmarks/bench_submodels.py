"""Bench: sub-model accuracy (paper Sec. III-B3 / III-B4).

* register count + gating rate: paper reports 6.93 % MAPE @ 2 configs,
* SRAM block hardware model: paper reports "nearly 0" MAPE.
"""

from repro.experiments import submodels
from repro.experiments.tables import format_table


def test_submodel_accuracy(benchmark, flow):
    result = benchmark.pedantic(
        submodels.run, args=(flow,), kwargs={"n_train": 2}, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["kind", "name", "MAPE-1 %", "MAPE-2 %"],
            result.rows(),
            title="Sub-models (R/g: register count & gating rate; block: width & depth)",
        )
    )
    benchmark.extra_info["mean_reg_and_gate_mape"] = result.mean_reg_and_gate_mape
    benchmark.extra_info["mean_block_mape"] = result.mean_block_mape
    assert result.mean_reg_and_gate_mape < 7.0  # paper: 6.93 %
    assert result.mean_block_mape < 0.5  # paper: ~0
