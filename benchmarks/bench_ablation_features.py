"""Bench: ablation — program-level features vs simulator error.

The paper motivates microarchitecture-independent program features as a
countermeasure to performance-simulator inaccuracy.  The ablation sweeps
the simulator's systematic bias and compares the SRAM group's MAPE with
and without the features; the gap must widen as the simulator degrades.
"""

from repro.experiments import ablation_program_features
from repro.experiments.tables import format_table


def test_program_feature_ablation(benchmark):
    result = benchmark.pedantic(
        ablation_program_features.run,
        kwargs={"bias_magnitudes": (0.0, 0.07, 0.15)},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["sim bias", "with prog feats %", "without %", "delta %"],
            result.rows(),
            title="Ablation — program features under simulator error (SRAM group)",
        )
    )
    rows = result.rows_
    benchmark.extra_info["rows"] = [list(r) for r in rows]
    # With a badly biased simulator, program features must not hurt, and
    # generally help (the paper's motivation for adding them).
    bias_high = rows[-1]
    assert bias_high[1] <= bias_high[2] * 1.15
