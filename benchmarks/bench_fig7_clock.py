"""Bench: Fig. 7 — clock-group accuracy, AutoPower vs AutoPower−.

Paper: clock MAPE 11.37 %, R 0.93 with 2 known configurations, beating
the direct-ML ablation on most components.
"""

from repro.experiments import fig7_clock
from repro.experiments.tables import format_table


def test_fig7_clock_group(benchmark, flow):
    result = benchmark.pedantic(
        fig7_clock.run, args=(flow,), kwargs={"n_train": 2}, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["component", "AutoPower MAPE %", "AutoPower- MAPE %"],
            result.rows(),
            title="Fig. 7 — clock power accuracy (2 known configs)",
        )
    )
    benchmark.extra_info["overall_mape"] = result.overall_mape[0]
    benchmark.extra_info["overall_pearson"] = result.overall_pearson[0]
    assert result.overall_mape[0] < result.overall_mape[1]
    assert result.overall_pearson[0] > 0.9  # paper: R = 0.93
    assert result.overall_mape[0] < 12.0  # paper: 11.37 %
    # AutoPower wins on the majority of components.
    assert result.components_won > len(result.per_component) / 2
