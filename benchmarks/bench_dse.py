"""Bench: DSE sweeps through the content-addressed flow cache.

The cache contract quantified: a cold grid sweep pays one flow
execution per (config, workload) pair; the warm resweep of the same
grid — a fresh flow over the same store, as any later process would
see it — performs *zero* executions and returns byte-identical
results.  Both timings export into ``BENCH_ml_engine.json``
(``cold_ms`` / ``warm_ms`` / ``speedup`` in ``extra_info``) so the
per-PR trajectory tracks the cache's win alongside the engine numbers.

    PYTHONPATH=src python -m pytest benchmarks/bench_dse.py -m perf_smoke
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.arch.workloads import workload_by_name
from repro.dse.cache import FlowDiskCache
from repro.dse.grid import generate_grid
from repro.vlsi.flow import VlsiFlow

AXES = {
    "RobEntry": [64, 96, 128],
    "FetchBufferEntry": [16, 24],
    "MSHREntry": [2, 4],
}
WORKLOADS = ("qsort", "towers")


def _grid():
    configs, dropped = generate_grid("C8", AXES, None)
    assert dropped == 0
    workloads = [workload_by_name(n) for n in WORKLOADS]
    return configs, workloads


@pytest.mark.perf_smoke
def test_dse_sweep_cold_vs_warm(benchmark, tmp_path):
    """One 12-config x 2-workload grid: cold sweep, then pure-cache resweep."""
    configs, workloads = _grid()
    store_root = str(tmp_path / "dse-cache")

    cold_flow = VlsiFlow(disk_cache=FlowDiskCache(store_root))
    start = time.perf_counter()
    cold = cold_flow.run_many(configs, workloads)
    cold_ms = (time.perf_counter() - start) * 1000.0
    assert cold_flow.executions == len(configs) * len(workloads)

    def warm_sweep():
        flow = VlsiFlow(disk_cache=FlowDiskCache(store_root))
        results = flow.run_many(configs, workloads)
        assert flow.executions == 0
        assert flow.disk_cache.stats.misses == 0
        return results

    warm = benchmark.pedantic(warm_sweep, rounds=3, iterations=1)
    assert [pickle.dumps(r) for r in warm] == [pickle.dumps(r) for r in cold]

    warm_ms = benchmark.stats["mean"] * 1000.0
    benchmark.extra_info["grid_pairs"] = len(configs) * len(workloads)
    benchmark.extra_info["cold_ms"] = cold_ms
    benchmark.extra_info["warm_ms"] = warm_ms
    benchmark.extra_info["speedup"] = cold_ms / warm_ms if warm_ms else None
    print(
        f"\nDSE sweep {len(configs)}x{len(workloads)}: "
        f"cold {cold_ms:.1f} ms -> warm {warm_ms:.1f} ms "
        f"({cold_ms / warm_ms:.1f}x)"
    )
    assert warm_ms < cold_ms
