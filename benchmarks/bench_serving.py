"""Perf smoke for the ``repro.serving`` HTTP gateway (load generator).

The gateway's whole reason to exist is cross-request coalescing: N
concurrent HTTP clients each carrying one request per call should beat
the same requests sent one HTTP call at a time, because concurrent
requests share micro-batched model calls.  This benchmark drives both
shapes through a live gateway over loopback HTTP, asserts the win and
that every wire response is bitwise-equal to a direct
``PredictionService.submit_many`` call, and exports the requests/s into
``BENCH_ml_engine.json`` with the rest of the ``perf_smoke`` suite.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

import repro.api as api
from repro.arch.config import config_by_name
from repro.arch.workloads import WORKLOADS
from repro.serving import GatewayThread, ResilienceConfig
from repro.serving.wire import encode_request

N_CLIENTS = 8


@pytest.fixture(scope="module")
def live_gateway(flow):
    """A gateway over a fitted AutoPower model plus a realistic load.

    32 requests over 4 unseen configurations x 8 workloads (the same mix
    as the prediction-service benchmark), pre-encoded to JSON, plus the
    bitwise ground truth from a direct ``submit_many`` call.
    """
    train = [config_by_name("C1"), config_by_name("C15")]
    model = api.fit(
        "autopower", flow=flow, train_configs=train, workloads=list(WORKLOADS)
    )
    requests = [
        api.PredictRequest(config=c, events=flow.run(c, w).events, workload=w)
        for c in (config_by_name(f"C{i}") for i in (2, 5, 9, 12))
        for w in WORKLOADS
    ]
    expected = [
        r.total for r in api.PredictionService(model).submit_many(requests)
    ]
    payloads = [json.dumps(encode_request(r)) for r in requests]
    # An explicit (generous) queue bound: the benchmark runs through the
    # real admission-control path, and the stats check below asserts it
    # never sheds at this load.
    handle = GatewayThread(
        api.PredictionService(model),
        max_batch_size=64,
        max_wait_ms=2.0,
        resilience=ResilienceConfig(queue_depth=256),
    ).start()
    yield handle, payloads, expected
    handle.stop()


def _post_slice(port, payloads, out, offset):
    """One client: its own keep-alive connection, one request per call."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    for i, payload in enumerate(payloads):
        conn.request(
            "POST", "/predict", body=payload,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        out[offset + i] = json.loads(response.read())["total"]
    conn.close()


@pytest.mark.perf_smoke
def test_serving_gateway_concurrent_throughput(benchmark, live_gateway):
    """N concurrent clients vs the sequential one-call-at-a-time loop."""
    handle, payloads, expected = live_gateway
    slice_size = len(payloads) // N_CLIENTS

    def concurrent_clients():
        results = [None] * len(payloads)
        threads = [
            threading.Thread(
                target=_post_slice,
                args=(
                    handle.port,
                    payloads[i * slice_size : (i + 1) * slice_size],
                    results,
                    i * slice_size,
                ),
            )
            for i in range(N_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results

    results = benchmark(concurrent_clients)
    # Coalesced-through-the-gateway must equal direct submit_many bitwise
    # (json round-trips floats exactly).
    assert results == expected

    # Reference: the same 32 requests, one HTTP call at a time, one
    # client — no coalescing opportunity.  Timed once in-process.
    sequential = [None] * len(payloads)
    start = time.perf_counter()
    _post_slice(handle.port, payloads, sequential, 0)
    sequential_seconds = time.perf_counter() - start
    assert sequential == expected

    concurrent_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["concurrent_requests_per_second"] = (
        len(payloads) / concurrent_seconds
    )
    benchmark.extra_info["sequential_requests_per_second"] = (
        len(payloads) / sequential_seconds
    )
    benchmark.extra_info["speedup_vs_sequential"] = (
        sequential_seconds / concurrent_seconds
    )
    # The acceptance bar: coalesced concurrent throughput >= the
    # one-request-per-HTTP-call baseline.
    assert concurrent_seconds <= sequential_seconds


@pytest.mark.perf_smoke
def test_serving_gateway_stats_stay_consistent(live_gateway):
    """After the load, the gateway books balance (no lost responses)."""
    handle, _payloads, _expected = live_gateway
    conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=60)
    conn.request("GET", "/stats")
    stats = json.loads(conn.getresponse().read())
    conn.close()
    gateway = stats["gateway"]
    service = stats["service"]
    assert gateway["predict_requests"] == gateway["predict_responses"]
    assert service["requests"] == service["responses"]
    assert service["requests"] == gateway["predict_requests"]
    assert gateway["queue_depth"] == 0
    assert gateway["flushed_requests"] == gateway["predict_requests"]
    assert gateway["max_flush_size"] >= 1
    # The resilience layer was live but never in the way: nothing shed,
    # breaker closed, service-time EWMA tracking the real load.
    resilience = stats["resilience"]
    assert resilience["draining"] is False
    assert resilience["queue_capacity"] == 256
    assert all(count == 0 for count in resilience["shed"].values())
    assert resilience["model_timeouts"] == 0
    assert resilience["circuit"]["state"] == "closed"
    assert resilience["service_time_ms"] > 0
