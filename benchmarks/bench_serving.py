"""Perf smoke for the ``repro.serving`` HTTP gateway (load generator).

The gateway's whole reason to exist is cross-request coalescing: N
concurrent HTTP clients each carrying one request per call should beat
the same requests sent one HTTP call at a time, because concurrent
requests share micro-batched model calls.  This benchmark drives both
shapes through a live gateway over loopback HTTP, asserts the win and
that every wire response is bitwise-equal to a direct
``PredictionService.submit_many`` call, and exports the requests/s into
``BENCH_ml_engine.json`` with the rest of the ``perf_smoke`` suite.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro.api as api
from repro.arch.config import config_by_name
from repro.arch.workloads import WORKLOADS
from repro.serving import GatewayThread, ResilienceConfig
from repro.serving.fleet import parse_announce, reuse_port_supported
from repro.serving.wire import encode_request

N_CLIENTS = 8


@pytest.fixture(scope="module")
def served_load(flow):
    """A fitted AutoPower model plus a realistic load.

    32 requests over 4 unseen configurations x 8 workloads (the same mix
    as the prediction-service benchmark), pre-encoded to JSON, plus the
    bitwise ground truth from a direct ``submit_many`` call.
    """
    train = [config_by_name("C1"), config_by_name("C15")]
    model = api.fit(
        "autopower", flow=flow, train_configs=train, workloads=list(WORKLOADS)
    )
    requests = [
        api.PredictRequest(config=c, events=flow.run(c, w).events, workload=w)
        for c in (config_by_name(f"C{i}") for i in (2, 5, 9, 12))
        for w in WORKLOADS
    ]
    expected = [
        r.total for r in api.PredictionService(model).submit_many(requests)
    ]
    payloads = [json.dumps(encode_request(r)) for r in requests]
    return model, payloads, expected


@pytest.fixture(scope="module")
def live_gateway(served_load):
    """A live in-process gateway thread over the fitted model."""
    model, payloads, expected = served_load
    # An explicit (generous) queue bound: the benchmark runs through the
    # real admission-control path, and the stats check below asserts it
    # never sheds at this load.
    handle = GatewayThread(
        api.PredictionService(model),
        max_batch_size=64,
        max_wait_ms=2.0,
        resilience=ResilienceConfig(queue_depth=256),
    ).start()
    yield handle, payloads, expected
    handle.stop()


def _post_slice(port, payloads, out, offset):
    """One client: its own keep-alive connection, one request per call."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    for i, payload in enumerate(payloads):
        conn.request(
            "POST", "/predict", body=payload,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        out[offset + i] = json.loads(response.read())["total"]
    conn.close()


@pytest.mark.perf_smoke
def test_serving_gateway_concurrent_throughput(benchmark, live_gateway):
    """N concurrent clients vs the sequential one-call-at-a-time loop."""
    handle, payloads, expected = live_gateway
    slice_size = len(payloads) // N_CLIENTS

    def concurrent_clients():
        results = [None] * len(payloads)
        threads = [
            threading.Thread(
                target=_post_slice,
                args=(
                    handle.port,
                    payloads[i * slice_size : (i + 1) * slice_size],
                    results,
                    i * slice_size,
                ),
            )
            for i in range(N_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results

    results = benchmark(concurrent_clients)
    # Coalesced-through-the-gateway must equal direct submit_many bitwise
    # (json round-trips floats exactly).
    assert results == expected

    # Reference: the same 32 requests, one HTTP call at a time, one
    # client — no coalescing opportunity.  Timed once in-process.
    sequential = [None] * len(payloads)
    start = time.perf_counter()
    _post_slice(handle.port, payloads, sequential, 0)
    sequential_seconds = time.perf_counter() - start
    assert sequential == expected

    concurrent_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["concurrent_requests_per_second"] = (
        len(payloads) / concurrent_seconds
    )
    benchmark.extra_info["sequential_requests_per_second"] = (
        len(payloads) / sequential_seconds
    )
    benchmark.extra_info["speedup_vs_sequential"] = (
        sequential_seconds / concurrent_seconds
    )
    # The acceptance bar: coalesced concurrent throughput >= the
    # one-request-per-HTTP-call baseline.
    assert concurrent_seconds <= sequential_seconds


def _launch_serve(model_path, extra_args, come_up_timeout=120.0):
    """One real ``python -m repro serve`` subprocess; returns
    (proc, announce) once the REPRO-SERVING line has been printed."""
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--model", str(model_path), "--port", "0",
         "--max-wait-ms", "0", *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    lines = []
    announce = [None]

    def pump():
        for line in proc.stdout:
            lines.append(line)
            if announce[0] is None:
                announce[0] = parse_announce(line)

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    deadline = time.monotonic() + come_up_timeout
    while announce[0] is None and time.monotonic() < deadline:
        if proc.poll() is not None:
            break
        time.sleep(0.05)
    if announce[0] is None:
        proc.kill()
        raise RuntimeError(f"serve never announced: {''.join(lines)}")
    return proc, announce[0]


def _spray(port, payloads, rounds):
    """N_CLIENTS threads, each sending every payload ``rounds`` times."""
    results = [None] * (N_CLIENTS * rounds * len(payloads))
    per_client = rounds * len(payloads)
    threads = [
        threading.Thread(
            target=_post_slice,
            args=(port, payloads * rounds, results, i * per_client),
        )
        for i in range(N_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


@pytest.mark.perf_smoke
def test_serving_worker_pool_scaling(benchmark, served_load, tmp_path):
    """``--workers 2`` vs one worker, through real serve subprocesses.

    Bitwise correctness and merged-stats consistency are asserted
    everywhere; the >= 1.5x throughput bar only on multicore hosts
    (forked workers time-share a single core otherwise).
    """
    if not reuse_port_supported():
        pytest.skip("worker pool needs os.fork and SO_REUSEPORT")
    model, payloads, expected = served_load
    model_path = tmp_path / "pool-model.json"
    api.save_model(model, model_path)
    rounds = 2
    expected_spray = expected * rounds * N_CLIENTS

    # Reference: a single-process serve under the identical client load.
    proc, announce = _launch_serve(model_path, [])
    try:
        start = time.perf_counter()
        results = _spray(announce["port"], payloads, rounds)
        single_seconds = time.perf_counter() - start
        assert sorted(results) == sorted(expected_spray)
    finally:
        proc.terminate()
    assert proc.wait(timeout=60) == 0

    proc, announce = _launch_serve(model_path, ["--workers", "2"])
    try:
        assert announce["workers"] == 2
        results = benchmark(_spray, announce["port"], payloads, rounds)
        assert sorted(results) == sorted(expected_spray)

        # The parent control plane's merged view must stay consistent
        # with the per-worker counters.
        control_host, control_port = (
            announce["control"].removeprefix("http://").rsplit(":", 1)
        )
        conn = http.client.HTTPConnection(
            control_host, int(control_port), timeout=60
        )
        conn.request("GET", "/stats")
        stats = json.loads(conn.getresponse().read())
        conn.close()
        per_worker = [w["body"]["gateway"] for w in stats["workers"]]
        assert len(per_worker) == 2
        merged = stats["merged"]["gateway"]
        assert merged["predict_responses"] == sum(
            w["predict_responses"] for w in per_worker
        )
        assert merged["predict_responses"] >= len(expected_spray)
        assert all(w["predict_responses"] > 0 for w in per_worker)
    finally:
        proc.terminate()
    assert proc.wait(timeout=60) == 0

    pool_seconds = benchmark.stats.stats.mean
    total = len(expected_spray)
    benchmark.extra_info["single_worker_requests_per_second"] = (
        total / single_seconds
    )
    benchmark.extra_info["two_worker_requests_per_second"] = (
        total / pool_seconds
    )
    benchmark.extra_info["worker_scaling_speedup"] = (
        single_seconds / pool_seconds
    )
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    if (os.cpu_count() or 1) >= 2:
        assert single_seconds / pool_seconds >= 1.5, (
            f"2-worker speedup {single_seconds / pool_seconds:.2f}x < 1.5x "
            f"on a {os.cpu_count()}-CPU host"
        )


@pytest.mark.perf_smoke
def test_serving_pool_restart_recovery_latency(benchmark, served_load, tmp_path):
    """SIGKILL one pool worker; measure time back to full capacity.

    The supervised pool's recovery budget is backoff + fork + model load
    + journal replay; this pins a number on it (exported as
    ``recovery_seconds``) and asserts the pool answers bitwise-correct
    predictions immediately after each heal.
    """
    if not reuse_port_supported():
        pytest.skip("worker pool needs os.fork and SO_REUSEPORT")
    model, payloads, expected = served_load
    model_path = tmp_path / "recovery-model.json"
    api.save_model(model, model_path)
    # Every benchmark round is one crash: fund the breaker well past the
    # round count and keep the backoff small so we measure respawn +
    # reload, not sleep.
    proc, announce = _launch_serve(
        model_path,
        ["--workers", "2", "--restart-backoff-ms", "25",
         "--max-restarts", "1000"],
    )
    control_host, control_port = (
        announce["control"].removeprefix("http://").rsplit(":", 1)
    )

    def ready_pids():
        conn = http.client.HTTPConnection(
            control_host, int(control_port), timeout=60
        )
        try:
            conn.request("GET", "/healthz")
            body = json.loads(conn.getresponse().read())
        finally:
            conn.close()
        return body["status"], {
            w["pid"] for w in body["workers"] if w.get("status") == 200
        }

    def kill_and_recover():
        status, pids = ready_pids()
        assert status == "ok" and len(pids) == 2
        victim = min(pids)
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            status, pids = ready_pids()
            if status == "ok" and len(pids) == 2 and victim not in pids:
                return
            time.sleep(0.01)
        raise RuntimeError("pool never returned to full capacity")

    try:
        benchmark.pedantic(kill_and_recover, rounds=5, iterations=1)
        # Post-heal correctness: the replacement serves bitwise answers.
        results = [None] * len(payloads)
        _post_slice(announce["port"], payloads, results, 0)
        assert sorted(results) == sorted(expected)
    finally:
        proc.terminate()
    assert proc.wait(timeout=60) == 0
    benchmark.extra_info["recovery_seconds"] = benchmark.stats.stats.mean
    benchmark.extra_info["restart_backoff_ms"] = 25


@pytest.mark.perf_smoke
def test_serving_gateway_stats_stay_consistent(live_gateway):
    """After the load, the gateway books balance (no lost responses)."""
    handle, _payloads, _expected = live_gateway
    conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=60)
    conn.request("GET", "/stats")
    stats = json.loads(conn.getresponse().read())
    conn.close()
    gateway = stats["gateway"]
    service = stats["service"]
    assert gateway["predict_requests"] == gateway["predict_responses"]
    assert service["requests"] == service["responses"]
    assert service["requests"] == gateway["predict_requests"]
    assert gateway["queue_depth"] == 0
    assert gateway["flushed_requests"] == gateway["predict_requests"]
    assert gateway["max_flush_size"] >= 1
    # The resilience layer was live but never in the way: nothing shed,
    # breaker closed, service-time EWMA tracking the real load.
    resilience = stats["resilience"]
    assert resilience["draining"] is False
    assert resilience["queue_capacity"] == 256
    assert all(count == 0 for count in resilience["shed"].values())
    assert resilience["model_timeouts"] == 0
    assert resilience["circuit"]["state"] == "closed"
    assert resilience["service_time_ms"] > 0
