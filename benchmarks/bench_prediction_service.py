"""Perf smoke for the ``repro.api.PredictionService`` batching layer.

The service's whole reason to exist is that one coalesced
``predict_totals`` call per configuration beats the equivalent loop of
scalar ``predict_total`` calls; this benchmark measures the batched
requests/s and asserts the win (with responses matching the loop), so
the serving path regresses loudly.  Exported into
``BENCH_ml_engine.json`` with the rest of the ``perf_smoke`` suite.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro.api as api
from repro.arch.config import config_by_name
from repro.arch.workloads import WORKLOADS


@pytest.fixture(scope="module")
def service_workload(flow):
    """A fitted AutoPower model plus a realistic request mix.

    32 requests over 4 unseen configurations x 8 workloads — the shape a
    design-space-exploration client submits.
    """
    train = [config_by_name("C1"), config_by_name("C15")]
    model = api.fit(
        "autopower", flow=flow, train_configs=train, workloads=list(WORKLOADS)
    )
    requests = [
        api.PredictRequest(config=c, events=flow.run(c, w).events, workload=w)
        for c in (config_by_name(f"C{i}") for i in (2, 5, 9, 12))
        for w in WORKLOADS
    ]
    return model, requests


@pytest.mark.perf_smoke
def test_prediction_service_throughput(benchmark, service_workload):
    """Batched submit_many vs the request-at-a-time predict_total loop."""
    model, requests = service_workload
    service = api.PredictionService(model)

    responses = benchmark(service.submit_many, requests)

    # Reference: the loop the service replaces, timed once in-process.
    start = time.perf_counter()
    loop = [
        model.predict_total(r.config, r.events, r.workload) for r in requests
    ]
    loop_seconds = time.perf_counter() - start

    batched = [r.total for r in responses]
    np.testing.assert_allclose(batched, loop, rtol=1e-12, atol=0)

    batched_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["requests_per_second"] = len(requests) / batched_seconds
    benchmark.extra_info["loop_requests_per_second"] = len(requests) / loop_seconds
    benchmark.extra_info["speedup_vs_loop"] = loop_seconds / batched_seconds
    # The acceptance bar: batched throughput >= the equivalent loop.
    assert batched_seconds <= loop_seconds


@pytest.mark.perf_smoke
def test_prediction_service_stream(benchmark, service_workload):
    """Streaming iterator with per-chunk coalescing (bounded buffering)."""
    model, requests = service_workload
    service = api.PredictionService(model)

    def drain():
        return list(service.stream(iter(requests), chunk_size=16))

    responses = benchmark(drain)
    assert len(responses) == len(requests)
    assert all(r.total > 0 for r in responses)
