"""Microbenchmarks for the vectorized tree engine (fit + batch predict).

These run on synthetic data only — no VLSI flow — so a tree-engine
regression is caught in seconds without regenerating the figure
benchmarks.  All cases carry the ``perf_smoke`` marker:

    PYTHONPATH=src python -m pytest benchmarks -m perf_smoke

Two regimes are covered: the few-shot regime AutoPower actually fits in
(a dozen samples, ~150 boosting rounds — dominated by numpy dispatch, the
reason for the per-fit sort/size caches), and a larger regime where the
histogram mode and the fused-ensemble batch inference matter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.gbm import GradientBoostingRegressor


def _fewshot_data(seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 4.0, size=(12, 30))
    y = 50.0 + 8.0 * X[:, 0] - 3.0 * X[:, 1] + rng.normal(scale=0.5, size=12)
    return X, y


def _bulk_data(seed: int = 1):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 1.0, size=(2000, 16))
    y = 10 * np.sin(np.pi * X[:, 0] * X[:, 1]) + 5 * X[:, 2] + rng.normal(size=2000)
    return X, y


@pytest.fixture(scope="module")
def bulk_model():
    X, y = _bulk_data()
    return GradientBoostingRegressor(
        n_estimators=100, learning_rate=0.1, max_depth=4
    ).fit(X, y), X, y


@pytest.mark.perf_smoke
def test_fewshot_fit_exact(benchmark):
    """AutoPower's regime: 12 samples x 150 rounds, exact split search."""
    X, y = _fewshot_data()

    def fit():
        return GradientBoostingRegressor(
            n_estimators=150, learning_rate=0.08, max_depth=3
        ).fit(X, y)

    model = benchmark(fit)
    assert model.n_trees_ == 150
    assert model.train_losses_[-1] <= model.train_losses_[0]


@pytest.mark.perf_smoke
def test_bulk_fit_hist(benchmark):
    """Histogram mode on a larger matrix (shared per-fit bin cache)."""
    X, y = _bulk_data()

    def fit():
        return GradientBoostingRegressor(
            n_estimators=40, learning_rate=0.1, max_depth=4,
            tree_method="hist", max_bin=64,
        ).fit(X, y)

    model = benchmark(fit)
    resid = model.predict(X) - y
    assert float(np.sqrt(np.mean(resid**2))) < 2.0


@pytest.mark.perf_smoke
def test_bulk_fit_exact(benchmark):
    """Exact mode on the same matrix, for the hist/exact tradeoff curve."""
    X, y = _bulk_data()

    def fit():
        return GradientBoostingRegressor(
            n_estimators=40, learning_rate=0.1, max_depth=4
        ).fit(X, y)

    model = benchmark(fit)
    assert model.n_trees_ == 40


@pytest.mark.perf_smoke
def test_batch_predict(benchmark, bulk_model):
    """Fused-ensemble inference: all rows x all trees, no per-row Python."""
    model, X, _y = bulk_model
    rng = np.random.default_rng(2)
    X_test = rng.uniform(0.0, 1.0, size=(20000, X.shape[1]))
    model.predict(X_test)  # build the fused ensemble outside the timing loop

    pred = benchmark(model.predict, X_test)
    assert pred.shape == (20000,)
    assert np.isfinite(pred).all()
