"""Microbenchmarks for the vectorized tree engine (fit + batch predict).

These run on synthetic data only — no VLSI flow — so a tree-engine
regression is caught in seconds without regenerating the figure
benchmarks.  All cases carry the ``perf_smoke`` marker:

    PYTHONPATH=src python -m pytest benchmarks -m perf_smoke

Two regimes are covered: the few-shot regime AutoPower actually fits in
(a dozen samples, ~150 boosting rounds — dominated by numpy dispatch, the
reason for the per-fit sort/size caches), and a larger regime where the
histogram mode and the fused-ensemble batch inference matter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.gbm import GradientBoostingRegressor
from repro.parallel import SerialExecutor, get_executor


def _fewshot_data(seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 4.0, size=(12, 30))
    y = 50.0 + 8.0 * X[:, 0] - 3.0 * X[:, 1] + rng.normal(scale=0.5, size=12)
    return X, y


def _bulk_data(seed: int = 1):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 1.0, size=(2000, 16))
    y = 10 * np.sin(np.pi * X[:, 0] * X[:, 1]) + 5 * X[:, 2] + rng.normal(size=2000)
    return X, y


@pytest.fixture(scope="module")
def bulk_model():
    X, y = _bulk_data()
    return GradientBoostingRegressor(
        n_estimators=100, learning_rate=0.1, max_depth=4
    ).fit(X, y), X, y


@pytest.mark.perf_smoke
def test_fewshot_fit_exact(benchmark):
    """AutoPower's regime: 12 samples x 150 rounds, exact split search."""
    X, y = _fewshot_data()

    def fit():
        return GradientBoostingRegressor(
            n_estimators=150, learning_rate=0.08, max_depth=3
        ).fit(X, y)

    model = benchmark(fit)
    assert model.n_trees_ == 150
    assert model.train_losses_[-1] <= model.train_losses_[0]


@pytest.mark.perf_smoke
def test_bulk_fit_hist(benchmark):
    """Histogram mode on a larger matrix (shared per-fit bin cache)."""
    X, y = _bulk_data()

    def fit():
        return GradientBoostingRegressor(
            n_estimators=40, learning_rate=0.1, max_depth=4,
            tree_method="hist", max_bin=64,
        ).fit(X, y)

    model = benchmark(fit)
    resid = model.predict(X) - y
    assert float(np.sqrt(np.mean(resid**2))) < 2.0


@pytest.mark.perf_smoke
def test_bulk_fit_hist32(benchmark):
    """Histogram mode with the float32 score pipeline (hist_dtype)."""
    X, y = _bulk_data()

    def fit():
        return GradientBoostingRegressor(
            n_estimators=40, learning_rate=0.1, max_depth=4,
            tree_method="hist", max_bin=64, hist_dtype="float32",
        ).fit(X, y)

    model = benchmark(fit)
    resid = model.predict(X) - y
    assert float(np.sqrt(np.mean(resid**2))) < 2.0


@pytest.mark.perf_smoke
def test_bulk_fit_exact(benchmark):
    """Exact mode on the same matrix, for the hist/exact tradeoff curve."""
    X, y = _bulk_data()

    def fit():
        return GradientBoostingRegressor(
            n_estimators=40, learning_rate=0.1, max_depth=4
        ).fit(X, y)

    model = benchmark(fit)
    assert model.n_trees_ == 40


# -- fit scaling: the AutoPower fan-out through the executor ----------------
#
# AutoPower.fit decomposes into ~90 independent few-shot GBM fits; this
# models that fan-out on synthetic payloads so the serial/parallel ratio is
# *measured* per run rather than assumed.  Run serially and with
# ``--jobs 2`` (CI does both); on a single-core runner the parallel case
# measures the dispatch overhead rather than a speedup, which is exactly
# the number the perf log needs for the fallback-to-serial rule.


def _fanout_payloads(n_tasks: int = 12):
    payloads = []
    for seed in range(n_tasks):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0.0, 4.0, size=(12, 30))
        y = 50.0 + 8.0 * X[:, 0] - 3.0 * X[:, 1] + rng.normal(scale=0.5, size=12)
        payloads.append({"x": X, "y": y, "random_state": seed})
    return payloads


def _fit_fanout_task(payload: dict) -> GradientBoostingRegressor:
    return GradientBoostingRegressor(
        n_estimators=60,
        learning_rate=0.08,
        max_depth=3,
        random_state=payload["random_state"],
    ).fit(payload["x"], payload["y"])


@pytest.mark.perf_smoke
def test_fit_scaling_serial(benchmark):
    """Reference: the sub-model fan-out through the serial executor."""
    payloads = _fanout_payloads()
    executor = SerialExecutor()

    models = benchmark(executor.map, _fit_fanout_task, payloads)
    assert len(models) == len(payloads)
    assert all(m.n_trees_ == 60 for m in models)


@pytest.mark.perf_smoke
def test_fit_scaling_jobs(benchmark, bench_jobs):
    """The same fan-out at ``--jobs N`` (thread backend, n_jobs=1 = serial).

    Fitted models must be numerically identical to the serial reference —
    the executor contract the equivalence suite checks on the real model.
    """
    payloads = _fanout_payloads()
    executor = get_executor(bench_jobs, "thread" if bench_jobs > 1 else "serial")
    reference = SerialExecutor().map(_fit_fanout_task, payloads)

    models = benchmark(executor.map, _fit_fanout_task, payloads)
    assert len(models) == len(reference)
    probe = np.asarray(payloads[0]["x"])
    for model, ref in zip(models, reference):
        np.testing.assert_array_equal(model.predict(probe), ref.predict(probe))


@pytest.mark.perf_smoke
def test_batch_predict(benchmark, bulk_model):
    """Fused-ensemble inference: all rows x all trees, no per-row Python."""
    model, X, _y = bulk_model
    rng = np.random.default_rng(2)
    X_test = rng.uniform(0.0, 1.0, size=(20000, X.shape[1]))
    model.predict(X_test)  # build the fused ensemble outside the timing loop

    pred = benchmark(model.predict, X_test)
    assert pred.shape == (20000,)
    assert np.isfinite(pred).all()
