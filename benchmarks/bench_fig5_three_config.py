"""Bench: Fig. 5 — end-to-end accuracy with 3 known configurations.

Paper: AutoPower MAPE 3.64 % / R² 0.97 vs McPAT-Calib 7.07 % / 0.91.
"""

from repro.experiments import fig45_accuracy
from repro.experiments.tables import format_table


def test_fig5_three_config_accuracy(benchmark, flow):
    result = benchmark.pedantic(
        fig45_accuracy.run,
        args=(flow,),
        kwargs={"n_train": 3, "methods": ("AutoPower", "McPAT-Calib")},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["method", "MAPE %", "R2", "R"],
            result.rows(),
            title="Fig. 5 — 3 known configurations (train C1, C8, C15)",
        )
    )
    ours = result.methods["AutoPower"]
    calib = result.methods["McPAT-Calib"]
    benchmark.extra_info["autopower_mape"] = ours.mape
    benchmark.extra_info["mcpat_calib_mape"] = calib.mape
    assert ours.mape < calib.mape
    assert ours.r2 > calib.r2
