"""Benchmark trajectory export + regression gate.

Two roles:

* imported by ``benchmarks/conftest.py`` to write ``BENCH_ml_engine.json``
  (test name -> mean/min ms, plus git sha and date) after a ``perf_smoke``
  run when ``--bench-json``/``REPRO_BENCH_JSON`` is set — CI uploads the
  file as an artifact so the perf trajectory is recorded per PR,
* a tiny CLI used by CI to fail the perf-smoke job when a test regresses
  past a ratio over the committed baseline::

      python benchmarks/export.py --check BENCH_ml_engine.json \
          --baseline benchmarks/BENCH_baseline.json \
          --test test_fewshot_fit_exact --max-ratio 2.0

The committed baseline is machine-specific (see the README); the 2x gate
is a loose tripwire for order-of-magnitude regressions, not a precise
budget.
"""

from __future__ import annotations

import argparse
import datetime
import json
import subprocess
import sys


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip()
    except Exception:
        return "unknown"


def collect_stats(benchmarks) -> dict:
    """``{test name: {mean_ms, min_ms, stddev_ms, rounds, extra...}}``
    from a pytest-benchmark session's fixture list.  A benchmark's
    ``extra_info`` (derived numbers like req/s or cold-vs-warm cache
    timings) rides along under ``"extra"``."""
    records: dict = {}
    for bench in benchmarks:
        stats = getattr(bench, "stats", None)
        stats = getattr(stats, "stats", stats)  # Metadata wraps Stats
        if stats is None:
            continue
        record = {
            "mean_ms": stats.mean * 1e3,
            "min_ms": stats.min * 1e3,
            "stddev_ms": stats.stddev * 1e3,
            "rounds": int(getattr(stats, "rounds", 0)),
        }
        extra = getattr(bench, "extra_info", None)
        if extra:
            record["extra"] = dict(extra)
        records[bench.name] = record
    return records


def write_bench_json(path: str, records: dict) -> None:
    payload = {
        "git_sha": _git_sha(),
        "date": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "benchmarks": records,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def check_regression(
    new_path: str, baseline_path: str, test: str, max_ratio: float
) -> int:
    with open(new_path) as fh:
        new = json.load(fh)
    with open(baseline_path) as fh:
        base = json.load(fh)
    try:
        new_ms = new["benchmarks"][test]["mean_ms"]
    except KeyError:
        print(f"bench check: {test!r} missing from {new_path}", file=sys.stderr)
        return 1
    try:
        base_ms = base["benchmarks"][test]["mean_ms"]
    except KeyError:
        print(
            f"bench check: {test!r} missing from baseline {baseline_path}",
            file=sys.stderr,
        )
        return 1
    ratio = new_ms / base_ms
    verdict = "OK" if ratio <= max_ratio else "REGRESSION"
    print(
        f"bench check [{verdict}]: {test} mean {new_ms:.3f} ms vs baseline "
        f"{base_ms:.3f} ms (ratio {ratio:.2f}x, limit {max_ratio:.2f}x)"
    )
    return 0 if ratio <= max_ratio else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", required=True, help="freshly exported bench JSON")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--test", required=True, help="benchmark test name to gate on")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="fail when new mean exceeds baseline mean by this factor",
    )
    args = parser.parse_args(argv)
    return check_regression(args.check, args.baseline, args.test, args.max_ratio)


if __name__ == "__main__":
    raise SystemExit(main())
