"""Bench: Fig. 6 — accuracy vs number of known configurations.

Regenerates the sweep over training budgets for AutoPower, McPAT-Calib
and McPAT-Calib + Component.  The reproduction target: AutoPower's curve
sits below both baselines at every budget (MAPE) and accuracy improves
with more known configurations.
"""

from repro.experiments import fig6_sweep
from repro.experiments.tables import format_table


def test_fig6_training_budget_sweep(benchmark, flow):
    result = benchmark.pedantic(
        fig6_sweep.run,
        args=(flow,),
        kwargs={"budgets": (2, 3, 4, 5, 6)},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["#configs", "method", "MAPE %", "R2"],
            result.rows(),
            title="Fig. 6 — accuracy vs number of known configurations",
        )
    )
    ours = result.series("AutoPower", "mape")
    calib = result.series("McPAT-Calib", "mape")
    comp = result.series("McPAT-Calib+Comp", "mape")
    benchmark.extra_info["autopower_mape_series"] = ours
    benchmark.extra_info["mcpat_calib_mape_series"] = calib
    # AutoPower below (or within noise of) both baselines at every budget,
    # and strictly better at the few-shot budgets the paper headlines.
    for n, (a, b, c) in enumerate(zip(ours, calib, comp)):
        assert a < b * 1.05, f"budget {result.budgets[n]}"
        assert a < c * 1.05, f"budget {result.budgets[n]}"
    assert ours[0] < calib[0]
    assert ours[0] < comp[0]
    # More configurations help AutoPower overall (end vs start).
    assert ours[-1] < ours[0]
