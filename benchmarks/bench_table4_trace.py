"""Bench: Table IV — time-based power traces for GEMM and SPMM.

Full millions-of-cycles traces at 50-cycle steps on C2/C3/C4, predicted
by a model trained only on the average power of two known configurations.
Paper reports max/min/average power errors per (workload, config); ours
must stay in the same band (average error well under the paper's worst
11 %).
"""

from repro.experiments import table4_trace
from repro.experiments.tables import format_table


def test_table4_power_traces(benchmark, flow):
    result = benchmark.pedantic(
        table4_trace.run,
        args=(flow,),
        kwargs={"configs": ("C2", "C3", "C4")},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["workload", "config", "#windows", "max err %", "min err %", "avg err %"],
            result.rows(),
            title="Table IV — time-based power-trace prediction",
        )
    )
    benchmark.extra_info["worst_average_error"] = result.worst_average_error()
    for row in result.rows_:
        assert row.n_windows > 10_000  # millions of cycles at 50-cycle steps
        assert row.average_error < 12.0  # paper band: 2.0 - 11.0 %
        assert row.max_power_error < 25.0
