"""Bench: Fig. 4 — end-to-end accuracy with 2 known configurations.

Paper: AutoPower MAPE 4.36 % / R² 0.96 vs McPAT-Calib 9.29 % / 0.87.
The reproduction target is the comparison shape: AutoPower clearly ahead
on both metrics.
"""

from repro.experiments import fig45_accuracy
from repro.experiments.tables import format_table


def test_fig4_two_config_accuracy(benchmark, flow):
    result = benchmark.pedantic(
        fig45_accuracy.run,
        args=(flow,),
        kwargs={"n_train": 2, "methods": ("AutoPower", "McPAT-Calib")},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["method", "MAPE %", "R2", "R"],
            result.rows(),
            title="Fig. 4 — 2 known configurations (train C1, C15)",
        )
    )
    ours = result.methods["AutoPower"]
    calib = result.methods["McPAT-Calib"]
    benchmark.extra_info["autopower_mape"] = ours.mape
    benchmark.extra_info["mcpat_calib_mape"] = calib.mape
    assert ours.mape < calib.mape
    assert ours.r2 > calib.r2
