"""Bench: Fig. 1 / Observation 1 — power-group breakdown.

Regenerates the framework figure's observation: the golden power-group
shares across all 15 configurations and 8 workloads, with clock + SRAM
dominating.
"""

from repro.experiments import fig1_breakdown
from repro.experiments.tables import format_table


def test_fig1_breakdown(benchmark, flow):
    result = benchmark.pedantic(
        fig1_breakdown.run, args=(flow,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["config", "clock %", "sram %", "register %", "comb %"],
            result.rows(),
            title="Fig. 1 — power-group breakdown (golden)",
        )
    )
    benchmark.extra_info["clock_plus_sram_share"] = result.clock_plus_sram
    assert result.clock_plus_sram > 0.55  # Observation 1
