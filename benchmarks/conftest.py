"""Benchmark fixtures: one shared flow so label generation is cached.

``--jobs N`` (benchmarks only) sets the worker count the fit-scaling
benchmarks run with, so CI can exercise the serial and parallel paths
from the same test file:

    PYTHONPATH=src python -m pytest benchmarks -m perf_smoke
    PYTHONPATH=src python -m pytest benchmarks -m perf_smoke --jobs 2
"""

from __future__ import annotations

import pytest

from repro.vlsi.flow import VlsiFlow


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker count for the parallel fit-scaling benchmarks",
    )


@pytest.fixture(scope="session")
def bench_jobs(request) -> int:
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session")
def flow() -> VlsiFlow:
    return VlsiFlow()
