"""Benchmark fixtures: one shared flow so label generation is cached."""

from __future__ import annotations

import pytest

from repro.vlsi.flow import VlsiFlow


@pytest.fixture(scope="session")
def flow() -> VlsiFlow:
    return VlsiFlow()
