"""Benchmark fixtures: one shared flow so label generation is cached.

``--jobs N`` (benchmarks only) sets the worker count the fit-scaling
benchmarks run with, so CI can exercise the serial and parallel paths
from the same test file:

    PYTHONPATH=src python -m pytest benchmarks -m perf_smoke
    PYTHONPATH=src python -m pytest benchmarks -m perf_smoke --jobs 2

``--bench-json PATH`` (or ``REPRO_BENCH_JSON=PATH``) writes the run's
benchmark stats as JSON (test -> mean/min ms, git sha, date) at session
end — see ``benchmarks/export.py``; CI uploads it as the per-PR perf
trajectory artifact and gates on the committed baseline.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

from repro.env import get_path
from repro.vlsi.flow import VlsiFlow


def _load_export():
    path = pathlib.Path(__file__).with_name("export.py")
    spec = importlib.util.spec_from_file_location("repro_bench_export", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker count for the parallel fit-scaling benchmarks",
    )
    parser.addoption(
        "--bench-json",
        default=get_path("REPRO_BENCH_JSON"),
        help="write benchmark stats (mean/min ms + git sha + date) to this JSON file",
    )


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json", default=None)
    if not path:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    export = _load_export()
    export.write_bench_json(path, export.collect_stats(bench_session.benchmarks))


@pytest.fixture(scope="session")
def bench_jobs(request) -> int:
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session", autouse=True)
def _hermetic_flow_cache(tmp_path_factory):
    """Point the flow disk cache at a per-session temp dir.

    Benchmark timings must not depend on whatever a previous run left
    in ``~/.cache/repro/flow-cache`` — every session starts cold.
    """
    root = tmp_path_factory.mktemp("flow-cache")
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_FLOW_CACHE_DIR", str(root))
    yield str(root)
    mp.undo()


@pytest.fixture(scope="session")
def flow(_hermetic_flow_cache) -> VlsiFlow:
    return VlsiFlow()
