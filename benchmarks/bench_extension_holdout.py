"""Bench: extension — generalization to unseen workloads.

Not a paper figure; an adoption-relevant stress test.  Train on 2 configs
x 6 workloads, evaluate on 13 configs x 2 held-out workloads.  AutoPower's
structural decoupling must keep it ahead of the direct-ML ablation.
"""

from repro.experiments import extension_workload_holdout
from repro.experiments.tables import format_table


def test_unseen_workload_generalization(benchmark, flow):
    result = benchmark.pedantic(
        extension_workload_holdout.run, args=(flow,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["method", "MAPE %", "R2"],
            result.rows(),
            title=(
                "Extension — unseen workloads "
                f"({', '.join(result.holdout_workloads)})"
            ),
        )
    )
    benchmark.extra_info["autopower_mape"] = result.autopower_mape
    benchmark.extra_info["minus_mape"] = result.minus_mape
    # On doubly-unseen points AutoPower must stay at least competitive with
    # the direct-ML ablation (both face the workload shift in their GBMs).
    assert result.autopower_mape < result.minus_mape * 1.1
    assert result.autopower_r2 > 0.7
