"""Bench: Fig. 8 — SRAM-group accuracy, AutoPower vs AutoPower−.

Paper: SRAM MAPE 7.60 %, R 0.94 with 2 known configurations; the
hierarchy + scaling-law model beats the direct-ML ablation.
"""

from repro.experiments import fig8_sram
from repro.experiments.tables import format_table


def test_fig8_sram_group(benchmark, flow):
    result = benchmark.pedantic(
        fig8_sram.run, args=(flow,), kwargs={"n_train": 2}, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["component", "AutoPower MAPE %", "AutoPower- MAPE %"],
            result.rows(),
            title="Fig. 8 — SRAM power accuracy (2 known configs)",
        )
    )
    benchmark.extra_info["overall_mape"] = result.overall_mape[0]
    benchmark.extra_info["overall_pearson"] = result.overall_pearson[0]
    assert result.overall_mape[0] < result.overall_mape[1]
    assert result.overall_pearson[0] > 0.9  # paper: R = 0.94
    assert result.overall_mape[0] < 10.0  # paper: 7.60 %
