"""Asyncio HTTP/JSON gateway over the prediction service fleet.

A deliberately small HTTP/1.1 server hand-rolled on
:func:`asyncio.start_server` — no web framework, no new dependencies.
The data-plane endpoints:

* ``POST /predict`` — one request object or a list of them (see
  :mod:`repro.serving.wire`); routes to the *default* model.  Every
  request flows through that model's cross-request
  :class:`~repro.serving.batcher.MicroBatcher`, so concurrent callers
  coalesce into shared model calls.
* ``POST /models/<name>/predict`` — the same contract against any
  loaded model; each model batches independently.
* ``GET /healthz`` — liveness plus the loaded models and the request
  kinds the default model can serve.  Never requires auth (probes).
* ``GET /stats`` — the default model's
  :class:`~repro.api.service.ServiceStats` snapshot plus gateway-level
  counters, the per-model fleet block, and the auth / per-client
  rate-limit counters (client identities are one-way digests — bearer
  tokens never appear).

The DSE plane (:mod:`repro.dse.jobs` — async design-space exploration):

* ``POST /dse`` — submit a parameter grid (axes over raw Table II rows
  x workloads x method); answers 202 with a job id immediately, the
  sweep runs on a background thread through the disk-cached flow.
* ``GET /dse`` / ``GET /dse/<id>`` — job listing / status + progress.
* ``GET /dse/<id>/results?top=N`` — ranked results (409 until done).
* ``DELETE /dse/<id>`` — request cancellation.

DSE jobs live in *this* worker's memory: poll the same worker that
accepted the submit (with ``SO_REUSEPORT`` pools, use one worker or the
per-worker control port).

And the admin plane (:class:`~repro.serving.fleet.ModelFleet`):

* ``PUT /models/<name>`` — load or hot-reload a model from a
  server-side file path or a full v2 envelope in the body; the swap is
  atomic and in-flight requests finish on the old model bitwise.
* ``DELETE /models/<name>`` — drain-then-unload.
* ``GET /models`` / ``GET /models/<name>`` — the loaded-model listing.

When an :class:`~repro.serving.auth.Authenticator` is configured, every
route except ``/healthz`` requires ``Authorization: Bearer <token>``
(401 missing/malformed, 403 wrong) — checked before any body decoding
or model work.  A configured :class:`~repro.serving.auth.RateLimiter`
spends one token per prediction request from the per-client bucket and
sheds 429 + ``Retry-After`` on exhaustion, independently per client.

Connections are keep-alive by default (``Connection: close`` honored);
errors answer with the structured body from
:func:`repro.serving.wire.encode_error` — 400 for malformed requests,
401/403 from auth, 404 for unknown routes *and* unknown model names,
408 for a peer that stalls mid-request, 413/431 for oversized bodies or
header blocks, 422 for kinds the routed model cannot serve, 429/503/504
from the resilience and rate-limit layers (with ``Retry-After``), 500
for unexpected server-side failures.

Shutdown is graceful by default: :meth:`Gateway.stop` (and
``GatewayThread.stop``) closes the listener(s), cancels idle keep-alive
connections, lets in-flight requests finish — their responses stay
bitwise-equal to direct service calls — and only then tears every
model's batcher down, all bounded by the config's ``drain_timeout_s``.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
from collections import deque
from concurrent.futures import TimeoutError as _FutureTimeoutError
from functools import partial
from typing import Any

from repro.api.service import PredictionService
from repro.dse.jobs import DseError, DseJobManager
from repro.serving import wire
from repro.serving.auth import AuthError, Authenticator, RateLimiter
from repro.serving.fleet import FleetEntry, FleetError, ModelFleet
from repro.serving.resilience import ResilienceConfig, ResilienceError

__all__ = ["Gateway", "GatewayStats", "GatewayThread"]

_MAX_BODY_BYTES = 8 * 1024 * 1024
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    """Transport-level refusal (malformed HTTP); closes the connection."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _top_from_query(query: str) -> int | None:
    """``top=N`` from a raw query string (None when absent)."""
    for part in query.split("&"):
        name, sep, value = part.partition("=")
        if sep and name == "top":
            try:
                return int(value)
            except ValueError:
                raise wire.WireError(
                    400, f"'top' must be an integer, got {value!r}"
                ) from None
    return None


class GatewayStats:
    """Gateway-level counters (the batching layer's observability)."""

    def __init__(self, latency_window: int = 1024) -> None:
        self.http_requests = 0
        self.predict_requests = 0
        self.predict_responses = 0
        self.errors: dict[int, int] = {}
        self._latencies: deque[float] = deque(maxlen=latency_window)

    def record_error(self, status: int) -> None:
        self.errors[status] = self.errors.get(status, 0) + 1

    def record_latency(self, seconds: float) -> None:
        self._latencies.append(seconds)

    def latency_ms(self) -> dict:
        """p50/p95 request latency (ms) over the sliding window."""
        if not self._latencies:
            return {"window": 0, "p50": None, "p95": None}
        ordered = sorted(self._latencies)

        def percentile(p: float) -> float:
            index = min(len(ordered) - 1, round(p * (len(ordered) - 1)))
            return ordered[index] * 1e3

        return {
            "window": len(ordered),
            "p50": percentile(0.50),
            "p95": percentile(0.95),
        }

    def snapshot(self) -> dict:
        return {
            "http_requests": self.http_requests,
            "predict_requests": self.predict_requests,
            "predict_responses": self.predict_responses,
            "errors": {str(k): v for k, v in sorted(self.errors.items())},
            "latency_ms": self.latency_ms(),
        }


class Gateway:
    """The HTTP front end: one model fleet, one (or two) listeners.

    ``service`` accepts either a single
    :class:`~repro.api.service.PredictionService` (wrapped as the fleet's
    default model — the pre-fleet call shape) or a ready
    :class:`~repro.serving.fleet.ModelFleet`.  ``port=0`` binds an
    ephemeral port; the bound port is on :attr:`port` after
    :meth:`start`.  ``resilience`` carries the
    admission/deadline/breaker/drain knobs
    (:class:`~repro.serving.resilience.ResilienceConfig`); ``clock`` is
    the injectable monotonic time source the fault-injection tests use.

    Fleet-worker extras: ``reuse_port=True`` binds the data listener
    with ``SO_REUSEPORT`` (so sibling workers share the port), and
    ``control_port`` (e.g. ``0``) binds a second loopback listener
    serving the same routes — the per-worker admin/stats plane the pool
    parent fans out to.
    """

    def __init__(
        self,
        service: PredictionService | ModelFleet,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        resilience: ResilienceConfig | None = None,
        clock: Any = None,
        auth: Authenticator | None = None,
        rate_limiter: RateLimiter | None = None,
        reuse_port: bool = False,
        control_port: int | None = None,
    ) -> None:
        self.host = host
        self.port: int | None = None
        self._requested_port = port
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        if isinstance(service, ModelFleet):
            self.fleet = service
        else:
            self.fleet = ModelFleet(
                max_batch_size=max_batch_size,
                max_wait_ms=max_wait_ms,
                resilience=self.resilience,
                clock=clock,
            )
            self.fleet.add_service(service)
        self.auth = auth if auth is not None else Authenticator()
        self.rate_limiter = (
            rate_limiter if rate_limiter is not None else RateLimiter(None)
        )
        self.dse = DseJobManager()
        self.reuse_port = reuse_port
        self.control_port: int | None = None
        self._requested_control_port = control_port
        self.stats = GatewayStats()  # guarded-by: loop
        self._server: asyncio.base_events.Server | None = None
        self._control_server: asyncio.base_events.Server | None = None
        # Live connection handlers and their phase ("idle" = waiting for
        # the next request on a keep-alive connection, "busy" = a parsed
        # request is being served) — what graceful drain walks.
        self._handlers: dict[asyncio.Task, dict] = {}  # guarded-by: loop

    # Back-compat accessors: the default model's service and batcher
    # (the pre-fleet single-model surface tests and embedders use).
    @property
    def service(self) -> PredictionService:
        return self.fleet.peek(self.fleet.default_model).service

    @property
    def batcher(self):
        return self.fleet.peek(self.fleet.default_model).batcher

    @property
    def draining(self) -> bool:
        return self.fleet.draining

    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.fleet.start()
        kwargs = {"reuse_port": True} if self.reuse_port else {}
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self._requested_port, **kwargs
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self._requested_control_port is not None:
            self._control_server = await asyncio.start_server(
                self._handle_client, "127.0.0.1", self._requested_control_port
            )
            self.control_port = (
                self._control_server.sockets[0].getsockname()[1]
            )

    async def stop(
        self, drain: bool = True, drain_timeout: float | None = None
    ) -> None:
        """Stop the gateway.

        ``drain=True`` (default) is the graceful path: close the
        listeners, stop admitting new requests (they answer 503), cancel
        idle keep-alive connections, wait for busy handlers — their
        in-flight responses complete bitwise-equal — then drain and stop
        every model's batcher.  ``drain=False`` hard-cancels everything.
        Both are bounded by ``drain_timeout`` (default: the config's
        ``drain_timeout_s``) and idempotent.
        """
        if drain_timeout is None:
            drain_timeout = self.resilience.drain_timeout_s
        servers = [
            s
            for s in (self._server, self._control_server)
            if s is not None
        ]
        self._server = None
        self._control_server = None
        for server in servers:
            server.close()
        # Background DSE sweeps stop first: they check their cancel flag
        # between chunks, so they wind down while the handlers drain.
        await asyncio.get_running_loop().run_in_executor(
            None, partial(self.dse.stop, drain_timeout if drain else 1.0)
        )
        if drain:
            # New submissions refuse with 503 from this point on; busy
            # handlers' already-submitted requests still complete.
            self.fleet.begin_drain()
            await self._drain_handlers(drain_timeout)
        else:
            for task in list(self._handlers):
                task.cancel()
            await self._drain_handlers(1.0)
        await self.fleet.stop(drain=drain, drain_timeout=drain_timeout)
        for server in servers:
            # After the handlers above finished this returns promptly on
            # every supported Python (3.12+ waits for handler tasks).
            await server.wait_closed()

    async def _drain_handlers(self, timeout: float) -> None:
        """Cancel idle connections, then wait out the busy ones."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        for task, state in list(self._handlers.items()):
            if state["phase"] == "idle":
                task.cancel()
        pending = [task for task in self._handlers if not task.done()]
        if pending:
            _done, still = await asyncio.wait(
                pending, timeout=max(0.0, deadline - loop.time())
            )
            for task in still:  # drain budget exhausted: hard-cancel
                task.cancel()
            if still:
                await asyncio.wait(still, timeout=1.0)

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        state = {"phase": "idle"}
        task = asyncio.current_task()
        self._handlers[task] = state
        peername = writer.get_extra_info("peername")
        peer_host = peername[0] if isinstance(peername, tuple) else "unknown"
        try:
            while True:
                state["phase"] = "idle"
                try:
                    parsed = await self._read_request(reader)
                except _HttpError as exc:
                    state["phase"] = "busy"
                    self.stats.record_error(exc.status)
                    await self._respond(
                        writer,
                        exc.status,
                        wire.encode_error(exc.status, exc.message),
                        keep_alive=False,
                    )
                    break
                if parsed is None:
                    break
                state["phase"] = "busy"
                method, path, headers, body = parsed
                keep_alive = headers.get("connection", "").lower() != "close"
                self.stats.http_requests += 1
                extra_headers = None
                try:
                    client = self._authenticate(path, headers, peer_host)
                    status, payload = await self._dispatch(
                        method, path, body, client
                    )
                except AuthError as exc:
                    status, payload = exc.status, wire.encode_error(
                        exc.status, exc.message
                    )
                    if exc.status == 401:
                        extra_headers = {"WWW-Authenticate": "Bearer"}
                except wire.WireError as exc:
                    status, payload = exc.status, wire.encode_error(
                        exc.status, exc.message
                    )
                except DseError as exc:
                    status, payload = exc.status, wire.encode_error(
                        exc.status, exc.message
                    )
                except FleetError as exc:
                    status, payload = exc.status, wire.encode_error(
                        exc.status, exc.message
                    )
                except ResilienceError as exc:
                    status, payload = exc.status, wire.encode_error(
                        exc.status, exc.message
                    )
                    if exc.retry_after is not None:
                        extra_headers = {"Retry-After": str(exc.retry_after)}
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # unexpected server-side failure
                    status, payload = 500, wire.encode_error(
                        500, f"{type(exc).__name__}: {exc}"
                    )
                if status >= 400:
                    self.stats.record_error(status)
                keep_alive = keep_alive and not self.draining
                await self._respond(
                    writer, status, payload, keep_alive, extra_headers
                )
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown with the connection idle: close quietly
            # (asyncio.streams' connection callback would otherwise log
            # the cancellation as an unhandled task exception).
            pass
        finally:
            self._handlers.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _authenticate(
        self, path: str, headers: dict, peer_host: str
    ) -> str:
        """Gate one parsed request; returns the rate-limit client key.

        ``/healthz`` stays open for liveness probes.  With auth enabled
        the client identity is the token's one-way digest; without it,
        the peer address — either way the raw token never lands in a
        counter or a stats payload.
        """
        if path.split("?", 1)[0] == "/healthz":
            return peer_host
        digest = self.auth.check(headers.get("authorization"))
        return digest if digest is not None else peer_host

    async def _read(self, coro, first_line: bool):
        """One bounded stream read.

        A peer that stalls mid-request answers 408 and loses the
        connection — a slow client must not be able to hold a handler
        (and therefore a drain) hostage.  A timeout while *waiting* for
        the next request on an idle keep-alive connection is not an
        error; the connection is just closed.
        """
        timeout = self.resilience.read_timeout_s
        if timeout is None:
            return await coro
        try:
            return await asyncio.wait_for(coro, timeout)
        except asyncio.TimeoutError:
            if first_line:
                return None
            raise _HttpError(
                408, f"timed out reading request after {timeout:g}s"
            ) from None

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP request; ``None`` on a cleanly closed connection."""
        try:
            line = await self._read(reader.readline(), first_line=True)
        except ValueError:  # request line longer than the stream limit
            raise _HttpError(400, "request line too long") from None
        if not line:
            return None
        try:
            method, path, _version = line.decode("ascii").split()
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(400, "malformed request line") from None
        headers: dict[str, str] = {}
        header_bytes = 0
        max_count = self.resilience.max_header_count
        max_bytes = self.resilience.max_header_bytes
        while True:
            try:
                header_line = await self._read(
                    reader.readline(), first_line=False
                )
            except ValueError:
                raise _HttpError(400, "header line too long") from None
            if header_line in (b"\r\n", b"\n"):
                break
            if not header_line:
                return None
            header_bytes += len(header_line)
            if len(headers) >= max_count:
                raise _HttpError(
                    431, f"more than {max_count} request headers"
                )
            if header_bytes > max_bytes:
                raise _HttpError(
                    431, f"request headers exceed {max_bytes} bytes"
                )
            name, sep, value = header_line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, "malformed header line")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length < 0:
            raise _HttpError(400, "bad Content-Length")
        if length > _MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {_MAX_BODY_BYTES} bytes")
        body = (
            await self._read(reader.readexactly(length), first_line=False)
            if length
            else b""
        )
        return method.upper(), path, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        keep_alive: bool,
        extra_headers: dict | None = None,
    ) -> None:
        body = json.dumps(payload).encode()
        extra = "".join(
            f"{name}: {value}\r\n"
            for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, path: str, body: bytes, client: str):
        path, _, query = path.partition("?")
        if path == "/healthz":
            if method != "GET":
                return 405, wire.encode_error(405, "use GET /healthz")
            return 200, self._healthz_payload()
        if path == "/stats":
            if method != "GET":
                return 405, wire.encode_error(405, "use GET /stats")
            return 200, self._stats_payload()
        if path == "/predict":
            if method != "POST":
                return 405, wire.encode_error(405, "use POST /predict")
            return await self._predict(body, self.fleet.entry(None), client)
        if path == "/models":
            if method != "GET":
                return 405, wire.encode_error(
                    405, "use GET /models (admin ops go to /models/<name>)"
                )
            return 200, self._models_payload()
        if path == "/dse":
            if method == "POST":
                return self._dse_submit(body, client)
            if method == "GET":
                return 200, self.dse.list_payload()
            return 405, wire.encode_error(405, "use POST or GET /dse")
        if path.startswith("/dse/"):
            parts = [p for p in path[len("/dse/") :].split("/") if p]
            if len(parts) == 1:
                job_id = parts[0]
                if method == "GET":
                    return 200, self.dse.get(job_id).snapshot()
                if method == "DELETE":
                    return 200, self.dse.cancel(job_id)
                return 405, wire.encode_error(
                    405, f"use GET/DELETE /dse/{job_id}"
                )
            if len(parts) == 2 and parts[1] == "results":
                if method != "GET":
                    return 405, wire.encode_error(
                        405, f"use GET /dse/{parts[0]}/results"
                    )
                return 200, self.dse.get(parts[0]).results_payload(
                    _top_from_query(query)
                )
        if path.startswith("/models/"):
            parts = [p for p in path[len("/models/") :].split("/") if p]
            if len(parts) == 2 and parts[1] == "predict":
                if method != "POST":
                    return 405, wire.encode_error(
                        405, f"use POST /models/{parts[0]}/predict"
                    )
                return await self._predict(
                    body, self.fleet.entry(parts[0]), client
                )
            if len(parts) == 1:
                name = parts[0]
                if method == "PUT":
                    return await self._load_model(name, body)
                if method == "DELETE":
                    return 200, await self.fleet.unload(name)
                if method == "GET":
                    return 200, self.fleet.peek(name).info()
                return 405, wire.encode_error(
                    405, f"use PUT/DELETE/GET /models/{name}"
                )
        return 404, wire.encode_error(404, f"no route for {path!r}")

    def _dse_submit(self, body: bytes, client: str):
        """``POST /dse``: validate synchronously, run on a daemon thread.

        Submission is cheap (grid arithmetic, no flow work), so it runs
        on the event loop; the sweep itself never touches the loop.
        Draining gateways refuse with 503, and a submission spends one
        rate-limit token like a prediction request.
        """
        if self.draining:
            raise DseError(503, "gateway is draining; not accepting DSE jobs")
        self.rate_limiter.admit(client, cost=1)
        try:
            payload = json.loads(body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise wire.WireError(400, "request body is not valid JSON") from None
        spec = wire.decode_dse_submit(payload)
        job = self.dse.submit(spec)
        return 202, {
            **job.snapshot(),
            "poll": f"/dse/{job.id}",
            "results": f"/dse/{job.id}/results",
        }

    def _healthz_payload(self) -> dict:
        try:
            default = self.fleet.peek(self.fleet.default_model)
        except FleetError:
            default = None
        return {
            "status": "draining" if self.draining else "ok",
            "model": (
                type(default.model).__name__ if default is not None else None
            ),
            "kinds": (
                list(wire.supported_kinds(default.model))
                if default is not None
                else []
            ),
            "models": self.fleet.names(),
            "default_model": self.fleet.default_model,
            "workers": 1,
            # The worker's pid: the chaos harness and supervisor tests
            # pick SIGKILL targets from the fleet /healthz fan-out.
            "pid": os.getpid(),
        }

    def _stats_payload(self) -> dict:
        try:
            default = self.fleet.peek(self.fleet.default_model)
        except FleetError:
            default = None
        entries = [self.fleet.peek(name) for name in self.fleet.names()]
        flushes = sum(e.batcher.flushes for e in entries)
        flushed_requests = sum(e.batcher.flushed_requests for e in entries)
        return {
            "service": (
                default.service.stats_snapshot()
                if default is not None
                else None
            ),
            "gateway": {
                **self.stats.snapshot(),
                "queue_depth": sum(e.batcher.queue_depth for e in entries),
                "flushes": flushes,
                "flushed_requests": flushed_requests,
                "mean_flush_size": (
                    flushed_requests / flushes if flushes else None
                ),
                "max_flush_size": max(
                    (e.batcher.max_flush_size for e in entries), default=0
                ),
            },
            "resilience": (
                default.batcher.resilience_snapshot()
                if default is not None
                else None
            ),
            "fleet": self.fleet.snapshot(),
            "dse": self.dse.snapshot(),
            "auth": self.auth.snapshot(),
            "rate_limit": self.rate_limiter.snapshot(),
        }

    def _models_payload(self) -> dict:
        return {
            "default_model": self.fleet.default_model,
            "max_models": self.fleet.max_models,
            "models": {
                name: self.fleet.peek(name).info()
                for name in self.fleet.names()
            },
        }

    async def _load_model(self, name: str, body: bytes):
        """``PUT /models/<name>``: load/hot-reload from a path or envelope.

        The (possibly slow) model-state decode runs on the default
        executor so the event loop keeps serving; the fleet swap itself
        happens on the loop and is atomic.
        """
        from repro.serving.fleet import validate_model_name

        validate_model_name(name)  # 400 before any body or model work
        try:
            payload = json.loads(body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise wire.WireError(400, "request body is not valid JSON") from None
        kind, value = wire.decode_model_load(payload)
        import repro.api as api

        loader = (
            partial(api.load_model, value)
            if kind == "path"
            else partial(api.model_from_envelope, value)
        )
        loop = asyncio.get_running_loop()
        try:
            model = await loop.run_in_executor(None, loader)
        except (OSError, ValueError, KeyError) as exc:
            source = value if kind == "path" else "request envelope"
            raise wire.WireError(
                400, f"cannot load model from {source!r}: {exc}"
            ) from None
        source = f"path:{value}" if kind == "path" else "envelope"
        return 200, await self.fleet.load(name, model, source)

    async def _predict(self, body: bytes, entry: FleetEntry, client: str):
        try:
            payload = json.loads(body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise wire.WireError(400, "request body is not valid JSON") from None
        single = isinstance(payload, dict)
        items = [payload] if single else payload
        if not isinstance(items, list):
            raise wire.WireError(400, "request must be an object or a list")
        if not items:
            raise wire.WireError(400, "request list is empty")
        # Per-client rate limiting: one bucket token per prediction
        # request, spent before any decoding or model work.
        self.rate_limiter.admit(client, cost=len(items))
        model = entry.service.model
        requests = [wire.decode_request(obj, model=model) for obj in items]
        # Count at admission (not on success), so the /stats error ratio
        # predict_responses / predict_requests means what it says.
        self.stats.predict_requests += len(requests)
        loop = asyncio.get_running_loop()
        start = loop.time()
        # return_exceptions so one failing request doesn't leave its
        # siblings' exceptions unretrieved; wire validation already ran,
        # so a failure here is either a resilience shed (mapped to its
        # status upstream) or a server-side error for the whole call.
        responses = await asyncio.gather(
            *(entry.batcher.submit(request) for request in requests),
            return_exceptions=True,
        )
        self.stats.record_latency(loop.time() - start)
        for response in responses:
            if isinstance(response, BaseException):
                raise response
        self.stats.predict_responses += len(responses)
        encoded = [wire.encode_response(response) for response in responses]
        return 200, (encoded[0] if single else encoded)


class GatewayThread:
    """Run a :class:`Gateway` on a private event loop in a daemon thread.

    The synchronous-world handle tests, benchmarks and embedding callers
    use: ``start()`` returns once the port is bound, ``stop()`` drains
    gracefully by default and tears the loop down.  Usable as a context
    manager.
    """

    def __init__(
        self,
        service: PredictionService | ModelFleet,
        **gateway_kwargs: Any,
    ) -> None:
        self.gateway = Gateway(service, **gateway_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.gateway.port

    @property
    def host(self) -> str:
        return self.gateway.host

    def start(self) -> GatewayThread:
        if self._thread is not None:
            raise RuntimeError("gateway thread is already running")
        ready = threading.Event()
        startup_error: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.gateway.start())
            except BaseException as exc:  # surface bind failures to start()
                startup_error.append(exc)
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                # Idempotent: a graceful stop() already ran the drain on
                # this loop; this covers the hard-stop and crash paths.
                loop.run_until_complete(self.gateway.stop(drain=False))
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-gateway", daemon=True
        )
        self._thread.start()
        ready.wait()
        if startup_error:
            self._thread.join()
            self._thread = None
            raise startup_error[0]
        return self

    def stop(
        self, drain: bool = True, drain_timeout: float | None = None
    ) -> None:
        """Stop the gateway and its event-loop thread.

        ``drain=True`` (default) completes in-flight requests first,
        bounded by ``drain_timeout`` (default: the config's
        ``drain_timeout_s``).  If the loop thread fails to stop within
        its join budget this *raises* with diagnostic state instead of
        silently leaking a wedged daemon thread — the handle keeps its
        references so the caller can inspect or retry.
        """
        if self._thread is None:
            return
        if drain and self._loop.is_running():
            budget = (
                drain_timeout
                if drain_timeout is not None
                else self.gateway.resilience.drain_timeout_s
            )
            try:
                asyncio.run_coroutine_threadsafe(
                    self.gateway.stop(drain=True, drain_timeout=drain_timeout),
                    self._loop,
                ).result(timeout=budget + 10.0)
            except _FutureTimeoutError:
                pass  # diagnosed below: the join will time out too
            except RuntimeError:
                pass  # loop shut down concurrently; the join settles it
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        if self._thread.is_alive():
            # A wedged loop must not be silently leaked: keep the
            # references (so the caller can inspect or retry) and raise
            # with enough state to debug what is stuck.
            fleet = self.gateway.fleet
            queue_depth = sum(
                fleet.peek(name).batcher.queue_depth
                for name in fleet.names()
            )
            raise RuntimeError(
                "gateway event loop failed to stop within 10s: "
                f"thread {self._thread.name!r} is still alive, "
                f"loop running={self._loop.is_running()}, "
                f"draining={self.gateway.draining}, "
                f"queue_depth={queue_depth}, "
                f"open_connections={len(self.gateway._handlers)}"
            )
        self._thread = None
        self._loop = None

    def __enter__(self) -> GatewayThread:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
