"""Asyncio HTTP/JSON gateway over the prediction service.

A deliberately small HTTP/1.1 server hand-rolled on
:func:`asyncio.start_server` — no web framework, no new dependencies.
Three endpoints:

* ``POST /predict`` — one request object or a list of them (see
  :mod:`repro.serving.wire`); single object in, single object out.
  Every request flows through the cross-request
  :class:`~repro.serving.batcher.MicroBatcher`, so concurrent callers
  coalesce into shared model calls.
* ``GET /healthz`` — liveness plus the loaded model's identity and the
  request kinds it can serve.
* ``GET /stats`` — the service's :class:`~repro.api.service.ServiceStats`
  snapshot plus gateway-level counters: HTTP/predict request counts,
  per-status error counts, live queue depth, flush count/sizes and
  p50/p95 request latency over a sliding window.

Connections are keep-alive by default (``Connection: close`` honored);
errors answer with the structured body from
:func:`repro.serving.wire.encode_error` — 400 for malformed requests,
422 for kinds the loaded model cannot serve, 404/405 for unknown
routes, 500 for unexpected server-side failures.
"""

from __future__ import annotations

import asyncio
import json
import threading
from collections import deque
from typing import Any

from repro.api.service import PredictionService
from repro.serving import wire
from repro.serving.batcher import MicroBatcher

__all__ = ["Gateway", "GatewayStats", "GatewayThread"]

_MAX_BODY_BYTES = 8 * 1024 * 1024
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    """Transport-level refusal (malformed HTTP); closes the connection."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class GatewayStats:
    """Gateway-level counters (the batching layer's observability)."""

    def __init__(self, latency_window: int = 1024) -> None:
        self.http_requests = 0
        self.predict_requests = 0
        self.predict_responses = 0
        self.errors: dict[int, int] = {}
        self._latencies: deque[float] = deque(maxlen=latency_window)

    def record_error(self, status: int) -> None:
        self.errors[status] = self.errors.get(status, 0) + 1

    def record_latency(self, seconds: float) -> None:
        self._latencies.append(seconds)

    def latency_ms(self) -> dict:
        """p50/p95 request latency (ms) over the sliding window."""
        if not self._latencies:
            return {"window": 0, "p50": None, "p95": None}
        ordered = sorted(self._latencies)

        def percentile(p: float) -> float:
            index = min(len(ordered) - 1, round(p * (len(ordered) - 1)))
            return ordered[index] * 1e3

        return {
            "window": len(ordered),
            "p50": percentile(0.50),
            "p95": percentile(0.95),
        }

    def snapshot(self) -> dict:
        return {
            "http_requests": self.http_requests,
            "predict_requests": self.predict_requests,
            "predict_responses": self.predict_responses,
            "errors": {str(k): v for k, v in sorted(self.errors.items())},
            "latency_ms": self.latency_ms(),
        }


class Gateway:
    """The HTTP front end: one service, one batcher, one listener.

    ``port=0`` binds an ephemeral port; the bound port is on
    :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        service: PredictionService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port: int | None = None
        self._requested_port = port
        self.batcher = MicroBatcher(
            service, max_batch_size=max_batch_size, max_wait_ms=max_wait_ms
        )
        self.stats = GatewayStats()
        self._server: asyncio.base_events.Server | None = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.stop()

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _HttpError as exc:
                    await self._respond(
                        writer,
                        exc.status,
                        wire.encode_error(exc.status, exc.message),
                        keep_alive=False,
                    )
                    break
                if parsed is None:
                    break
                method, path, headers, body = parsed
                keep_alive = headers.get("connection", "").lower() != "close"
                self.stats.http_requests += 1
                try:
                    status, payload = await self._dispatch(method, path, body)
                except wire.WireError as exc:
                    status, payload = exc.status, wire.encode_error(
                        exc.status, exc.message
                    )
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # unexpected server-side failure
                    status, payload = 500, wire.encode_error(
                        500, f"{type(exc).__name__}: {exc}"
                    )
                if status >= 400:
                    self.stats.record_error(status)
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown with the connection idle: close quietly
            # (asyncio.streams' connection callback would otherwise log
            # the cancellation as an unhandled task exception).
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP request; ``None`` on a cleanly closed connection."""
        try:
            line = await reader.readline()
        except ValueError:  # request line longer than the stream limit
            raise _HttpError(400, "request line too long") from None
        if not line:
            return None
        try:
            method, path, _version = line.decode("ascii").split()
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(400, "malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            try:
                header_line = await reader.readline()
            except ValueError:
                raise _HttpError(400, "header line too long") from None
            if header_line in (b"\r\n", b"\n"):
                break
            if not header_line:
                return None
            name, sep, value = header_line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, "malformed header line")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length < 0:
            raise _HttpError(400, "bad Content-Length")
        if length > _MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {_MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, path: str, body: bytes):
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return 405, wire.encode_error(405, "use GET /healthz")
            return 200, {
                "status": "ok",
                "model": type(self.service.model).__name__,
                "kinds": list(wire.supported_kinds(self.service.model)),
            }
        if path == "/stats":
            if method != "GET":
                return 405, wire.encode_error(405, "use GET /stats")
            batcher = self.batcher
            flushes = batcher.flushes
            return 200, {
                "service": self.service.stats_snapshot(),
                "gateway": {
                    **self.stats.snapshot(),
                    "queue_depth": batcher.queue_depth,
                    "flushes": flushes,
                    "flushed_requests": batcher.flushed_requests,
                    "mean_flush_size": (
                        batcher.flushed_requests / flushes if flushes else None
                    ),
                    "max_flush_size": batcher.max_flush_size,
                },
            }
        if path == "/predict":
            if method != "POST":
                return 405, wire.encode_error(405, "use POST /predict")
            return await self._predict(body)
        return 404, wire.encode_error(404, f"no route for {path!r}")

    async def _predict(self, body: bytes):
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise wire.WireError(400, "request body is not valid JSON") from None
        single = isinstance(payload, dict)
        items = [payload] if single else payload
        if not isinstance(items, list):
            raise wire.WireError(400, "request must be an object or a list")
        if not items:
            raise wire.WireError(400, "request list is empty")
        model = self.service.model
        requests = [wire.decode_request(obj, model=model) for obj in items]
        loop = asyncio.get_running_loop()
        start = loop.time()
        # return_exceptions so one failing request doesn't leave its
        # siblings' exceptions unretrieved; wire validation already ran,
        # so a failure here is a server-side error for the whole call.
        responses = await asyncio.gather(
            *(self.batcher.submit(request) for request in requests),
            return_exceptions=True,
        )
        self.stats.record_latency(loop.time() - start)
        for response in responses:
            if isinstance(response, BaseException):
                raise response
        self.stats.predict_requests += len(requests)
        self.stats.predict_responses += len(responses)
        encoded = [wire.encode_response(response) for response in responses]
        return 200, (encoded[0] if single else encoded)


class GatewayThread:
    """Run a :class:`Gateway` on a private event loop in a daemon thread.

    The synchronous-world handle tests, benchmarks and embedding callers
    use: ``start()`` returns once the port is bound, ``stop()`` tears the
    loop down.  Usable as a context manager.
    """

    def __init__(self, service: PredictionService, **gateway_kwargs: Any) -> None:
        self.gateway = Gateway(service, **gateway_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.gateway.port

    @property
    def host(self) -> str:
        return self.gateway.host

    def start(self) -> "GatewayThread":
        if self._thread is not None:
            raise RuntimeError("gateway thread is already running")
        ready = threading.Event()
        startup_error: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.gateway.start())
            except BaseException as exc:  # surface bind failures to start()
                startup_error.append(exc)
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.gateway.stop())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-gateway", daemon=True
        )
        self._thread.start()
        ready.wait()
        if startup_error:
            self._thread.join()
            self._thread = None
            raise startup_error[0]
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "GatewayThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
