"""``repro.serving`` — the async HTTP serving layer over ``repro.api``.

A fitted AutoPower-style model answers architecture-side power queries
from performance-simulator events alone — no EDA flow in the loop —
which makes it a natural long-running service.  This package is that
service: an asyncio HTTP/JSON gateway (stdlib only, no new runtime
dependencies) whose core is a **cross-request micro-batcher** — requests
from concurrent HTTP callers coalesce into shared
:meth:`~repro.api.service.PredictionService.submit_many` calls, with
responses bitwise-equal to direct per-request service calls.

* :class:`Gateway` — the asyncio server (``POST /predict``,
  ``POST /models/<name>/predict``, model admin under ``/models``,
  ``GET /healthz``, ``GET /stats``),
* :class:`ModelFleet` — a size-bounded LRU map of named models, each
  behind its own :class:`MicroBatcher`, with atomic hot reload
  (``PUT /models/<name>``) and drain-then-unload
  (``DELETE /models/<name>``),
* :class:`MicroBatcher` — the queue/flush coalescing layer,
* :class:`GatewayThread` — a synchronous handle running the gateway on
  a background event loop (what tests and benchmarks use),
* :class:`Authenticator` / :class:`RateLimiter` — static bearer-token
  auth (401/403) and per-client token buckets (429 + ``Retry-After``),
  layered *before* any model work,
* :func:`run_worker_pool` / :class:`Supervisor` — ``serve --workers
  N``: shared-nothing ``SO_REUSEPORT`` worker processes under a
  self-healing parent control plane that merges ``/stats``
  (:func:`merge_stats`), fans out model admin (journaled in an
  :class:`AdminJournal` and replayed to restarted workers), restarts
  crashed workers with exponential backoff behind a
  :class:`CrashLoopBreaker`, and reports ``degraded`` while a
  replacement comes up,
* :mod:`repro.serving.wire` — the JSON request/response codec with
  structured 400/422 errors,
* :mod:`repro.serving.resilience` — admission control (bounded queue,
  429 + ``Retry-After``), per-request deadlines (504), a circuit
  breaker around the model worker (503) and graceful drain
  (:class:`ResilienceConfig` carries the knobs),
* :class:`ServingClient` — the retrying HTTP client (capped exponential
  backoff + jitter, honors ``Retry-After``; ``token=`` / ``model=``
  select credentials and the routed model),
* :mod:`repro.serving.faults` — deterministic fault injection at the
  service boundary (and, via :class:`ProcessChaos`, at the process
  level), for testing all of the above without sleeps.

Command line::

    python -m repro serve --model model.json --port 8000 --workers 2 \
        --auth-token-env REPRO_TOKEN --rate-limit 50 --max-wait-ms 2 \
        --queue-depth 1024 --default-deadline-ms 2000 --drain-timeout 10
"""

from repro.serving.auth import (
    AuthError,
    Authenticator,
    RateLimitedError,
    RateLimiter,
)
from repro.serving.batcher import MicroBatcher
from repro.serving.client import ServingClient, ServingError
from repro.serving.faults import ProcessChaos
from repro.serving.fleet import (
    FleetEntry,
    FleetError,
    ModelFleet,
    format_announce,
    merge_stats,
    parse_announce,
    run_worker_pool,
)
from repro.serving.gateway import Gateway, GatewayStats, GatewayThread
from repro.serving.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    DrainingError,
    OverloadError,
    ResilienceConfig,
    ResilienceError,
)
from repro.serving.supervisor import (
    AdminJournal,
    CrashLoopBreaker,
    RestartBackoff,
    Supervisor,
)
from repro.serving.wire import WireError

__all__ = [
    "AdminJournal",
    "AuthError",
    "Authenticator",
    "CircuitBreaker",
    "CircuitOpenError",
    "CrashLoopBreaker",
    "DeadlineExceededError",
    "DrainingError",
    "FleetEntry",
    "FleetError",
    "Gateway",
    "GatewayStats",
    "GatewayThread",
    "MicroBatcher",
    "ModelFleet",
    "OverloadError",
    "ProcessChaos",
    "RateLimitedError",
    "RateLimiter",
    "ResilienceConfig",
    "ResilienceError",
    "RestartBackoff",
    "ServingClient",
    "ServingError",
    "Supervisor",
    "WireError",
    "format_announce",
    "merge_stats",
    "parse_announce",
    "run_worker_pool",
]
