"""``repro.serving`` — the async HTTP serving layer over ``repro.api``.

A fitted AutoPower-style model answers architecture-side power queries
from performance-simulator events alone — no EDA flow in the loop —
which makes it a natural long-running service.  This package is that
service: an asyncio HTTP/JSON gateway (stdlib only, no new runtime
dependencies) whose core is a **cross-request micro-batcher** — requests
from concurrent HTTP callers coalesce into shared
:meth:`~repro.api.service.PredictionService.submit_many` calls, with
responses bitwise-equal to direct per-request service calls.

* :class:`Gateway` — the asyncio server (``POST /predict``,
  ``GET /healthz``, ``GET /stats``),
* :class:`MicroBatcher` — the queue/flush coalescing layer,
* :class:`GatewayThread` — a synchronous handle running the gateway on
  a background event loop (what tests and benchmarks use),
* :mod:`repro.serving.wire` — the JSON request/response codec with
  structured 400/422 errors,
* :mod:`repro.serving.resilience` — admission control (bounded queue,
  429 + ``Retry-After``), per-request deadlines (504), a circuit
  breaker around the model worker (503) and graceful drain
  (:class:`ResilienceConfig` carries the knobs),
* :class:`ServingClient` — the retrying HTTP client (capped exponential
  backoff + jitter, honors ``Retry-After``),
* :mod:`repro.serving.faults` — deterministic fault injection at the
  service boundary, for testing all of the above without sleeps.

Command line::

    python -m repro serve --model model.json --port 8000 --max-wait-ms 2 \
        --queue-depth 1024 --default-deadline-ms 2000 --drain-timeout 10
"""

from repro.serving.batcher import MicroBatcher
from repro.serving.client import ServingClient, ServingError
from repro.serving.gateway import Gateway, GatewayStats, GatewayThread
from repro.serving.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    DrainingError,
    OverloadError,
    ResilienceConfig,
    ResilienceError,
)
from repro.serving.wire import WireError

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "DrainingError",
    "Gateway",
    "GatewayStats",
    "GatewayThread",
    "MicroBatcher",
    "OverloadError",
    "ResilienceConfig",
    "ResilienceError",
    "ServingClient",
    "ServingError",
    "WireError",
]
