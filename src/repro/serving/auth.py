"""Authentication and per-client rate limiting for the serving gateway.

Two independent gates the gateway runs *before* any request body is
decoded or any model work happens:

* **Static bearer tokens** — :class:`Authenticator` holds a set of
  tokens sourced from a literal, an environment variable, or a file
  (one token per line).  A request must carry
  ``Authorization: Bearer <token>``: a missing/malformed header answers
  401 (with ``WWW-Authenticate: Bearer``), a wrong token answers 403.
  Comparison is constant-time (:func:`hmac.compare_digest`) and the
  tokens themselves never appear in counters, ``/stats`` or error
  messages — clients are identified by a short one-way digest.
* **Per-client token buckets** — :class:`RateLimiter` grants each
  client identity (the token digest when auth is on, the peer address
  otherwise) ``rate`` requests/second with a ``burst`` ceiling.  An
  exhausted bucket answers :class:`RateLimitedError` (429) carrying the
  computed ``Retry-After`` — the seconds until the bucket holds enough
  tokens for the refused request — while *other* clients' buckets are
  untouched and their requests keep being served bitwise.  This is the
  per-client dimension layered on top of the global admission control
  in :mod:`repro.serving.resilience` (which bounds the shared queue).

Both gates are clock-injectable and allocation-light: the limiter keeps
one ``(tokens, stamp)`` pair per client, capped by ``max_clients`` with
least-recently-seen eviction so an address-spraying peer cannot grow
the table without bound.
"""

from __future__ import annotations

import hashlib
import hmac
import math
import os
import time
from pathlib import Path
from collections.abc import Callable, Iterable

from repro.serving.resilience import ResilienceError

__all__ = [
    "AuthError",
    "Authenticator",
    "RateLimitedError",
    "RateLimiter",
    "client_digest",
]


class AuthError(Exception):
    """A request refused by the authenticator (401 or 403)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class RateLimitedError(ResilienceError):
    """A client's token bucket is empty — shed with 429 + ``Retry-After``.

    Subclasses :class:`~repro.serving.resilience.ResilienceError` so the
    gateway's existing error path maps it to its status and attaches the
    ``Retry-After`` header.
    """

    status = 429


def client_digest(token_or_peer: str) -> str:
    """A short one-way client identifier safe to surface in ``/stats``.

    Never reversible to the bearer token: sha256, truncated to 12 hex
    characters (collision-safe for counter purposes).
    """
    return hashlib.sha256(token_or_peer.encode()).hexdigest()[:12]


class Authenticator:
    """Static bearer-token check for every non-``/healthz`` route.

    ``tokens`` empty means auth is disabled (:attr:`enabled` is False
    and :meth:`check` admits everything).  Construction from CLI
    sources goes through :meth:`from_sources`.
    """

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._tokens = tuple(t for t in tokens if t)
        self.accepted = 0
        self.rejected_missing = 0
        self.rejected_bad = 0

    @property
    def enabled(self) -> bool:
        return bool(self._tokens)

    @classmethod
    def from_sources(
        cls,
        token: str | None = None,
        env: str | None = None,
        file: str | Path | None = None,
    ) -> Authenticator:
        """Collect tokens from a literal, an env var, and a token file.

        The file holds one token per line (blank lines and ``#``
        comments ignored).  A named-but-empty source is an error — a
        server the operator *tried* to lock must not silently come up
        open.
        """
        tokens: list[str] = []
        if token:
            tokens.append(token)
        if env is not None:
            value = os.environ.get(env, "")  # repro: noqa[ENV002] -- name is operator-chosen via --auth-token-env, never a REPRO_* knob
            if not value:
                raise ValueError(
                    f"auth token environment variable {env!r} is unset or empty"
                )
            tokens.append(value)
        if file is not None:
            lines = Path(file).read_text().splitlines()
            file_tokens = [
                line.strip()
                for line in lines
                if line.strip() and not line.strip().startswith("#")
            ]
            if not file_tokens:
                raise ValueError(f"auth token file {file!r} holds no tokens")
            tokens.extend(file_tokens)
        return cls(tokens)

    def check(self, authorization: str | None) -> str | None:
        """Gate one request; returns the client digest for rate limiting.

        ``authorization`` is the raw ``Authorization`` header value (or
        ``None`` when absent).  Raises :class:`AuthError` 401 when the
        header is missing or not a bearer credential, 403 when the
        token is present but wrong.  With auth disabled, returns
        ``None`` (the caller falls back to the peer address as the
        client identity).
        """
        if not self.enabled:
            return None
        if authorization is None:
            self.rejected_missing += 1
            raise AuthError(401, "missing Authorization header")
        scheme, _, credential = authorization.partition(" ")
        credential = credential.strip()
        if scheme.lower() != "bearer" or not credential:
            self.rejected_missing += 1
            raise AuthError(
                401, "Authorization header must be 'Bearer <token>'"
            )
        for token in self._tokens:
            if hmac.compare_digest(credential, token):
                self.accepted += 1
                return client_digest(credential)
        self.rejected_bad += 1
        raise AuthError(403, "invalid bearer token")

    def snapshot(self) -> dict:
        """The ``/stats`` view — counters only, never token material."""
        return {
            "enabled": self.enabled,
            "tokens": len(self._tokens),
            "accepted": self.accepted,
            "rejected_missing": self.rejected_missing,
            "rejected_bad": self.rejected_bad,
        }


class RateLimiter:
    """Per-client token bucket: ``rate`` requests/s, ``burst`` ceiling.

    ``rate=None`` disables the limiter (every :meth:`admit` is a
    no-op).  ``admit(client, cost)`` spends ``cost`` tokens from the
    client's bucket (one per prediction request, so a list-of-N HTTP
    call costs N) and raises :class:`RateLimitedError` when the bucket
    cannot cover it, with ``Retry-After`` computed from the deficit and
    the refill rate.  Buckets refill continuously on the injected
    monotonic clock.
    """

    def __init__(
        self,
        rate: float | None,
        burst: int | None = None,
        clock: Callable[[], float] | None = None,
        max_clients: int = 4096,
    ) -> None:
        if rate is not None and not rate > 0:
            raise ValueError("rate must be positive (or None = disabled)")
        if burst is None:
            burst = max(1, math.ceil(rate)) if rate is not None else 1
        if burst < 1:
            raise ValueError("burst must be at least 1")
        if max_clients < 1:
            raise ValueError("max_clients must be positive")
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._clock = clock or time.monotonic
        # client -> [tokens, last refill stamp]; insertion order doubles
        # as least-recently-seen for eviction (refreshed on every admit).
        self._buckets: dict[str, list[float]] = {}
        self.allowed = 0
        self.limited = 0
        self._limited_by_client: dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def admit(self, client: str, cost: int = 1) -> None:
        """Spend ``cost`` tokens from ``client``'s bucket or shed 429."""
        if self.rate is None:
            return
        if cost < 1:
            cost = 1
        now = self._clock()
        bucket = self._buckets.pop(client, None)
        if bucket is None:
            bucket = [float(self.burst), now]
            if len(self._buckets) >= self.max_clients:
                # Evict the least-recently-seen client (first key).
                self._buckets.pop(next(iter(self._buckets)))
        else:
            tokens, stamp = bucket
            bucket[0] = min(self.burst, tokens + (now - stamp) * self.rate)
            bucket[1] = now
        self._buckets[client] = bucket  # re-insert = most recently seen
        if bucket[0] >= cost:
            bucket[0] -= cost
            self.allowed += cost
            return
        self.limited += 1
        self._limited_by_client[client] = (
            self._limited_by_client.get(client, 0) + 1
        )
        deficit = cost - bucket[0]
        retry_after = max(1, math.ceil(deficit / self.rate))
        raise RateLimitedError(
            f"client rate limit exceeded ({self.rate:g} req/s, "
            f"burst {self.burst}); retry in ~{retry_after}s",
            retry_after=retry_after,
        )

    def snapshot(self) -> dict:
        """The ``/stats`` view — digest-keyed, never token material."""
        return {
            "enabled": self.enabled,
            "rate_per_s": self.rate,
            "burst": self.burst,
            "allowed": self.allowed,
            "limited": self.limited,
            "clients_tracked": len(self._buckets),
            "limited_by_client": dict(
                sorted(self._limited_by_client.items())
            ),
        }
