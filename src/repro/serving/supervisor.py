"""Self-healing supervision for the ``SO_REUSEPORT`` worker pool.

PR 7's worker pool was fail-fast: any worker dying unexpectedly drained
the rest and exited non-zero, so a single segfaulting worker took the
whole fleet down — the opposite of what shared-nothing workers should
buy.  :class:`Supervisor` replaces that parent loop with a supervision
discipline:

* **Crash recovery.**  A reaped worker is respawned with exponential
  backoff (``restart_backoff_ms`` doubling per consecutive failure of
  the same slot, capped).  While the replacement comes up the pool
  keeps serving on the survivors — the kernel simply stops routing new
  connections to the dead listener — and the control plane's
  ``/healthz`` answers ``200 {"status": "degraded"}`` instead of
  failing probes.
* **Crash-loop breaker.**  More than ``max_restarts`` worker crashes
  within ``restart_window_s`` means restarting is not helping
  (:class:`CrashLoopBreaker`): the supervisor gives up, prints per-pid
  crash diagnostics, drains the survivors and exits non-zero instead
  of thrashing forever.
* **Startup deadline.**  A worker that never writes its announce line
  (hung in startup) is killed after ``startup_timeout_s`` and treated
  as a crash — the parent no longer blocks forever on the announce
  pipe.
* **Fleet-state reconciliation.**  Hot reloads mutate per-worker
  state, so the parent keeps an append-only :class:`AdminJournal` of
  every *accepted* ``PUT``/``DELETE /models/<name>`` and replays it, in
  order, to each restarted worker over its loopback control listener
  *before* marking the worker ready — a replacement converges to the
  survivors' exact model names and generations (generations are a pure
  function of the op sequence).  A ready worker that fails an op the
  fleet accepted is killed and restarted through the same journal path
  rather than left divergent.
* **Partial observability.**  ``GET /stats`` / ``GET /models``
  fan-outs return per-worker results and merge only the healthy
  snapshots — a dead or hung worker (bounded by the short
  ``call_timeout_s``) degrades the view instead of blinding it.

:func:`repro.serving.fleet.run_worker_pool` is a thin wrapper over this
class; ``serve --workers N`` supervision is on by default and
``--no-supervise`` restores the old fail-fast behavior.
"""

from __future__ import annotations

import os
import select
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from collections.abc import Callable
from typing import Any

from repro.serving.fleet import (
    _read_announce,
    _worker_call,
    format_announce,
    merge_stats,
    reserve_port,
    reuse_port_supported,
)

__all__ = [
    "AdminJournal",
    "CrashLoopBreaker",
    "RestartBackoff",
    "Supervisor",
    "WorkerSlot",
]

import json


class RestartBackoff:
    """Exponential restart backoff: ``base * 2**(failures-1)``, capped."""

    def __init__(self, base_ms: float = 100.0, cap_ms: float = 5000.0) -> None:
        if base_ms < 0 or cap_ms < 0:
            raise ValueError("backoff knobs must be non-negative")
        self.base_ms = float(base_ms)
        self.cap_ms = float(max(base_ms, cap_ms))

    def delay_s(self, consecutive_failures: int) -> float:
        if consecutive_failures <= 0:
            return 0.0
        exponent = min(consecutive_failures - 1, 32)  # no float overflow
        return min(self.cap_ms, self.base_ms * 2**exponent) / 1e3


class CrashLoopBreaker:
    """Give up once more than ``max_restarts`` crashes land in a window.

    Restarting only helps transient failures; a worker that keeps dying
    (bad model file, poisoned state, broken host) must eventually take
    the pool down *with diagnostics* instead of thrashing.  Every crash
    is :meth:`record`-ed; the breaker trips when the rolling
    ``window_s`` holds strictly more than ``max_restarts`` of them —
    i.e. ``max_restarts`` is the number of restarts the supervisor will
    fund per window.  ``max_restarts=0`` means the first crash trips.
    """

    def __init__(
        self,
        max_restarts: int = 5,
        window_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.max_restarts = int(max_restarts)
        self.window_s = float(window_s)
        self._clock = clock
        self._crashes: list[float] = []

    def record(self) -> bool:
        """Record one crash; returns True when the breaker just tripped."""
        now = self._clock()
        self._crashes.append(now)
        self._prune(now)
        return self.tripped

    def _prune(self, now: float) -> None:
        cutoff = now - self.window_s
        self._crashes = [t for t in self._crashes if t > cutoff]

    @property
    def tripped(self) -> bool:
        self._prune(self._clock())
        return len(self._crashes) > self.max_restarts

    def snapshot(self) -> dict:
        self._prune(self._clock())
        return {
            "max_restarts": self.max_restarts,
            "window_s": self.window_s,
            "crashes_in_window": len(self._crashes),
            "tripped": self.tripped,
        }


class AdminJournal:
    """Append-only log of *accepted* model-admin operations.

    The parent is the pool's source of truth for which hot reloads and
    unloads the fleet has accepted: every ``PUT``/``DELETE
    /models/<name>`` that at least one worker acknowledged is appended
    (method, path, raw body, and the headers it was accepted with —
    including ``Authorization``, so replay can authenticate) and
    replayed in order to every restarted worker before the supervisor
    marks it ready.  Replaying the full ordered journal on top of the
    CLI-preloaded models reproduces the survivors' exact model set and
    generations, because generation counting is a pure function of the
    op sequence.

    :meth:`snapshot` never exposes bodies or headers (bearer tokens
    ride in them) — it lists ``seq``/``method``/``path`` only.

    Long-running pools accumulate ops linearly in hot reloads, so a
    restarted worker would replay every reload ever accepted.
    :meth:`compact` rewrites the journal to its state-equivalent
    minimum — the last ``PUT`` per model path, plus trailing ``DELETE``\\s
    (paired with their preceding ``PUT`` where one exists, so the replay
    never ``DELETE``\\s a model that was never loaded) — making replay
    O(models), not O(ops).  Compaction trades generation-counter
    fidelity for that bound (a replayed worker counts one PUT where the
    survivors saw many), which is why the supervisor only compacts past
    ``journal_compact_threshold`` and never mid-replay.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ops: list[dict] = []  # guarded-by: _lock
        self.compactions = 0  # guarded-by: _lock
        self.dropped_ops = 0  # guarded-by: _lock

    def append(
        self, method: str, path: str, body: bytes | None, headers: dict
    ) -> int:
        with self._lock:
            seq = len(self._ops)
            self._ops.append(
                {
                    "seq": seq,
                    "method": method,
                    "path": path,
                    "body": body,
                    "headers": dict(headers),
                }
            )
            return seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._ops)

    def since(self, seq: int) -> list[dict]:
        with self._lock:
            return list(self._ops[seq:])

    def compact(self) -> dict:
        """Rewrite the journal to its state-equivalent minimum.

        Kept, in original relative order, then renumbered from 0:

        * the *last* ``PUT`` of every path whose final op is a ``PUT``
          (earlier reloads of the same model are shadowed),
        * for every path whose final op is a ``DELETE``: its last
          ``PUT`` (if the journal holds one) followed by that
          ``DELETE`` — so the replayed ``DELETE`` always targets a
          loaded model.  A bare ``DELETE`` with no earlier ``PUT``
          removed a CLI-preloaded model and is kept alone.

        Returns ``{"kept": ..., "dropped": ...}``.  Callers must
        guarantee no replay is consuming the old numbering (the
        supervisor skips compaction while any slot is replaying).
        """
        with self._lock:
            last_put: dict[str, dict] = {}
            last_op: dict[str, dict] = {}
            for op in self._ops:
                last_op[op["path"]] = op
                if op["method"] == "PUT":
                    last_put[op["path"]] = op
            keep_ids = set()
            for path, final in last_op.items():
                keep_ids.add(id(final))
                if final["method"] != "PUT" and path in last_put:
                    keep_ids.add(id(last_put[path]))
            kept = [op for op in self._ops if id(op) in keep_ids]
            dropped = len(self._ops) - len(kept)
            self._ops = [dict(op, seq=seq) for seq, op in enumerate(kept)]
            self.compactions += 1
            self.dropped_ops += dropped
            return {"kept": len(self._ops), "dropped": dropped}

    def snapshot(self, tail: int = 20) -> dict:
        with self._lock:
            return {
                "entries": len(self._ops),
                "compactions": self.compactions,
                "dropped_ops": self.dropped_ops,
                "tail": [
                    {"seq": o["seq"], "method": o["method"], "path": o["path"]}
                    for o in self._ops[-tail:]
                ],
            }


class WorkerSlot:
    """One supervised worker position and its lifecycle bookkeeping.

    ``state`` walks ``starting`` (forked, announce pending) →
    ``replaying`` (announced; journal replay in progress) → ``ready``
    (serving, counted healthy) and, on a crash, ``backoff`` (respawn
    scheduled) or ``exited`` (pool stopping / given up).
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.pid: int | None = None
        self.read_fd: int | None = None
        self.control_port: int | None = None
        self.data_port: int | None = None
        self.state = "starting"
        self.started_at: float | None = None
        self.startup_timed_out = False
        self.replay_failed = False
        self.replayed = 0  # journal ops replayed to the current process
        self.restarts = 0  # respawns of this slot
        self.consecutive_failures = 0
        self.last_exit: str | None = None
        self.exit_code: int | None = None
        self.restart_due: float | None = None

    def snapshot(self) -> dict:
        return {
            "slot": self.index,
            "pid": self.pid,
            "state": self.state,
            "restarts": self.restarts,
            "consecutive_failures": self.consecutive_failures,
            "control_port": self.control_port,
            "replayed": self.replayed,
            "last_exit": self.last_exit,
        }


class Supervisor:
    """The self-healing parent of a forked ``SO_REUSEPORT`` worker pool.

    Parameters
    ----------
    host / port / n_workers / worker_main / control_host:
        As :func:`repro.serving.fleet.run_worker_pool` —
        ``worker_main(announce_fd, bound_port)`` runs in each forked
        child and must bind the shared data port with ``SO_REUSEPORT``,
        bind a loopback control listener, report both through
        :func:`~repro.serving.fleet.write_worker_announce`, serve until
        ``SIGTERM``/``SIGINT``, drain, and return its exit code.
    supervise:
        ``False`` restores the pre-supervision fail-fast contract: the
        first unexpected worker death drains the pool and exits
        non-zero.
    max_restarts / restart_window_s:
        The crash-loop breaker (:class:`CrashLoopBreaker`).
    restart_backoff_ms / restart_backoff_cap_ms:
        Respawn backoff (:class:`RestartBackoff`), doubling per
        consecutive failure of the same slot and reset when the slot
        becomes ready.
    startup_timeout_s:
        Deadline for a forked worker to write its announce line; a
        worker hung in startup is killed and treated as a crash.
    call_timeout_s:
        Per-worker timeout for control-plane ``GET`` fan-outs
        (``/healthz``, ``/stats``, ``/models``) — short, so one hung
        worker degrades the view instead of stalling it.  Admin
        fan-outs and journal replay use ``max(call_timeout_s, 30)``
        (model loads are slower than stats reads).
    poll_interval_s:
        Supervision loop tick.
    journal_compact_threshold:
        Once the admin journal holds at least this many ops, it is
        compacted (:meth:`AdminJournal.compact`) after the next accepted
        admin op — replay stays O(models) instead of O(ops).  Compaction
        is skipped while any worker is mid-replay and collapses
        per-model generation counters, so keep the threshold well above
        any test that asserts cross-worker generations.  ``0`` disables.
    clock / sleep:
        Injectable time sources (tests).

    :meth:`run` blocks until the pool exits and returns the pool exit
    code; :meth:`request_stop` is the programmatic SIGTERM (what the
    signal handlers call, and what tests running the supervisor on a
    non-main thread use).
    """

    def __init__(
        self,
        host: str,
        port: int,
        n_workers: int,
        worker_main: Callable[[int, int], int],
        *,
        control_host: str = "127.0.0.1",
        supervise: bool = True,
        max_restarts: int = 5,
        restart_window_s: float = 30.0,
        restart_backoff_ms: float = 100.0,
        restart_backoff_cap_ms: float = 5000.0,
        startup_timeout_s: float = 60.0,
        call_timeout_s: float = 5.0,
        poll_interval_s: float = 0.05,
        give_up_grace_s: float = 30.0,
        journal_compact_threshold: int = 64,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if n_workers < 1:
            raise ValueError("Supervisor needs n_workers >= 1")
        if startup_timeout_s <= 0:
            raise ValueError("startup_timeout_s must be positive")
        if call_timeout_s <= 0:
            raise ValueError("call_timeout_s must be positive")
        self.host = host
        self.port = port
        self.n_workers = n_workers
        self.worker_main = worker_main
        self.control_host = control_host
        self.supervise = supervise
        self.backoff = RestartBackoff(restart_backoff_ms, restart_backoff_cap_ms)
        self.breaker = CrashLoopBreaker(max_restarts, restart_window_s, clock)
        self.journal = AdminJournal()
        self.startup_timeout_s = float(startup_timeout_s)
        self.call_timeout_s = float(call_timeout_s)
        self.admin_timeout_s = max(float(call_timeout_s), 30.0)
        self.poll_interval_s = float(poll_interval_s)
        self.give_up_grace_s = float(give_up_grace_s)
        self.journal_compact_threshold = int(journal_compact_threshold)
        self._clock = clock
        self._sleep = sleep
        self.slots = [WorkerSlot(i) for i in range(n_workers)]
        self._lock = threading.RLock()
        self._admin_lock = threading.Lock()
        self._stop_requested = False
        self._gave_up = False
        self._give_up_deadline = float("inf")
        self._hard_killed = False
        self._announced = False
        self._failures: dict[int, int] = {}
        self.crash_log: list[dict] = []
        self.total_restarts = 0
        self.foreign_reaps = 0
        self.bound_port: int | None = None
        self.control_port: int | None = None
        self._child_close: list[Any] = []

    # -- lifecycle ------------------------------------------------------
    def run(self) -> int:
        """Bring the pool up and supervise it until exit; returns the code."""
        if not reuse_port_supported():
            raise RuntimeError(
                "--workers > 1 needs os.fork and SO_REUSEPORT "
                "(unavailable on this platform)"
            )
        reservation, self.bound_port = reserve_port(self.host, self.port)
        # The reservation socket stays bound (never listening) for the
        # whole run: even with every worker momentarily dead during a
        # crash storm, no other process can steal the port.
        control = ThreadingHTTPServer(
            (self.control_host, 0), _control_handler(self)
        )
        control.daemon_threads = True
        self.control_port = control.server_address[1]
        threading.Thread(
            target=control.serve_forever,
            name="repro-fleet-control",
            daemon=True,
        ).start()
        # Forked children inherit these parent-side listening/reserved
        # fds; close them in the child so the parent's teardown actually
        # releases the ports.
        self._child_close = [reservation, control.socket]
        previous = self._install_signal_handlers()
        try:
            for slot in self.slots:
                self._spawn(slot)
            return self._supervise_loop()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            control.shutdown()
            control.server_close()
            reservation.close()

    def request_stop(self, signum: int = signal.SIGTERM) -> None:
        """Begin pool shutdown: relay ``signum`` to every live worker."""
        with self._lock:
            self._stop_requested = True
            for slot in self.slots:
                if slot.pid is None or slot.state == "backoff":
                    slot.state = "exited"  # no process to drain
        self._signal_live(signum)

    def _install_signal_handlers(self) -> dict:
        if threading.current_thread() is not threading.main_thread():
            return {}  # tests drive request_stop() directly

        def relay(signum, _frame) -> None:
            self.request_stop(signum)

        return {
            signum: signal.signal(signum, relay)
            for signum in (signal.SIGTERM, signal.SIGINT)
        }

    # -- process management ---------------------------------------------
    def _spawn(self, slot: WorkerSlot) -> None:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child: run the worker, never return
            os.close(read_fd)
            for obj in self._child_close:
                try:
                    obj.close()
                except OSError:
                    pass
            code = 1
            try:
                code = self.worker_main(write_fd, self.bound_port)
            finally:
                os._exit(code if isinstance(code, int) else 1)
        os.close(write_fd)
        with self._lock:
            slot.pid = pid
            slot.read_fd = read_fd
            slot.state = "starting"
            slot.started_at = self._clock()
            slot.startup_timed_out = False
            slot.replay_failed = False
            slot.restart_due = None

    @staticmethod
    def _kill_pid(pid: int | None, signum: int) -> None:
        if pid is None:
            return
        try:
            os.kill(pid, signum)
        except (ProcessLookupError, PermissionError):
            pass

    def _signal_live(self, signum: int) -> None:
        with self._lock:
            pids = [
                s.pid
                for s in self.slots
                if s.pid is not None and s.state != "exited"
            ]
        for pid in pids:
            self._kill_pid(pid, signum)

    # -- the supervision loop -------------------------------------------
    def _supervise_loop(self) -> int:
        while True:
            self._reap()
            if self._stop_requested or self._gave_up:
                if self._all_exited():
                    break
                if (
                    self._gave_up
                    and not self._hard_killed
                    and self._clock() > self._give_up_deadline
                ):
                    # Drain budget exhausted after giving up: stop
                    # waiting on wedged workers.
                    self._hard_killed = True
                    self._signal_live(signal.SIGKILL)
            else:
                self._progress_startups()
                self._progress_replays()
                self._progress_restarts()
            self._sleep(self.poll_interval_s)
        if self._gave_up:
            return 1
        if self._failures:
            print(
                f"error: workers exited non-zero: {self._failures}",
                file=sys.stderr,
            )
            return 1
        print("all workers drained; exiting", flush=True)
        return 0

    def _all_exited(self) -> bool:
        with self._lock:
            return all(s.state == "exited" for s in self.slots)

    def _reap(self) -> None:
        while True:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                return
            except InterruptedError:  # pre-3.5 semantics guard; harmless
                continue
            if pid == 0:
                return
            self._handle_exit(pid, status)

    def _handle_exit(self, pid: int, status: int) -> None:
        """One reaped child: route to stop, fail-fast, or crash recovery."""
        code = os.waitstatus_to_exitcode(status)
        with self._lock:
            slot = next((s for s in self.slots if s.pid == pid), None)
            if slot is None:
                # Not ours (satellite: foreign-pid reap) — e.g. a
                # grandchild reparented onto us.  Count it, touch nothing.
                self.foreign_reaps += 1
                return
            starting = slot.state == "starting"
            if slot.read_fd is not None:
                os.close(slot.read_fd)
                slot.read_fd = None
            desc = self._describe_exit(code, slot)
            slot.last_exit = desc
            slot.exit_code = code
            if self._stop_requested or self._gave_up:
                slot.state = "exited"
                relayed = (-signal.SIGTERM, -signal.SIGINT)
                if code != 0 and not (starting and code in relayed):
                    # A worker signalled before it installed its drain
                    # handlers dies by the signal itself — that is our
                    # doing, not a worker failure.
                    self._failures[pid] = code
                return
            if not self.supervise:
                print(
                    f"error: worker pid {pid} (slot {slot.index}) {desc}; "
                    "fail-fast (--no-supervise): draining remaining workers",
                    file=sys.stderr,
                    flush=True,
                )
                slot.state = "exited"
                slot.pid = None
                if code != 0:
                    self._failures[pid] = code
                self.request_stop()
                return
            self._record_crash(slot, pid, desc)

    def _describe_exit(self, code: int, slot: WorkerSlot) -> str:
        if code < 0:
            try:
                name = signal.Signals(-code).name
            except ValueError:
                name = f"signal {-code}"
            base = f"killed by {name}"
        else:
            base = f"exited {code}"
        if slot.startup_timed_out:
            return (
                f"{base} (no announce within {self.startup_timeout_s:g}s "
                "startup deadline)"
            )
        if slot.state == "starting":
            return f"{base} before announcing"
        if slot.replay_failed:
            return f"{base} (journal replay failed)"
        if slot.state == "replaying":
            return f"{base} during journal replay"
        return base

    def _record_crash(self, slot: WorkerSlot, pid: int, desc: str) -> None:
        self.crash_log.append(
            {"slot": slot.index, "pid": pid, "exit": desc, "restarts": slot.restarts}
        )
        slot.pid = None
        tripped = self.breaker.record()
        if tripped:
            # This slot's process is already gone — without a restart it
            # is exited, or _all_exited() would wait on it forever.
            slot.state = "exited"
            self._give_up()
            return
        slot.consecutive_failures += 1
        delay = self.backoff.delay_s(slot.consecutive_failures)
        slot.state = "backoff"
        slot.restart_due = self._clock() + delay
        window = self.breaker.snapshot()
        print(
            f"warning: worker pid {pid} (slot {slot.index}) {desc}; "
            f"restarting in {delay * 1e3:.0f}ms "
            f"(crash {window['crashes_in_window']}, "
            f"breaker at {window['max_restarts'] + 1} "
            f"within {window['window_s']:g}s)",
            file=sys.stderr,
            flush=True,
        )

    def _give_up(self) -> None:
        """Crash-loop breaker tripped: diagnostics, drain survivors, exit 1."""
        self._gave_up = True
        self._give_up_deadline = self._clock() + self.give_up_grace_s
        lines = [
            "error: crash-loop breaker tripped: more than "
            f"{self.breaker.max_restarts} worker crashes within "
            f"{self.breaker.window_s:g}s; giving up and draining survivors"
        ]
        for entry in self.crash_log:
            lines.append(
                f"  pid {entry['pid']} (slot {entry['slot']}, "
                f"restarts={entry['restarts']}): {entry['exit']}"
            )
        with self._lock:
            for slot in self.slots:
                if slot.pid is None or slot.state == "backoff":
                    slot.state = "exited"
                else:
                    lines.append(
                        f"  pid {slot.pid} (slot {slot.index}): "
                        f"surviving in state {slot.state!r}, draining"
                    )
        print("\n".join(lines), file=sys.stderr, flush=True)
        self._signal_live(signal.SIGTERM)

    def _progress_startups(self) -> None:
        """Collect announces; kill workers past the startup deadline."""
        now = self._clock()
        with self._lock:
            starting = [
                s
                for s in self.slots
                if s.state == "starting" and s.read_fd is not None
            ]
        for slot in starting:
            readable, _, _ = select.select([slot.read_fd], [], [], 0)
            if readable:
                try:
                    announce = _read_announce(slot.read_fd, timeout=5.0)
                except TimeoutError:  # partial line never completed
                    announce = None
                with self._lock:
                    os.close(slot.read_fd)
                    slot.read_fd = None
                    if announce is None:
                        # EOF before a full announce: the worker died in
                        # startup; the reap records the crash.
                        self._kill_pid(slot.pid, signal.SIGKILL)
                        continue
                    slot.control_port = announce["control_port"]
                    slot.data_port = announce["port"]
                    slot.state = "replaying"
                    slot.replayed = 0
            elif (
                slot.started_at is not None
                and now - slot.started_at > self.startup_timeout_s
            ):
                # Startup deadline (the old _read_announce blocked here
                # forever): kill and report; the reap records the crash.
                with self._lock:
                    slot.startup_timed_out = True
                print(
                    f"warning: worker pid {slot.pid} (slot {slot.index}) "
                    f"did not announce within {self.startup_timeout_s:g}s; "
                    "killing it",
                    file=sys.stderr,
                    flush=True,
                )
                self._kill_pid(slot.pid, signal.SIGKILL)

    def _progress_replays(self) -> None:
        with self._lock:
            replaying = [s for s in self.slots if s.state == "replaying"]
        for slot in replaying:
            self._replay_slot(slot)

    def _replay_slot(self, slot: WorkerSlot) -> None:
        """Catch a restarted worker up on the journal, then mark it ready.

        The catch-up loop closes the race with concurrent admin ops:
        ops fan out only to *ready* workers (under the admin lock), so
        this slot is marked ready under that same lock only once no
        unreplayed op remains — an op is either replayed here or fanned
        out after the slot is ready, never lost in between.
        """
        while True:
            ops = self.journal.since(slot.replayed)
            if not ops:
                with self._admin_lock:
                    if len(self.journal) == slot.replayed:
                        with self._lock:
                            slot.state = "ready"
                            slot.consecutive_failures = 0
                        self._maybe_announce()
                        return
                continue
            for op in ops:
                ok = False
                detail = ""
                try:
                    status, _body = _worker_call(
                        slot.control_port,
                        op["method"],
                        op["path"],
                        op["body"],
                        op["headers"],
                        timeout=self.admin_timeout_s,
                    )
                    ok = 200 <= status < 300
                    detail = f"HTTP {status}"
                except OSError as exc:
                    detail = f"{type(exc).__name__}: {exc}"
                if not ok:
                    print(
                        f"warning: journal replay of {op['method']} "
                        f"{op['path']} (seq {op['seq']}) failed on worker "
                        f"pid {slot.pid} ({detail}); restarting it",
                        file=sys.stderr,
                        flush=True,
                    )
                    with self._lock:
                        slot.replay_failed = True
                    self._kill_pid(slot.pid, signal.SIGKILL)
                    return  # the reap records the crash
                slot.replayed = op["seq"] + 1

    def _maybe_announce(self) -> None:
        with self._lock:
            if self._announced or any(s.state != "ready" for s in self.slots):
                return
            self._announced = True
        print(
            format_announce(
                self.host,
                self.bound_port,
                workers=self.n_workers,
                control=f"http://{self.control_host}:{self.control_port}",
            ),
            flush=True,
        )

    def _progress_restarts(self) -> None:
        now = self._clock()
        with self._lock:
            due = [
                s
                for s in self.slots
                if s.state == "backoff"
                and s.restart_due is not None
                and now >= s.restart_due
            ]
        for slot in due:
            self.total_restarts += 1
            slot.restarts += 1
            self._spawn(slot)

    # -- control-plane surface ------------------------------------------
    def ready_targets(self) -> list[tuple[int, int, int]]:
        """(slot, pid, control_port) of every ready worker."""
        with self._lock:
            return [
                (s.index, s.pid, s.control_port)
                for s in self.slots
                if s.state == "ready" and s.pid is not None
            ]

    def fan_out_get(self, path: str, headers: dict) -> list[dict]:
        """``GET`` fan-out to every ready worker, short per-call timeout.

        A worker that errors or times out yields an ``error`` entry
        instead of failing the whole fan-out (the callers merge only the
        healthy bodies) — a dead worker cannot blind fleet
        observability, and a hung one costs ``call_timeout_s``, not 60s.
        """
        results = []
        for index, pid, control_port in self.ready_targets():
            entry: dict[str, Any] = {"slot": index, "pid": pid}
            try:
                status, decoded = _worker_call(
                    control_port,
                    "GET",
                    path,
                    None,
                    headers,
                    timeout=self.call_timeout_s,
                )
                entry["status"] = status
                entry["body"] = decoded
            except OSError as exc:
                entry["status"] = None
                entry["error"] = f"{type(exc).__name__}: {exc}"
            results.append(entry)
        return results

    def admin(
        self, method: str, path: str, body: bytes | None, headers: dict
    ) -> tuple[int, dict]:
        """Fan an admin op out to the ready workers; journal it if accepted.

        Accepted means at least one worker acknowledged with 2xx — the
        fleet's state moved, so the op must reach every current and
        future worker.  A ready worker that *failed* an accepted op is
        now divergent: it is killed here and restarted through the
        journal so it reconverges instead of serving stale models.
        """
        with self._admin_lock:
            targets = self.ready_targets()
            if not targets:
                return 503, {
                    "error": {
                        "status": 503,
                        "message": "no ready workers (pool degraded); "
                        "retry after the supervisor restarts one",
                    }
                }
            results = []
            for index, pid, control_port in targets:
                try:
                    status, decoded = _worker_call(
                        control_port,
                        method,
                        path,
                        body,
                        headers,
                        timeout=self.admin_timeout_s,
                    )
                except OSError as exc:
                    status, decoded = 502, {
                        "error": {"status": 502, "message": str(exc)}
                    }
                results.append(
                    {"slot": index, "pid": pid, "status": status, "body": decoded}
                )
            accepted = [r for r in results if 200 <= r["status"] < 300]
            payload: dict[str, Any] = {
                "workers": results,
                "accepted": len(accepted),
                "targets": len(targets),
            }
            if accepted:
                payload["journal_seq"] = self.journal.append(
                    method, path, body, headers
                )
                if self.supervise:
                    for r in results:
                        if not (200 <= r["status"] < 300):
                            print(
                                f"warning: worker pid {r['pid']} "
                                f"(slot {r['slot']}) failed accepted admin op "
                                f"{method} {path} (HTTP {r['status']}); "
                                "killing it to reconverge through the journal",
                                file=sys.stderr,
                                flush=True,
                            )
                            self._kill_pid(r["pid"], signal.SIGKILL)
                self._maybe_compact_journal()
            status = 200 if len(accepted) == len(targets) else 502
            return status, payload

    def _maybe_compact_journal(self) -> None:
        """Compact the journal once it crosses the threshold.

        Runs under the admin lock (no concurrent append) and under the
        slot lock *across* the replaying-check and the rewrite, so no
        slot can enter replay mid-compaction — a slot that starts replay
        afterwards begins at seq 0 of the compacted journal, which is
        exactly the state-equivalent sequence.
        """
        threshold = self.journal_compact_threshold
        if threshold <= 0 or len(self.journal) < threshold:
            return
        with self._lock:
            if any(s.state == "replaying" for s in self.slots):
                return  # old numbering in use; try after the next op
            self.journal.compact()

    def snapshot(self) -> dict:
        """The ``/stats`` supervisor block: worker counts + restart state."""
        with self._lock:
            ready = sum(1 for s in self.slots if s.state == "ready")
            return {
                "supervise": self.supervise,
                "workers": self.n_workers,
                "ready": ready,
                "degraded": ready < self.n_workers,
                "restarts": self.total_restarts,
                "crashes": len(self.crash_log),
                "foreign_reaps": self.foreign_reaps,
                "stop_requested": self._stop_requested,
                "gave_up": self._gave_up,
                "breaker": self.breaker.snapshot(),
                "journal": self.journal.snapshot(),
                "slots": [s.snapshot() for s in self.slots],
            }


def _control_handler(supervisor: Supervisor) -> type:
    """The parent's control-plane HTTP handler over the live supervisor.

    The parent holds no model and answers no predictions — it forwards
    admin operations to the ready workers' loopback control listeners
    (forwarding ``Authorization`` untouched, so the workers enforce
    auth), aggregates ``GET /stats`` / ``/models`` over the *healthy*
    responses only, and reports ``degraded`` (HTTP 200) while a
    replacement worker comes up.
    """

    class ControlHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args) -> None:  # quiet: parent is headless
            pass

        def _reply(self, status: int, payload: Any) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _forward_headers(self) -> dict:
            headers = {"Content-Type": "application/json"}
            auth = self.headers.get("Authorization")
            if auth is not None:
                headers["Authorization"] = auth
            return headers

        def do_GET(self) -> None:
            path = self.path.split("?", 1)[0]
            if path == "/healthz":
                self._healthz()
                return
            if path in ("/stats", "/models"):
                self._observe(path)
                return
            self._reply(
                404,
                {
                    "error": {
                        "status": 404,
                        "message": (
                            "the control plane serves GET /healthz, /stats, "
                            "/models and PUT/DELETE /models/<name>; "
                            "predictions go to the shared data port"
                        ),
                    }
                },
            )

        def _healthz(self) -> None:
            sup = supervisor.snapshot()
            results = supervisor.fan_out_get("/healthz", self._forward_headers())
            healthy = [
                r
                for r in results
                if r.get("status") == 200
                and isinstance(r.get("body"), dict)
                and r["body"].get("status") in ("ok", "draining")
            ]
            if (
                sup["ready"] == sup["workers"]
                and len(healthy) == len(results) == sup["workers"]
            ):
                status_str, http_status = "ok", 200
            elif healthy:
                # Degraded capacity: the survivors keep serving while
                # the supervisor brings a replacement up — probes must
                # not fail the whole pool.
                status_str, http_status = "degraded", 200
            else:
                status_str, http_status = "down", 503
            self._reply(
                http_status,
                {
                    "status": status_str,
                    "role": "fleet-parent",
                    "workers": results,
                    "supervisor": sup,
                },
            )

        def _observe(self, path: str) -> None:
            results = supervisor.fan_out_get(path, self._forward_headers())
            healthy = [
                r["body"]
                for r in results
                if r.get("status") == 200 and isinstance(r.get("body"), dict)
            ]
            payload = {
                "workers": results,
                "merged": merge_stats(healthy),
                "partial": len(healthy) < supervisor.n_workers,
            }
            if path == "/stats":
                payload["supervisor"] = supervisor.snapshot()
            if not healthy:
                payload["error"] = {
                    "status": 502,
                    "message": "no worker answered the fan-out",
                }
                self._reply(502, payload)
                return
            self._reply(200, payload)

        def _admin(self, method: str) -> None:
            path = self.path.split("?", 1)[0]
            if not path.startswith("/models/"):
                self._reply(
                    404,
                    {
                        "error": {
                            "status": 404,
                            "message": f"no control route for {path!r}",
                        }
                    },
                )
                return
            length = int(self.headers.get("Content-Length", "0") or "0")
            body = self.rfile.read(length) if length else None
            status, payload = supervisor.admin(
                method, path, body, self._forward_headers()
            )
            self._reply(status, payload)

        def do_PUT(self) -> None:
            self._admin("PUT")

        def do_DELETE(self) -> None:
            self._admin("DELETE")

    return ControlHandler
