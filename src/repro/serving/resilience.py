"""Resilience primitives for the serving stack.

The gateway's failure story lives here, in four pieces the batcher and
HTTP front end compose:

* **Admission control** — :class:`ResilienceConfig` bounds the batcher
  queue (``queue_depth``); a full queue refuses with
  :class:`OverloadError` (HTTP 429) carrying a ``Retry-After`` estimate
  computed from the live queue depth and the recent per-request service
  time (:class:`ServiceTimeEstimator`), and a draining gateway refuses
  with :class:`DrainingError` (503).
* **Deadlines** — every request may carry ``deadline_ms`` (wire field or
  the server-side ``default_deadline_ms``); an expired request is shed
  before it reaches the model and answers
  :class:`DeadlineExceededError` (504), and the model call itself is
  bounded by the batch's remaining deadline budget.
* **Circuit breaking** — :class:`CircuitBreaker` counts consecutive
  model-call failures; past the threshold the circuit *opens* and
  admission fast-fails with :class:`CircuitOpenError` (503 +
  ``Retry-After`` = remaining cooldown) without touching the queue.
  After the cooldown the circuit goes *half-open*: probe requests are
  admitted, one success closes the circuit, one failure re-opens it.
* **Graceful drain** — ``drain_timeout_s`` bounds how long a stopping
  gateway waits for in-flight requests; the slow-client knobs
  (``read_timeout_s``, ``max_header_count``, ``max_header_bytes``)
  guarantee a stalled peer cannot hold a connection open forever.

Everything here is clock-injectable (``clock`` is any ``() -> float``
monotonic callable), so the fault-injection suite drives state
transitions deterministically instead of sleeping and hoping.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from collections.abc import Callable

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "DrainingError",
    "OverloadError",
    "ResilienceConfig",
    "ResilienceError",
    "ServiceTimeEstimator",
]


class ResilienceError(Exception):
    """A request refused by the resilience layer.

    Carries the HTTP ``status`` the gateway answers with and an optional
    ``retry_after`` hint (integer seconds) for the ``Retry-After``
    response header.
    """

    status = 503

    def __init__(self, message: str, retry_after: int | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.retry_after = retry_after


class OverloadError(ResilienceError):
    """The batcher queue is full — shed with 429 + ``Retry-After``."""

    status = 429


class DrainingError(ResilienceError):
    """The gateway is draining and no longer accepts requests (503)."""

    status = 503


class CircuitOpenError(ResilienceError):
    """The circuit is open — fast-fail without queueing (503)."""

    status = 503


class DeadlineExceededError(ResilienceError):
    """The request's deadline expired (504 Gateway Timeout)."""

    status = 504


@dataclass
class ResilienceConfig:
    """The serving stack's resilience knobs (one object, one place).

    ``queue_depth`` bounds how many requests may wait in the batcher
    queue (``None`` = unbounded, the pre-resilience behavior);
    ``default_deadline_ms`` is the server-side deadline applied to
    requests that do not carry their own (``None`` = no default);
    ``breaker_failure_threshold`` consecutive model-call failures open
    the circuit for ``breaker_cooldown_s`` seconds; ``drain_timeout_s``
    bounds a graceful drain; the header/read limits keep one slow or
    abusive client from tying up a connection.
    """

    queue_depth: int | None = 1024
    default_deadline_ms: float | None = None
    breaker_failure_threshold: int = 5
    breaker_cooldown_s: float = 5.0
    drain_timeout_s: float = 10.0
    max_header_count: int = 100
    max_header_bytes: int = 32 * 1024
    read_timeout_s: float | None = 30.0

    def __post_init__(self) -> None:
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError("queue_depth must be positive (or None = unbounded)")
        if self.default_deadline_ms is not None and not self.default_deadline_ms > 0:
            raise ValueError("default_deadline_ms must be positive (or None)")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be positive")
        if self.breaker_cooldown_s < 0:
            raise ValueError("breaker_cooldown_s must be non-negative")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be non-negative")
        if self.max_header_count < 1 or self.max_header_bytes < 1:
            raise ValueError("header limits must be positive")
        if self.read_timeout_s is not None and not self.read_timeout_s > 0:
            raise ValueError("read_timeout_s must be positive (or None)")


class ServiceTimeEstimator:
    """EWMA of per-request model-call service time, in seconds.

    Feeds the ``Retry-After`` estimate on overload: a queue of depth
    ``d`` will take roughly ``d x mean_s`` seconds to clear, so that is
    what an overloaded client is told to wait.
    """

    def __init__(self, alpha: float = 0.2, default_s: float = 0.05) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.default_s = default_s
        self._mean_s: float | None = None

    @property
    def mean_s(self) -> float | None:
        """The smoothed per-request service time (``None`` = no samples)."""
        return self._mean_s

    def observe(self, call_seconds: float, n_requests: int = 1) -> None:
        """Fold one model call serving ``n_requests`` into the estimate."""
        if n_requests < 1 or call_seconds < 0:
            return
        per_request = call_seconds / n_requests
        if self._mean_s is None:
            self._mean_s = per_request
        else:
            self._mean_s += self.alpha * (per_request - self._mean_s)

    def retry_after(self, queue_depth: int) -> int:
        """``Retry-After`` seconds for a queue of ``queue_depth`` requests."""
        per_request = self._mean_s if self._mean_s is not None else self.default_s
        return max(1, math.ceil(max(queue_depth, 1) * per_request))


class CircuitBreaker:
    """Consecutive-failure circuit breaker around the model worker.

    States: ``closed`` (normal), ``open`` (fast-fail until the cooldown
    elapses), ``half_open`` (probe traffic admitted; one success closes
    the circuit, one failure re-opens it).  All transitions are driven
    by the injected monotonic ``clock``, so tests advance state without
    real waiting.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock or time.monotonic
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self.opened_count = 0

    @property
    def state(self) -> str:
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def cooldown_remaining(self) -> float:
        """Seconds until an open circuit admits its next probe (0 if not open)."""
        if self._state != self.OPEN:
            return 0.0
        return max(0.0, self._opened_at + self.cooldown_s - self._clock())

    def admit(self) -> None:
        """Gate one request at admission time.

        Raises :class:`CircuitOpenError` while the circuit is open and
        the cooldown has not elapsed; transitions ``open -> half_open``
        once it has (the admitted request becomes the probe).
        """
        if self._state == self.OPEN:
            remaining = self.cooldown_remaining()
            if remaining > 0:
                raise CircuitOpenError(
                    f"circuit open after {self._consecutive_failures} "
                    f"consecutive model failures; retry in ~{remaining:.1f}s",
                    retry_after=max(1, math.ceil(remaining)),
                )
            self._state = self.HALF_OPEN

    def record_success(self) -> None:
        """A model call succeeded: close the circuit, reset the count."""
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        """A model call failed; open on threshold or a failed probe."""
        self._consecutive_failures += 1
        if (
            self._state == self.HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        ):
            self._state = self.OPEN
            self._opened_at = self._clock()
            self.opened_count += 1

    def snapshot(self) -> dict:
        """The ``/stats`` view of the breaker."""
        return {
            "state": self._state,
            "consecutive_failures": self._consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "cooldown_s": self.cooldown_s,
            "cooldown_remaining_s": round(self.cooldown_remaining(), 3),
            "opened_count": self.opened_count,
        }
