"""Fleet-scale serving: multi-model routing and process-per-core workers.

Two layers live here, both sitting under the HTTP gateway:

**The model fleet** (:class:`ModelFleet`) — a size-bounded LRU cache of
named, independently-batched models.  Each entry owns its own
:class:`~repro.api.service.PredictionService` and
:class:`~repro.serving.batcher.MicroBatcher`, so one slow model's queue
never blocks another's.  ``load`` hot-reloads atomically: the new entry
is swapped in first (new requests route to the new model immediately),
then the old entry's batcher drains — requests already submitted finish
on the *old* model, bitwise-equal to direct service calls.  ``unload``
is drain-then-remove.  Exceeding ``max_models`` evicts the
least-recently-routed entry (the default model is never evicted).

**The worker pool** (:func:`run_worker_pool`) — ``serve --workers N``
forks N shared-nothing worker processes, each binding its own
``SO_REUSEPORT`` socket on the same data port (the kernel load-balances
connections across them) and each loading its own copy of every model.
The parent process is a pure control plane — a
:class:`repro.serving.supervisor.Supervisor`: it reserves the port
before forking (so ``--port 0`` resolves once), collects each worker's
announce line over a pipe (bounded by a startup deadline), serves a
small threaded HTTP endpoint that aggregates ``GET /stats`` into a
merged view (:func:`merge_stats`) and fans ``PUT``/``DELETE
/models/<name>`` out to every worker, restarts crashed workers with
exponential backoff (replaying the accepted-admin-op journal so
replacements converge to the fleet's current model set), and relays
``SIGTERM``/``SIGINT`` to the workers so a fleet drain is one signal.

The parent prints one machine-parseable line once every worker is up::

    REPRO-SERVING addr=http://127.0.0.1:8000 workers=2 \
        control=http://127.0.0.1:43121 pid=1234

(:func:`format_announce` / :func:`parse_announce`); smoke scripts and
tests parse it instead of racing on a hardcoded port.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import re
import select
import socket
import time
from collections.abc import Callable
from typing import Any

from repro.api.service import PredictionService
from repro.serving import wire
from repro.serving.batcher import MicroBatcher
from repro.serving.resilience import ResilienceConfig

__all__ = [
    "FleetError",
    "FleetEntry",
    "ModelFleet",
    "format_announce",
    "merge_stats",
    "parse_announce",
    "reserve_port",
    "run_worker_pool",
    "write_worker_announce",
]

_MODEL_NAME_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")
_ANNOUNCE_PREFIX = "REPRO-SERVING "


class FleetError(Exception):
    """A fleet admin/routing refusal, with the HTTP status to answer.

    404 for an unknown model name, 400 for an invalid one, 409 when the
    cache cannot make room without evicting the default model.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def validate_model_name(name: str) -> str:
    """A model name must be a safe URL path segment."""
    if not isinstance(name, str) or not _MODEL_NAME_RE.match(name):
        raise FleetError(
            400,
            "model names must be 1-64 characters of [A-Za-z0-9._-], "
            f"got {name!r}",
        )
    return name


class FleetEntry:
    """One loaded model: its service, its batcher, its identity."""

    def __init__(
        self,
        name: str,
        model: Any,
        service: PredictionService,
        batcher: MicroBatcher,
        source: str = "init",
        generation: int = 1,
    ) -> None:
        self.name = name
        self.model = model
        self.service = service
        self.batcher = batcher
        self.source = source
        self.generation = generation

    @property
    def method(self) -> str:
        from repro.api.registry import spec_for

        try:
            return spec_for(self.model).name
        except KeyError:
            return type(self.model).__name__

    def info(self) -> dict:
        return {
            "name": self.name,
            "method": self.method,
            "kinds": list(wire.supported_kinds(self.model)),
            "source": self.source,
            "generation": self.generation,
        }


class ModelFleet:
    """A size-bounded LRU map of named models, each behind its own batcher.

    Parameters
    ----------
    max_models:
        LRU bound on concurrently loaded models; exceeding it evicts the
        least-recently-routed non-default entry (drain-then-unload).
    default_model:
        The name legacy ``/predict`` routes to (default ``"default"``).
    max_batch_size / max_wait_ms / resilience / clock:
        Per-entry :class:`~repro.serving.batcher.MicroBatcher` knobs —
        every entry gets its own batcher built from the same knobs.
    service_kwargs:
        Passed to :class:`~repro.api.service.PredictionService` for
        models loaded at runtime (``n_jobs=...``).

    All mutating operations run on the gateway's event loop and are
    serialized by one admin lock, so concurrent ``PUT``/``DELETE``
    cannot interleave a half-swapped entry.
    """

    def __init__(
        self,
        max_models: int = 8,
        default_model: str = "default",
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        resilience: ResilienceConfig | None = None,
        clock: Callable[[], float] | None = None,
        service_kwargs: dict | None = None,
    ) -> None:
        if max_models < 1:
            raise ValueError("max_models must be positive")
        self.max_models = max_models
        self.default_model = validate_model_name(default_model)
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self._clock = clock
        self.service_kwargs = dict(service_kwargs or {})
        self._entries: dict[str, FleetEntry] = {}  # insertion order = LRU
        self._lock = asyncio.Lock()
        self._started = False
        self.loads = 0
        self.reloads = 0
        self.unloads = 0
        self.evictions = 0

    # -- construction ---------------------------------------------------
    def _new_entry(
        self, name: str, model: Any, source: str, generation: int = 1
    ) -> FleetEntry:
        service = PredictionService(model, **self.service_kwargs)
        return self._entry_for_service(name, service, source, generation)

    def _entry_for_service(
        self,
        name: str,
        service: PredictionService,
        source: str,
        generation: int = 1,
    ) -> FleetEntry:
        batcher = MicroBatcher(
            service,
            max_batch_size=self.max_batch_size,
            max_wait_ms=self.max_wait_ms,
            resilience=self.resilience,
            clock=self._clock,
            name=name,
        )
        return FleetEntry(
            name, service.model, service, batcher, source, generation
        )

    def add_service(
        self, service: PredictionService, name: str | None = None
    ) -> FleetEntry:
        """Register a pre-built service before the fleet starts.

        The back-compat seam: ``Gateway(service)`` lands here as the
        default model.
        """
        if self._started:
            raise RuntimeError("use load() once the fleet is running")
        name = validate_model_name(name or self.default_model)
        if not self.service_kwargs:
            # Inherit the seed service's fan-out knobs for later loads
            # (guarded: fault-injection wrappers may not expose them).
            self.service_kwargs = {
                "n_jobs": getattr(service, "n_jobs", None),
                "backend": getattr(service, "backend", "thread"),
            }
        entry = self._entry_for_service(name, service, source="init")
        self._entries[name] = entry
        return entry

    def add_model(self, name: str, model: Any, source: str = "init") -> FleetEntry:
        """Register a model before the fleet starts (CLI preloading)."""
        if self._started:
            raise RuntimeError("use load() once the fleet is running")
        name = validate_model_name(name)
        if name in self._entries:
            raise FleetError(409, f"model {name!r} is already loaded")
        if len(self._entries) >= self.max_models:
            raise FleetError(
                409,
                f"cannot preload more than max_models={self.max_models} models",
            )
        entry = self._new_entry(name, model, source)
        self._entries[name] = entry
        return entry

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        for entry in self._entries.values():
            await entry.batcher.start()
        self._started = True

    def begin_drain(self) -> None:
        for entry in self._entries.values():
            entry.batcher.begin_drain()

    async def stop(
        self, drain: bool = True, drain_timeout: float | None = None
    ) -> None:
        for entry in self._entries.values():
            await entry.batcher.stop(drain=drain, drain_timeout=drain_timeout)
        self._started = False

    @property
    def draining(self) -> bool:
        return any(e.batcher.draining for e in self._entries.values())

    # -- routing --------------------------------------------------------
    def names(self) -> list[str]:
        return list(self._entries)

    def entry(self, name: str | None = None) -> FleetEntry:
        """Resolve a routed request to its entry (refreshing LRU recency).

        ``name=None`` is the legacy ``/predict`` route: the default
        model.
        """
        if name is None:
            name = self.default_model
            if name not in self._entries:
                raise FleetError(
                    404,
                    f"no default model {name!r} loaded; "
                    "use POST /models/<name>/predict or PUT /models/<name>",
                )
        if name not in self._entries:
            raise FleetError(
                404,
                f"no model named {name!r} (loaded: {sorted(self._entries)})",
            )
        entry = self._entries.pop(name)  # re-insert = most recently used
        self._entries[name] = entry
        return entry

    def peek(self, name: str) -> FleetEntry:
        """Entry lookup without touching LRU recency (admin/introspection)."""
        if name not in self._entries:
            raise FleetError(
                404,
                f"no model named {name!r} (loaded: {sorted(self._entries)})",
            )
        return self._entries[name]

    # -- admin ----------------------------------------------------------
    async def load(self, name: str, model: Any, source: str) -> dict:
        """Load or hot-reload ``name`` — atomic swap, old drains after.

        The new entry's batcher starts *before* the swap, the swap
        itself is one dict assignment on the event loop (requests
        arriving after it route to the new model), and only then does
        the old entry drain — everything already submitted finishes on
        the old model, bitwise-equal to direct service calls.
        """
        name = validate_model_name(name)
        async with self._lock:
            old = self._entries.get(name)
            generation = old.generation + 1 if old is not None else 1
            entry = self._new_entry(name, model, source, generation)
            await entry.batcher.start()
            # The swap: one dict mutation on the loop thread; re-insert
            # so the (re)loaded entry is most-recently-used.
            self._entries.pop(name, None)
            self._entries[name] = entry
            evicted = await self._evict_over_capacity(keep=name)
            if old is not None:
                self.reloads += 1
                await old.batcher.stop(
                    drain=True, drain_timeout=self.resilience.drain_timeout_s
                )
            else:
                self.loads += 1
            result = entry.info()
            result["replaced"] = old is not None
            if evicted:
                result["evicted"] = evicted
            return result

    async def unload(self, name: str) -> dict:
        """Drain-then-unload one model; 404 when it isn't loaded."""
        name = validate_model_name(name)
        async with self._lock:
            if name not in self._entries:
                raise FleetError(404, f"no model named {name!r}")
            entry = self._entries.pop(name)
            await entry.batcher.stop(
                drain=True, drain_timeout=self.resilience.drain_timeout_s
            )
            self.unloads += 1
            info = entry.info()
            info["unloaded"] = True
            return info

    async def _evict_over_capacity(self, keep: str) -> list[str]:
        """LRU-evict until within ``max_models`` (default model is safe)."""
        evicted: list[str] = []
        while len(self._entries) > self.max_models:
            victim = next(
                (
                    n
                    for n in self._entries  # insertion order = LRU order
                    if n not in (keep, self.default_model)
                ),
                None,
            )
            if victim is None:
                raise FleetError(
                    409,
                    f"model cache full (max_models={self.max_models}) and "
                    "only the default model is evictable",
                )
            entry = self._entries.pop(victim)
            await entry.batcher.stop(
                drain=True, drain_timeout=self.resilience.drain_timeout_s
            )
            self.evictions += 1
            evicted.append(victim)
        return evicted

    # -- observability --------------------------------------------------
    def snapshot(self) -> dict:
        """The ``/stats`` fleet block: per-model counters + cache state."""
        models = {}
        for name, entry in self._entries.items():
            batcher = entry.batcher
            models[name] = {
                **entry.info(),
                "service": entry.service.stats_snapshot(),
                "batcher": {
                    "queue_depth": batcher.queue_depth,
                    "flushes": batcher.flushes,
                    "flushed_requests": batcher.flushed_requests,
                    "max_flush_size": batcher.max_flush_size,
                },
                "resilience": batcher.resilience_snapshot(),
            }
        return {
            "default_model": self.default_model,
            "max_models": self.max_models,
            "loaded": len(self._entries),
            "loads": self.loads,
            "reloads": self.reloads,
            "unloads": self.unloads,
            "evictions": self.evictions,
            "models": models,
        }


# ----------------------------------------------------------------------
# Merged stats + the machine-parseable announce line.


def merge_stats(snapshots: list[dict]) -> dict:
    """Merge per-worker ``/stats`` snapshots into one additive view.

    Numeric leaves are summed (bools excluded), dicts merge recursively
    over the union of keys, and non-additive leaves (strings, bools,
    lists) keep the first worker's value when all workers agree and
    collapse to ``None`` otherwise.  Percentiles and other non-additive
    gauges are only meaningful per worker — read them from the
    ``workers`` list, not the merged view.
    """
    snapshots = [s for s in snapshots if isinstance(s, dict)]
    if not snapshots:
        return {}
    keys: list[str] = []
    for snap in snapshots:
        for key in snap:
            if key not in keys:
                keys.append(key)
    merged: dict = {}
    for key in keys:
        values = [s[key] for s in snapshots if key in s]
        if all(isinstance(v, dict) for v in values):
            merged[key] = merge_stats(values)
        elif all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in values
        ):
            merged[key] = sum(values)
        elif all(
            type(v) is type(values[0]) and v == values[0] for v in values
        ):
            # Type-strict equality: ``True == 1`` must not silently keep
            # one worker's bool as the merged value for another's int.
            merged[key] = values[0]
        else:
            merged[key] = None
    return merged


def format_announce(
    host: str,
    port: int,
    workers: int = 1,
    control: str | None = None,
    pid: int | None = None,
) -> str:
    """The one-line machine-parseable serving announcement."""
    parts = [f"addr=http://{host}:{port}", f"workers={workers}"]
    if control is not None:
        parts.append(f"control={control}")
    parts.append(f"pid={pid if pid is not None else os.getpid()}")
    return _ANNOUNCE_PREFIX + " ".join(parts)


def parse_announce(text: str) -> dict | None:
    """Parse the first announce line out of captured stdout.

    Returns ``{"host", "port", "workers", "control", "pid"}`` or
    ``None`` when no announce line is present (``control`` is ``None``
    for single-process serves).
    """
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith(_ANNOUNCE_PREFIX):
            continue
        fields = dict(
            part.split("=", 1)
            for part in line[len(_ANNOUNCE_PREFIX) :].split()
            if "=" in part
        )
        addr = fields.get("addr", "")
        match = re.match(r"^http://(.+):(\d+)$", addr)
        if not match:
            return None
        return {
            "host": match.group(1),
            "port": int(match.group(2)),
            "workers": int(fields.get("workers", "1")),
            "control": fields.get("control"),
            "pid": int(fields["pid"]) if "pid" in fields else None,
        }
    return None


# ----------------------------------------------------------------------
# The process-per-core worker pool (SO_REUSEPORT + fork).


def reuse_port_supported() -> bool:
    return hasattr(socket, "SO_REUSEPORT") and hasattr(os, "fork")


def reserve_port(host: str, port: int) -> tuple[socket.socket, int]:
    """Bind (without listening) an ``SO_REUSEPORT`` socket to fix the port.

    ``port=0`` resolves to a concrete ephemeral port *once*, before any
    worker forks — every worker then binds its own ``SO_REUSEPORT``
    listener to the same number.  The reservation socket never listens,
    so the kernel routes no connections to it; the parent closes it once
    all workers are up.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except OSError:
        sock.close()
        raise
    return sock, sock.getsockname()[1]


def write_worker_announce(fd: int, port: int, control_port: int) -> None:
    """The worker side of the readiness pipe (one JSON line, then close)."""
    payload = {"pid": os.getpid(), "port": port, "control_port": control_port}
    os.write(fd, (json.dumps(payload) + "\n").encode("ascii"))
    os.close(fd)


def _read_announce(
    fd: int,
    timeout: float | None = None,
    clock: Callable[[], float] = time.monotonic,
) -> dict | None:
    """Read one worker's announce line off its pipe (None on EOF).

    With ``timeout`` set, waits at most that many seconds for the full
    line and raises :class:`TimeoutError` past the deadline — a worker
    hung in startup can no longer wedge the parent on a blocking
    ``os.read`` forever.  ``timeout=None`` keeps the old blocking read.
    """
    deadline = None if timeout is None else clock() + timeout
    chunks = b""
    while b"\n" not in chunks:
        if deadline is not None:
            remaining = deadline - clock()
            if remaining <= 0:
                raise TimeoutError(
                    f"no worker announce within {timeout:g}s"
                )
            readable, _, _ = select.select([fd], [], [], remaining)
            if not readable:
                continue
        chunk = os.read(fd, 4096)
        if not chunk:
            return None
        chunks += chunk
    try:
        return json.loads(chunks.splitlines()[0])
    except json.JSONDecodeError:
        return None


def _worker_call(
    port: int,
    method: str,
    path: str,
    body: bytes | None,
    headers: dict,
    timeout: float = 5.0,
) -> tuple[int, Any]:
    """One HTTP call to a worker's loopback control listener."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        try:
            decoded = json.loads(raw.decode()) if raw else None
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = None
        return response.status, decoded
    finally:
        conn.close()


def run_worker_pool(
    host: str,
    port: int,
    n_workers: int,
    worker_main: Callable[[int, int], int],
    control_host: str = "127.0.0.1",
    **supervisor_kwargs,
) -> int:
    """Fork ``n_workers`` gateway processes on one ``SO_REUSEPORT`` port.

    ``worker_main(announce_fd, port)`` runs in each child: it must bind
    the data port with ``SO_REUSEPORT``, bind a loopback control
    listener, report both through
    :func:`write_worker_announce`, serve until ``SIGTERM``/``SIGINT``,
    drain, and return its exit code.

    The parent is a :class:`repro.serving.supervisor.Supervisor`: it
    reserves the port (resolving ``--port 0`` exactly once), waits for
    every worker's announce (with a startup deadline), prints the
    :func:`format_announce` line once all are ready, serves the merged
    control plane, restarts crashed workers with exponential backoff
    (replaying the admin journal so replacements converge to the
    fleet's current model set), and fans ``SIGTERM``/``SIGINT`` out to
    the workers.  Keyword arguments (``supervise``, ``max_restarts``,
    ``restart_backoff_ms``, ``startup_timeout_s``, ...) pass through to
    the Supervisor.  Returns the pool exit code: 0 when every worker
    drained cleanly.
    """
    if n_workers < 2:
        raise ValueError("run_worker_pool needs n_workers >= 2")
    from repro.serving.supervisor import Supervisor

    return Supervisor(
        host,
        port,
        n_workers,
        worker_main,
        control_host=control_host,
        **supervisor_kwargs,
    ).run()
