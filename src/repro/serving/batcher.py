"""Cross-request adaptive micro-batching for the serving gateway.

The :class:`~repro.api.service.PredictionService` already coalesces the
requests *inside one submission*; a gateway's opportunity is bigger —
concurrent HTTP callers each carry one request, and those can be
coalesced *across callers*.  :class:`MicroBatcher` is that layer: every
request lands in one asyncio queue, a single collector task drains it
into batches (flushing when ``max_batch_size`` requests are waiting or
the ``max_wait_ms`` window since the batch's first request expires —
with no wait at all for traffic that is already queued), and each batch
becomes one :meth:`~repro.api.service.PredictionService.submit_many`
call.  Results are bitwise-equal to direct per-request service calls:
the service pins that chunking never changes values.

The blocking model call runs in a private single-thread executor via
``run_in_executor``, so the event loop keeps accepting and queueing new
requests while a flush is being served — the next flush picks up
everything that arrived in the meantime.  The single worker thread also
serializes model calls, which keeps one flush's latency from stretching
another's.

Two requests from unrelated callers may disagree on whether they carry
a workload; ``submit_many`` rejects such a mix inside one coalesced
chunk, so a flush partitions its batch into workload-carrying and
workload-free halves first.  If a batch call still fails, the batch is
retried request-by-request so one poison request cannot fail its
flush-mates.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

from repro.api.service import PredictRequest, PredictResponse, PredictionService

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Coalesce concurrent :meth:`submit` calls into batched service calls.

    Parameters
    ----------
    service:
        The :class:`~repro.api.service.PredictionService` to drive.
    max_batch_size:
        Flush as soon as this many requests are waiting.
    max_wait_ms:
        How long a batch may wait for more requests after its first one
        arrived (``0`` = flush immediately with whatever is queued).
    """

    def __init__(
        self,
        service: PredictionService,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.service = service
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.flushes = 0
        self.flushed_requests = 0
        self.max_flush_size = 0
        self._queue: asyncio.Queue | None = None
        self._task: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None

    @property
    def queue_depth(self) -> int:
        """Requests waiting for the next flush, right now."""
        return self._queue.qsize() if self._queue is not None else 0

    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("batcher is already running")
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serving-model"
        )
        self._task = asyncio.create_task(self._run())

    async def stop(self) -> None:
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None
        while self._queue is not None and not self._queue.empty():
            _request, future = self._queue.get_nowait()
            if not future.done():
                future.set_exception(RuntimeError("batcher stopped"))
        self._executor.shutdown(wait=False)
        self._executor = None
        self._queue = None

    async def submit(self, request: PredictRequest) -> PredictResponse:
        """Enqueue one request and wait for its batched response."""
        if self._task is None:
            raise RuntimeError("batcher is not running (call start() first)")
        future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((request, future))
        return await future

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            batch = [await self._queue.get()]
            try:
                self._drain_into(batch)
                if self.max_wait_ms > 0 and len(batch) < self.max_batch_size:
                    loop = asyncio.get_running_loop()
                    deadline = loop.time() + self.max_wait_ms / 1000.0
                    while len(batch) < self.max_batch_size:
                        timeout = deadline - loop.time()
                        if timeout <= 0:
                            break
                        try:
                            batch.append(
                                await asyncio.wait_for(
                                    self._queue.get(), timeout
                                )
                            )
                        except asyncio.TimeoutError:
                            break
                        self._drain_into(batch)
                await self._flush(batch)
            except asyncio.CancelledError:
                # stop() mid-collection or mid-flush: the batch items are
                # already out of the queue, so the queue drain in stop()
                # can't see them — fail their futures here or their
                # submitters would await forever.
                for _request, future in batch:
                    if not future.done():
                        future.set_exception(RuntimeError("batcher stopped"))
                raise

    def _drain_into(self, batch: list) -> None:
        """Opportunistically absorb already-queued requests (no waiting)."""
        while len(batch) < self.max_batch_size:
            try:
                batch.append(self._queue.get_nowait())
            except asyncio.QueueEmpty:
                break

    async def _flush(self, batch: list) -> None:
        self.flushes += 1
        self.flushed_requests += len(batch)
        self.max_flush_size = max(self.max_flush_size, len(batch))
        # submit_many rejects coalesced chunks that mix workload-carrying
        # and workload-free rows; unrelated callers may mix, so partition.
        with_workload = [item for item in batch if item[0].workload is not None]
        without = [item for item in batch if item[0].workload is None]
        for items in (with_workload, without):
            if items:
                await self._serve(items)

    async def _serve(self, items: list) -> None:
        loop = asyncio.get_running_loop()
        requests = [request for request, _future in items]
        try:
            responses = await loop.run_in_executor(
                self._executor, self.service.submit_many, requests
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            if len(items) == 1:
                _request, future = items[0]
                if not future.done():
                    future.set_exception(exc)
                return
            # Isolate the poison request: serve the batch one by one so
            # only the guilty request's caller sees the failure.
            for request, future in items:
                try:
                    response = await loop.run_in_executor(
                        self._executor, self.service.submit_many, [request]
                    )
                except asyncio.CancelledError:
                    raise
                except Exception as single_exc:
                    if not future.done():
                        future.set_exception(single_exc)
                else:
                    if not future.done():
                        future.set_result(response[0])
            return
        for (_request, future), response in zip(items, responses):
            if not future.done():
                future.set_result(response)
