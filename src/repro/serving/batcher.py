"""Cross-request adaptive micro-batching for the serving gateway.

The :class:`~repro.api.service.PredictionService` already coalesces the
requests *inside one submission*; a gateway's opportunity is bigger —
concurrent HTTP callers each carry one request, and those can be
coalesced *across callers*.  :class:`MicroBatcher` is that layer: every
request lands in one asyncio queue, a single collector task drains it
into batches (flushing when ``max_batch_size`` requests are waiting or
the ``max_wait_ms`` window since the batch's first request expires —
with no wait at all for traffic that is already queued), and each batch
becomes one :meth:`~repro.api.service.PredictionService.submit_many`
call.  Results are bitwise-equal to direct per-request service calls:
the service pins that chunking never changes values.

The blocking model call runs on a private *daemon* worker thread, so
the event loop keeps accepting and queueing new requests while a flush
is being served — and when a model call exceeds its deadline the stuck
thread is simply abandoned and a fresh worker spun up (a daemon thread
cannot wedge interpreter exit), so one hung fit never wedges the
batcher.

Layered on top is the resilience contract from
:mod:`repro.serving.resilience`:

* **admission control** — a bounded queue refuses with
  :class:`~repro.serving.resilience.OverloadError` (429 +
  ``Retry-After`` estimated from queue depth x recent per-request
  service time) and a draining batcher with
  :class:`~repro.serving.resilience.DrainingError` (503),
* **deadlines** — a request carrying ``deadline_ms`` (or covered by the
  server default) is shed *at dequeue* if already expired — it never
  reaches the model — and bounds the model call via
  :func:`asyncio.wait_for` (504 on expiry, worker recycled),
* **circuit breaking** — consecutive model-call failures open the
  :class:`~repro.serving.resilience.CircuitBreaker`; open-circuit
  admission fast-fails, half-open probes close it again,
* **graceful drain** — ``stop(drain=True)`` stops admitting and
  completes everything already accepted, bitwise-equal, before tearing
  down.

Two requests from unrelated callers may disagree on whether they carry
a workload; ``submit_many`` rejects such a mix inside one coalesced
chunk, so a flush partitions its batch into workload-carrying and
workload-free halves first.  If a batch call still fails, the batch is
retried request-by-request so one poison request cannot fail its
flush-mates.
"""

from __future__ import annotations

import asyncio
import queue as _thread_queue
import threading
import time
from dataclasses import dataclass
from functools import partial
from collections.abc import Callable

from repro.api.service import PredictRequest, PredictResponse, PredictionService
from repro.serving.resilience import (
    CircuitBreaker,
    DeadlineExceededError,
    DrainingError,
    OverloadError,
    ResilienceConfig,
    ServiceTimeEstimator,
)

__all__ = ["MicroBatcher"]


class _ModelWorker:
    """A single daemon thread running blocking model calls.

    ``concurrent.futures.ThreadPoolExecutor`` threads are non-daemon and
    joined at interpreter exit, so a model call that never returns would
    wedge process shutdown.  This worker is expendable instead: on a
    model-call timeout the batcher abandons it (the stuck call keeps the
    old thread, which can never block exit) and spins up a fresh one.
    """

    def __init__(self, name: str = "repro-serving-model") -> None:
        self._jobs: _thread_queue.SimpleQueue = _thread_queue.SimpleQueue()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    def submit(
        self, loop: asyncio.AbstractEventLoop, fn: Callable[[], object]
    ) -> asyncio.Future:
        """Run ``fn`` on the worker thread; resolve an asyncio future.

        Must be called from ``loop``'s thread.  Cancelling the returned
        future abandons the result (the worker checks before
        delivering).
        """
        future = loop.create_future()
        self._jobs.put((loop, future, fn))
        return future

    def stop(self) -> None:
        """Ask the worker to exit after its queued jobs (non-blocking)."""
        self._jobs.put(None)

    def _run(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:
                return
            loop, future, fn = job
            try:
                value = fn()
            except BaseException as exc:  # delivered, not raised here
                value, failed = exc, True
            else:
                failed = False

            def deliver(future=future, value=value, failed=failed) -> None:
                if future.cancelled():
                    return
                if failed:
                    future.set_exception(value)
                else:
                    future.set_result(value)

            try:
                loop.call_soon_threadsafe(deliver)
            except RuntimeError:
                # The loop is already closed (shutdown race): the result
                # has no recipient anymore.
                pass


@dataclass
class _Pending:
    """One queued request: payload, caller future, absolute deadline."""

    request: PredictRequest
    future: asyncio.Future
    deadline: float | None


class MicroBatcher:
    """Coalesce concurrent :meth:`submit` calls into batched service calls.

    Parameters
    ----------
    service:
        The :class:`~repro.api.service.PredictionService` to drive.
    max_batch_size:
        Flush as soon as this many requests are waiting.
    max_wait_ms:
        How long a batch may wait for more requests after its first one
        arrived (``0`` = flush immediately with whatever is queued).
    resilience:
        The :class:`~repro.serving.resilience.ResilienceConfig` knobs
        (queue bound, default deadline, breaker, drain timeout);
        defaults to the stock config.
    clock:
        Monotonic ``() -> float`` used for deadlines and the breaker
        cooldown; defaults to the event loop's clock (tests inject a
        :class:`~repro.serving.faults.ManualClock`).
    name:
        Diagnostic label for this batcher (the fleet passes the model
        name); names the model worker thread so a wedged fleet is
        attributable in a thread dump.
    """

    def __init__(
        self,
        service: PredictionService,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        resilience: ResilienceConfig | None = None,
        clock: Callable[[], float] | None = None,
        name: str = "default",
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.service = service
        self.name = name
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self.breaker = CircuitBreaker(
            failure_threshold=self.resilience.breaker_failure_threshold,
            cooldown_s=self.resilience.breaker_cooldown_s,
            clock=clock or time.monotonic,
        )
        self.service_time = ServiceTimeEstimator()
        # Coalescing counters (pre-resilience observability).
        self.flushes = 0  # guarded-by: loop
        self.flushed_requests = 0  # guarded-by: loop
        self.max_flush_size = 0  # guarded-by: loop
        # Resilience counters.
        self.shed_overload = 0  # guarded-by: loop
        self.shed_deadline = 0  # guarded-by: loop
        self.shed_draining = 0  # guarded-by: loop
        self.shed_circuit = 0  # guarded-by: loop
        self.model_timeouts = 0  # guarded-by: loop
        self.worker_recycles = 0  # guarded-by: loop
        self.drained_requests = 0  # guarded-by: loop
        self._clock_override = clock
        self._clock: Callable[[], float] = clock or time.monotonic
        self._queue: asyncio.Queue | None = None
        self._task: asyncio.Task | None = None
        self._worker: _ModelWorker | None = None
        self._idle: asyncio.Event | None = None
        self._draining = False

    @property
    def _worker_name(self) -> str:
        return f"repro-serving-model-{self.name}"

    @property
    def queue_depth(self) -> int:
        """Requests waiting for the next flush, right now."""
        return self._queue.qsize() if self._queue is not None else 0

    @property
    def draining(self) -> bool:
        """True once a drain began: no new requests are admitted."""
        return self._draining

    def resilience_snapshot(self) -> dict:
        """The ``/stats`` view of the resilience layer."""
        mean_s = self.service_time.mean_s
        return {
            "draining": self._draining,
            "queue_depth": self.queue_depth,
            "queue_capacity": self.resilience.queue_depth,
            "default_deadline_ms": self.resilience.default_deadline_ms,
            "shed": {
                "overload": self.shed_overload,
                "deadline": self.shed_deadline,
                "draining": self.shed_draining,
                "circuit": self.shed_circuit,
            },
            "model_timeouts": self.model_timeouts,
            "worker_recycles": self.worker_recycles,
            "drained_requests": self.drained_requests,
            "service_time_ms": None if mean_s is None else mean_s * 1e3,
            "circuit": self.breaker.snapshot(),
        }

    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("batcher is already running")
        loop = asyncio.get_running_loop()
        self._clock = self._clock_override or loop.time
        self._queue = asyncio.Queue()
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._worker = _ModelWorker(name=self._worker_name)
        self._task = asyncio.create_task(self._run())

    def begin_drain(self) -> None:
        """Stop admitting new requests (everything queued still runs)."""
        self._draining = True

    async def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting and wait for accepted requests to complete.

        Returns ``True`` when the queue and in-flight flush fully
        drained, ``False`` on timeout (callers then hard-stop).
        """
        self.begin_drain()
        if self._task is None or self._idle is None:
            return True
        before = self.flushed_requests
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
        except asyncio.TimeoutError:
            return False
        finally:
            self.drained_requests += self.flushed_requests - before
        return True

    async def stop(
        self, drain: bool = True, drain_timeout: float | None = None
    ) -> None:
        """Tear the batcher down.

        ``drain=True`` (the default) first completes every accepted
        request — their responses stay bitwise-equal to direct service
        calls — bounded by ``drain_timeout`` (default: the config's
        ``drain_timeout_s``).  ``drain=False`` is the hard stop: queued
        and in-flight futures fail with ``RuntimeError('batcher
        stopped')`` instead of hanging their submitters.
        """
        if self._task is None:
            return
        if drain:
            if drain_timeout is None:
                drain_timeout = self.resilience.drain_timeout_s
            await self.drain(timeout=drain_timeout)
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None
        while self._queue is not None and not self._queue.empty():
            pending = self._queue.get_nowait()
            if not pending.future.done():
                pending.future.set_exception(RuntimeError("batcher stopped"))
        self._worker.stop()
        self._worker = None
        self._queue = None
        self._idle = None

    async def submit(
        self, request: PredictRequest, deadline_ms: float | None = None
    ) -> PredictResponse:
        """Enqueue one request and wait for its batched response.

        Admission control runs here, before anything is queued: a
        draining batcher answers :class:`DrainingError` (503), an open
        circuit :class:`CircuitOpenError` (503 + ``Retry-After``), and a
        full queue :class:`OverloadError` (429 + ``Retry-After``
        estimated from queue depth x recent per-request service time).
        The effective deadline is ``deadline_ms`` (argument) >
        ``request.deadline_ms`` (wire field) > the config default; its
        expiry answers :class:`DeadlineExceededError` (504).
        """
        if self._task is None:
            raise RuntimeError("batcher is not running (call start() first)")
        if self._draining:
            self.shed_draining += 1
            raise DrainingError("draining; not accepting new requests")
        try:
            self.breaker.admit()
        except Exception:
            self.shed_circuit += 1
            raise
        capacity = self.resilience.queue_depth
        depth = self._queue.qsize()
        if capacity is not None and depth >= capacity:
            self.shed_overload += 1
            raise OverloadError(
                f"queue full ({depth} requests waiting, capacity {capacity})",
                retry_after=self.service_time.retry_after(depth),
            )
        if deadline_ms is None:
            deadline_ms = request.deadline_ms
        if deadline_ms is None:
            deadline_ms = self.resilience.default_deadline_ms
        deadline = None if deadline_ms is None else self._clock() + deadline_ms / 1e3
        future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait(_Pending(request, future, deadline))
        self._idle.clear()
        return await future

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            batch = [await self._queue.get()]
            self._idle.clear()
            try:
                self._drain_into(batch)
                if (
                    self.max_wait_ms > 0
                    and not self._draining
                    and len(batch) < self.max_batch_size
                ):
                    loop = asyncio.get_running_loop()
                    deadline = loop.time() + self.max_wait_ms / 1000.0
                    while len(batch) < self.max_batch_size and not self._draining:
                        timeout = deadline - loop.time()
                        if timeout <= 0:
                            break
                        try:
                            batch.append(
                                await asyncio.wait_for(
                                    self._queue.get(), timeout
                                )
                            )
                        except asyncio.TimeoutError:
                            break
                        self._drain_into(batch)
                await self._flush(batch)
            except asyncio.CancelledError:
                # stop() mid-collection or mid-flush: the batch items are
                # already out of the queue, so the queue drain in stop()
                # can't see them — fail their futures here or their
                # submitters would await forever.
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(
                            RuntimeError("batcher stopped")
                        )
                raise
            if self._queue.empty():
                self._idle.set()

    def _drain_into(self, batch: list[_Pending]) -> None:
        """Opportunistically absorb already-queued requests (no waiting)."""
        while len(batch) < self.max_batch_size:
            try:
                batch.append(self._queue.get_nowait())
            except asyncio.QueueEmpty:
                break

    async def _flush(self, batch: list[_Pending]) -> None:
        self.flushes += 1
        self.flushed_requests += len(batch)
        self.max_flush_size = max(self.max_flush_size, len(batch))
        live = self._shed_expired(batch)
        # submit_many rejects coalesced chunks that mix workload-carrying
        # and workload-free rows; unrelated callers may mix, so partition.
        with_workload = [p for p in live if p.request.workload is not None]
        without = [p for p in live if p.request.workload is None]
        for items in (with_workload, without):
            if items:
                await self._serve(items)

    def _shed_expired(self, batch: list[_Pending]) -> list[_Pending]:
        """Fail already-expired requests at dequeue, before any model
        work — an expired request must never reach the model."""
        now = self._clock()
        live: list[_Pending] = []
        for pending in batch:
            if pending.deadline is not None and now >= pending.deadline:
                self.shed_deadline += 1  # repro: noqa[LOCK001] -- sync helper, but called only from the _flush coroutine on the loop
                if not pending.future.done():
                    pending.future.set_exception(
                        DeadlineExceededError(
                            "deadline expired while queued; "
                            "request was shed before the model"
                        )
                    )
            else:
                live.append(pending)
        return live

    def _call_timeout(self, items: list[_Pending]) -> float | None:
        """The model-call budget: the most generous remaining deadline in
        the chunk (``None`` when no item carries one), so one short
        deadline cannot cut off its flush-mates' work."""
        remaining = [
            p.deadline - self._clock()
            for p in items
            if p.deadline is not None
        ]
        if len(remaining) < len(items):
            return None
        return max(0.0, max(remaining))

    async def _call_model(
        self, requests: list[PredictRequest], timeout: float | None
    ) -> list[PredictResponse]:
        """One service call on the worker thread, deadline-bounded.

        On timeout the stuck worker is abandoned and recycled — raising
        ``asyncio.TimeoutError`` to the caller — so one hung model call
        can never wedge the batcher for later requests.
        """
        loop = asyncio.get_running_loop()
        future = self._worker.submit(
            loop, partial(self.service.submit_many, requests)
        )
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self.model_timeouts += 1
            self.worker_recycles += 1
            self._worker.stop()
            self._worker = _ModelWorker(name=self._worker_name)
            raise

    async def _serve(self, items: list[_Pending]) -> None:
        requests = [p.request for p in items]
        started = self._clock()
        try:
            responses = await self._call_model(
                requests, self._call_timeout(items)
            )
        except asyncio.CancelledError:
            raise
        except asyncio.TimeoutError:
            self.breaker.record_failure()
            for pending in items:
                if not pending.future.done():
                    pending.future.set_exception(
                        DeadlineExceededError(
                            "model call exceeded the request deadline"
                        )
                    )
            return
        except Exception as exc:
            self.breaker.record_failure()
            if len(items) == 1:
                pending = items[0]
                if not pending.future.done():
                    pending.future.set_exception(exc)
                return
            # Isolate the poison request: serve the batch one by one so
            # only the guilty request's caller sees the failure.
            for pending in items:
                await self._serve([pending])
            return
        self.breaker.record_success()
        self.service_time.observe(self._clock() - started, len(items))
        for pending, response in zip(items, responses):
            if not pending.future.done():
                pending.future.set_result(response)
