"""Deterministic fault injection at the prediction-service boundary.

The resilience layer's contract — shed on overload, 504 on expired
deadlines, trip the breaker on consecutive failures, drain to completion
— is about *ordering* of events, not wall-clock timing, so its tests
must not sleep and hope.  This module makes the failure schedule a
script: :class:`FaultInjector` holds faults keyed by **request index**
(requests are numbered in arrival order at the service boundary), and
:class:`FaultyService` wraps a real
:class:`~repro.api.service.PredictionService` so that the call carrying
a scripted index raises, delays, or *hangs* — where a hang blocks the
model worker thread on an event the test releases explicitly.

Because faults fire at the service boundary, everything above it (the
micro-batcher, the gateway, the wire) is exercised unmodified, and the
injector's :attr:`~FaultInjector.served` log proves what did — and did
not — reach the model.  :class:`ManualClock` is the matching
deterministic time source for deadline and circuit-breaker transitions.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any

from repro.api.service import PredictRequest, PredictResponse
from repro.env import get_path

__all__ = [
    "Fault",
    "FaultInjector",
    "FaultyService",
    "ManualClock",
    "ProcessChaos",
]

# Safety net: a test that forgets release_hangs() stalls its worker
# thread for this long instead of forever (the thread is a daemon, so
# even an expired wait cannot wedge interpreter exit).
_HANG_SAFETY_TIMEOUT_S = 60.0


class ManualClock:
    """A monotonic clock the test advances by hand.

    Inject into :class:`~repro.serving.batcher.MicroBatcher` /
    :class:`~repro.serving.resilience.CircuitBreaker` so deadline expiry
    and cooldown elapse exactly when the test says so.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self.now += seconds


@dataclass
class Fault:
    """One scripted fault: raise, delay, or hang the service call."""

    exception: BaseException | None = None
    delay_s: float = 0.0
    hang: bool = False


class FaultInjector:
    """A scripted fault plan keyed by request arrival index.

    Thread-safe: the batcher's worker thread consumes indices while the
    test thread scripts and releases.  Observability for assertions:

    * :attr:`calls` — ``(first_index, n_requests)`` per service call,
    * :attr:`served` — the requests that actually reached the model,
    * :meth:`wait_hang_started` — rendezvous with a hang taking effect.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._script: dict[int, Fault] = {}
        self._next_index = 0
        self._release = threading.Event()
        self._hang_started = threading.Event()
        self.calls: list[tuple[int, int]] = []
        self.served: list[PredictRequest] = []

    # -- scripting ------------------------------------------------------
    def fail_at(
        self, *indices: int, exception: BaseException | None = None
    ) -> FaultInjector:
        """Raise at these request indices (default: ``RuntimeError``)."""
        with self._lock:
            for index in indices:
                self._script[index] = Fault(
                    exception=exception
                    if exception is not None
                    else RuntimeError(f"injected fault at request {index}")
                )
        return self

    def hang_at(self, *indices: int) -> FaultInjector:
        """Block the service call at these indices until released."""
        with self._lock:
            for index in indices:
                self._script[index] = Fault(hang=True)
        return self

    def delay_at(self, index: int, seconds: float) -> FaultInjector:
        """Sleep ``seconds`` before serving the call at ``index``."""
        with self._lock:
            self._script[index] = Fault(delay_s=seconds)
        return self

    # -- hang rendezvous ------------------------------------------------
    def wait_hang_started(self, timeout: float = 10.0) -> bool:
        """Block (on a non-loop thread) until a scripted hang is holding."""
        return self._hang_started.wait(timeout)

    def release_hangs(self) -> None:
        """Let every held (and future) hang proceed normally."""
        self._release.set()

    # -- the service boundary -------------------------------------------
    def take(self, n_requests: int) -> Fault | None:
        """Consume ``n_requests`` arrival indices; return the first
        scripted fault among them (``None`` = serve normally)."""
        with self._lock:
            first = self._next_index
            self._next_index += n_requests
            self.calls.append((first, n_requests))
            for index in range(first, first + n_requests):
                fault = self._script.get(index)
                if fault is not None:
                    return fault
        return None

    def apply(self, fault: Fault | None) -> None:
        """Run one fault's effect on the calling (worker) thread."""
        if fault is None:
            return
        if fault.delay_s:
            time.sleep(fault.delay_s)
        if fault.hang:
            self._hang_started.set()
            self._release.wait(_HANG_SAFETY_TIMEOUT_S)
        if fault.exception is not None:
            raise fault.exception


class FaultyService:
    """A :class:`PredictionService` proxy that runs the fault script.

    Implements the surface the batcher and gateway use (``submit_many``,
    ``model``, ``stats`` / ``stats_snapshot``), so it drops in wherever
    a real service does.
    """

    def __init__(self, service: Any, injector: FaultInjector) -> None:
        self._service = service
        self.injector = injector

    @property
    def model(self) -> Any:
        return self._service.model

    @property
    def stats(self) -> Any:
        return self._service.stats

    def stats_snapshot(self) -> dict:
        return self._service.stats_snapshot()

    def submit_many(
        self, requests: Sequence[PredictRequest]
    ) -> list[PredictResponse]:
        fault = self.injector.take(len(requests))
        self.injector.apply(fault)
        responses = self._service.submit_many(requests)
        with self.injector._lock:
            self.injector.served.extend(requests)
        return responses


class ProcessChaos:
    """Process-level chaos plan shared through the filesystem.

    The in-process :class:`FaultInjector` cannot reach across ``fork``:
    worker processes are separate interpreters, and the chaos harness
    (``scripts/smoke_chaos.py``, the supervisor tests) drives a real
    ``python -m repro serve`` subprocess it cannot script objects into.
    So the plan is a directory of *token files*: the harness
    :meth:`arm`\\ s an action by creating ``<action>-<i>.fault`` tokens
    under a directory named by the ``REPRO_CHAOS_DIR`` environment
    variable, and each worker process calls :meth:`enact` at its
    lifecycle points.  A token is consumed by at most one process —
    :meth:`claim` renames it atomically (``os.rename`` on one
    filesystem), so N armed tokens fault exactly N workers even when
    several start concurrently.

    Supported actions (``enact`` point → action):

    * ``startup`` → ``crash-startup`` (``os._exit`` before announcing;
      params: ``exit_code``, default 3) and ``hang-startup``
      (``time.sleep`` before announcing; params: ``hang_s``, default
      3600 — the supervisor's startup deadline is what ends it),
    * ``drain`` → ``crash-drain`` (``os._exit`` mid-drain instead of a
      clean exit; params: ``exit_code``, default 1).

    With ``REPRO_CHAOS_DIR`` unset, :meth:`from_env` returns ``None``
    and the serve path skips chaos entirely — production code carries
    one ``if chaos:`` per lifecycle point and nothing else.
    """

    ENV = "REPRO_CHAOS_DIR"
    ACTIONS = ("crash-startup", "hang-startup", "crash-drain")

    def __init__(self, directory: str) -> None:
        self.directory = directory

    @classmethod
    def from_env(cls, env: dict | None = None) -> ProcessChaos | None:
        directory = get_path(cls.ENV, environ=env)
        if directory is None:
            return None
        return cls(directory)

    def arm(self, action: str, count: int = 1, **params) -> list[str]:
        """Create ``count`` one-shot tokens for ``action``; returns paths."""
        if action not in self.ACTIONS:
            raise ValueError(
                f"unknown chaos action {action!r}; choose from {self.ACTIONS}"
            )
        os.makedirs(self.directory, exist_ok=True)
        payload = json.dumps(params).encode("ascii")
        paths = []
        index = 0
        created = 0
        while created < count:
            path = os.path.join(self.directory, f"{action}-{index}.fault")
            index += 1
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                continue  # older token (armed or claimed peer): skip the name
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            paths.append(path)
            created += 1
        return paths

    def claim(self, action: str) -> dict | None:
        """Atomically consume one armed token for ``action``, or ``None``.

        The rename is the claim: exactly one of several concurrent
        claimants wins each token, the losers see ``FileNotFoundError``
        and move on.
        """
        try:
            names = sorted(os.listdir(self.directory))
        except FileNotFoundError:
            return None
        for name in names:
            if not (name.startswith(f"{action}-") and name.endswith(".fault")):
                continue
            src = os.path.join(self.directory, name)
            claimed = f"{src}.claimed-{os.getpid()}"
            try:
                os.rename(src, claimed)
            except FileNotFoundError:
                continue  # lost the race for this token
            try:
                with open(claimed, "rb") as handle:
                    raw = handle.read()
                return json.loads(raw) if raw else {}
            except (OSError, json.JSONDecodeError):
                return {}
        return None

    def enact(self, point: str) -> None:
        """Run any armed fault for this lifecycle ``point`` (worker side)."""
        if point == "startup":
            params = self.claim("crash-startup")
            if params is not None:
                os._exit(int(params.get("exit_code", 3)))
            params = self.claim("hang-startup")
            if params is not None:
                time.sleep(float(params.get("hang_s", 3600.0)))
        elif point == "drain":
            params = self.claim("crash-drain")
            if params is not None:
                os._exit(int(params.get("exit_code", 1)))
