"""Retrying HTTP client for the serving gateway.

The resilience layer *sheds* on purpose — 429 on a full queue, 503 while
draining or with the circuit open — and every shed carries a
``Retry-After`` hint.  :class:`ServingClient` is the cooperating caller:
it retries exactly those statuses (and transport failures) with capped
exponential backoff plus jitter, never sleeping less than the server's
``Retry-After``, and surfaces everything else as a structured
:class:`ServingError`.

The sleep function and the jitter RNG are injectable, so retry behavior
is tested deterministically (recorded sleeps, seeded jitter) without a
single real wait.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from collections.abc import Callable, Sequence
from typing import Any

from repro.api.service import PredictRequest
from repro.serving import wire

__all__ = ["ServingClient", "ServingError"]

# Statuses the resilience layer uses for "try again later".
_RETRYABLE_STATUSES = frozenset({429, 503})


class ServingError(Exception):
    """A gateway answer (or transport failure) the client cannot retry.

    ``status`` is the HTTP status, or ``None`` for transport-level
    failures that exhausted the retry budget.
    """

    def __init__(self, status: int | None, message: str) -> None:
        super().__init__(
            message if status is None else f"HTTP {status}: {message}"
        )
        self.status = status
        self.message = message


class ServingClient:
    """One gateway endpoint, with retries the resilience layer expects.

    Parameters
    ----------
    host / port:
        The gateway address.
    token:
        Optional static bearer token, sent as
        ``Authorization: Bearer <token>`` on every request (the
        gateway's :class:`~repro.serving.auth.Authenticator` contract).
    model:
        Optional model name — predictions go to
        ``POST /models/<model>/predict`` instead of the default-model
        ``/predict`` route.
    timeout:
        Per-attempt socket timeout in seconds.
    max_retries:
        How many times a retryable answer (429/503, connection failure)
        is retried before giving up.
    backoff_base_s / backoff_cap_s:
        Exponential backoff: attempt ``k`` waits
        ``min(cap, base * 2**k)`` scaled by jitter in ``[0.5, 1.0)`` —
        but never less than the server's ``Retry-After``.
    failover_retries:
        Transport failures (connection reset/refused) retry
        *immediately* — no backoff sleep — this many consecutive times
        before exponential backoff kicks in.  Against an
        ``SO_REUSEPORT`` worker pool a reset usually means *that
        worker* died mid-connection; the kernel routes the very next
        connection to a surviving worker, so waiting first only adds
        latency.  The counter resets on any completed HTTP exchange.
    sleep / rng:
        Injectable for deterministic tests (defaults: ``time.sleep``,
        a private ``random.Random``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        *,
        token: str | None = None,
        model: str | None = None,
        timeout: float = 30.0,
        max_retries: int = 4,
        backoff_base_s: float = 0.1,
        backoff_cap_s: float = 5.0,
        failover_retries: int = 1,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_base_s < 0 or backoff_cap_s < 0:
            raise ValueError("backoff knobs must be non-negative")
        if failover_retries < 0:
            raise ValueError("failover_retries must be non-negative")
        self.host = host
        self.port = port
        self.token = token
        self.model = model
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.failover_retries = failover_retries
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()

    # -- public surface -------------------------------------------------
    def predict(
        self, request: PredictRequest | dict, deadline_ms: float | None = None
    ) -> dict:
        """Serve one request; returns the decoded response object."""
        obj = self._encode(request, deadline_ms)
        return self._call("POST", self._predict_path(), obj)

    def predict_many(
        self,
        requests: Sequence[PredictRequest | dict],
        deadline_ms: float | None = None,
    ) -> list[dict]:
        """Serve a list of requests in one HTTP call."""
        objs = [self._encode(r, deadline_ms) for r in requests]
        return self._call("POST", self._predict_path(), objs)

    def healthz(self) -> dict:
        return self._call("GET", "/healthz")

    def stats(self) -> dict:
        return self._call("GET", "/stats")

    def models(self) -> dict:
        """The loaded-model listing (``GET /models``)."""
        return self._call("GET", "/models")

    def load_model(self, name: str, path_or_envelope: str | dict) -> dict:
        """Load/hot-reload a model (``PUT /models/<name>``).

        A string is a server-side model file path; a dict is a full
        format-v2 envelope shipped in the request body.
        """
        body = (
            {"path": path_or_envelope}
            if isinstance(path_or_envelope, str)
            else path_or_envelope
        )
        return self._call("PUT", f"/models/{name}", body)

    def unload_model(self, name: str) -> dict:
        """Drain-then-unload a model (``DELETE /models/<name>``)."""
        return self._call("DELETE", f"/models/{name}")

    # -- design-space exploration ---------------------------------------
    def submit_dse(self, spec: dict) -> dict:
        """Submit a DSE sweep (``POST /dse``); returns the 202 job ticket."""
        return self._call("POST", "/dse", dict(spec))

    def dse_jobs(self) -> dict:
        """All tracked DSE jobs (``GET /dse``)."""
        return self._call("GET", "/dse")

    def dse_status(self, job_id: str) -> dict:
        """One job's status + progress (``GET /dse/<id>``)."""
        return self._call("GET", f"/dse/{job_id}")

    def dse_results(self, job_id: str, top: int | None = None) -> dict:
        """A finished job's ranked results (409 until it is done)."""
        path = f"/dse/{job_id}/results"
        if top is not None:
            path += f"?top={top}"
        return self._call("GET", path)

    def cancel_dse(self, job_id: str) -> dict:
        """Request cancellation (``DELETE /dse/<id>``)."""
        return self._call("DELETE", f"/dse/{job_id}")

    def wait_dse(
        self, job_id: str, timeout: float = 300.0, poll_s: float = 0.25
    ) -> dict:
        """Poll until the job leaves pending/running; returns the final
        status snapshot (raises :class:`ServingError` on timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.dse_status(job_id)
            if status.get("state") not in ("pending", "running"):
                return status
            if time.monotonic() >= deadline:
                raise ServingError(
                    None,
                    f"DSE job {job_id} still {status.get('state')} "
                    f"after {timeout:g}s",
                )
            self._sleep(poll_s)

    def _predict_path(self) -> str:
        if self.model is None:
            return "/predict"
        return f"/models/{self.model}/predict"

    # -- internals ------------------------------------------------------
    @staticmethod
    def _encode(
        request: PredictRequest | dict, deadline_ms: float | None
    ) -> dict:
        obj = (
            wire.encode_request(request)
            if isinstance(request, PredictRequest)
            else dict(request)
        )
        if deadline_ms is not None:
            obj["deadline_ms"] = deadline_ms
        return obj

    def _send(
        self, method: str, path: str, payload: Any
    ) -> tuple[int, dict, Any]:
        """One HTTP attempt; returns (status, lowercase headers, body)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None if payload is None else json.dumps(payload)
            headers = {"Content-Type": "application/json"}
            if self.token is not None:
                headers["Authorization"] = f"Bearer {self.token}"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            headers = {k.lower(): v for k, v in response.getheaders()}
            try:
                decoded = json.loads(raw.decode()) if raw else None
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = None
            return response.status, headers, decoded
        finally:
            conn.close()

    def _call(self, method: str, path: str, payload: Any = None) -> Any:
        attempt = 0
        transport_failures = 0
        while True:
            try:
                status, headers, decoded = self._send(method, path, payload)
            except (OSError, http.client.HTTPException) as exc:
                transport_failures += 1
                if attempt >= self.max_retries:
                    raise ServingError(
                        None, f"gateway unreachable after {attempt + 1} "
                        f"attempts: {exc}"
                    ) from exc
                if transport_failures > self.failover_retries:
                    self._backoff(attempt, None)
                # else: immediate failover — a new connection usually
                # lands on a surviving SO_REUSEPORT worker.
                attempt += 1
                continue
            transport_failures = 0
            if status < 400:
                return decoded
            message = ""
            if isinstance(decoded, dict):
                message = decoded.get("error", {}).get("message", "")
            if status in _RETRYABLE_STATUSES and attempt < self.max_retries:
                self._backoff(attempt, headers.get("retry-after"))
                attempt += 1
                continue
            raise ServingError(status, message or f"no body ({method} {path})")

    def _backoff(self, attempt: int, retry_after: str | None) -> None:
        """Sleep before retry ``attempt``: capped exponential backoff with
        jitter, floored by the server's ``Retry-After``."""
        wait = min(self.backoff_cap_s, self.backoff_base_s * (2**attempt))
        wait *= 0.5 + self._rng.random() / 2
        if retry_after is not None:
            try:
                wait = max(wait, float(retry_after))
            except ValueError:
                pass
        self._sleep(wait)
