"""JSON wire protocol for the serving gateway.

One prediction request is one JSON object::

    {"config": "C8", "workload": "dhrystone", "kind": "total",
     "events": {"cycles": 50000.0, "instructions": 41000.0, ...}}

``events`` carries the full event-count dict of one simulation interval
(every name in :data:`repro.arch.events.EVENT_NAMES`); ``kind`` is
``"total"`` (default), ``"report"`` or ``"trace"``; trace requests add
``"scales"`` (list of activity scales) and optionally
``"window_cycles"``.  Any request may carry ``"deadline_ms"`` — a
positive millisecond budget the resilience layer enforces: the request
is shed with 504 if it expires while queued (never reaching the model)
and bounds the model call itself; requests without one fall back to the
gateway's server-side default.  Responses mirror the request identity
and carry the payload field matching the kind — ``total`` (mW),
``report`` (per-component power-group breakdown) or ``trace``
(per-window mW list).

Decoding is strict and fails *before* anything reaches the model:

* :class:`WireError` with status 400 — malformed request (unknown
  fields, bad event names, empty scales, unknown config/workload, ...),
* :class:`WireError` with status 422 — a well-formed request whose
  ``kind`` the loaded model cannot serve (e.g. ``report`` against a
  method without power-group reports).

Floats survive the wire bitwise: ``json`` serializes via ``repr`` (the
shortest round-tripping form), so a decoded response compares equal to
the in-process :class:`~repro.api.service.PredictResponse` values.
"""

from __future__ import annotations

from typing import Any

from repro.api.service import PredictRequest, PredictResponse
from repro.power.report import POWER_GROUPS, PowerReport

__all__ = [
    "WireError",
    "decode_dse_submit",
    "decode_model_load",
    "decode_request",
    "encode_error",
    "encode_report",
    "encode_request",
    "encode_response",
    "supported_kinds",
]

_REQUEST_FIELDS = frozenset(
    {
        "config",
        "workload",
        "kind",
        "events",
        "scales",
        "window_cycles",
        "deadline_ms",
    }
)


class WireError(Exception):
    """A request the gateway refuses, with the HTTP status to answer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def supported_kinds(model: Any) -> tuple[str, ...]:
    """The request kinds a model can serve (mirrors service validation)."""
    kinds = ["total"]
    if callable(getattr(model, "predict_reports", None)) or callable(
        getattr(model, "predict_report", None)
    ):
        kinds.append("report")
    if callable(getattr(model, "predict_trace", None)):
        kinds.append("trace")
    return tuple(kinds)


def decode_request(obj: Any, model: Any = None) -> PredictRequest:
    """Decode one JSON request object into a :class:`PredictRequest`.

    Raises :class:`WireError` (400) on any malformed payload; when
    ``model`` is given, additionally raises :class:`WireError` (422) for
    a kind the model cannot serve.
    """
    if not isinstance(obj, dict):
        raise WireError(400, "request must be a JSON object")
    unknown = set(obj) - _REQUEST_FIELDS
    if unknown:
        raise WireError(400, f"unknown request fields: {sorted(unknown)}")
    config = obj.get("config")
    if not isinstance(config, str):
        raise WireError(400, "request needs a 'config' name string")
    workload = obj.get("workload")
    if workload is not None and not isinstance(workload, str):
        raise WireError(400, "'workload' must be a name string or omitted")
    kind = obj.get("kind", "total")
    if not isinstance(kind, str):
        raise WireError(400, "'kind' must be a string")
    events_obj = obj.get("events")
    if not isinstance(events_obj, dict):
        raise WireError(400, "request needs an 'events' count object")

    from repro.arch.events import EventParams

    try:
        counts = {str(k): float(v) for k, v in events_obj.items()}
    except (TypeError, ValueError):
        raise WireError(400, "event counts must be numbers") from None
    kwargs: dict[str, Any] = {}
    if "scales" in obj:
        kwargs["scales"] = obj["scales"]
    if "window_cycles" in obj:
        window_cycles = obj["window_cycles"]
        if not isinstance(window_cycles, (int, float)) or isinstance(
            window_cycles, bool
        ):
            raise WireError(400, "'window_cycles' must be a number")
        kwargs["window_cycles"] = window_cycles
    if "deadline_ms" in obj:
        deadline_ms = obj["deadline_ms"]
        if (
            not isinstance(deadline_ms, (int, float))
            or isinstance(deadline_ms, bool)
        ):
            raise WireError(400, "'deadline_ms' must be a number")
        kwargs["deadline_ms"] = deadline_ms
    try:
        request = PredictRequest(
            config=config,
            events=EventParams(counts),
            workload=workload,
            kind=kind,
            **kwargs,
        )
    except KeyError as exc:  # unknown config / workload name
        raise WireError(400, str(exc.args[0] if exc.args else exc)) from None
    except (TypeError, ValueError) as exc:
        raise WireError(400, str(exc)) from None
    if model is not None and request.kind not in supported_kinds(model):
        raise WireError(
            422,
            f"{type(model).__name__} does not support "
            f"{request.kind!r} requests",
        )
    return request


def decode_model_load(obj: Any) -> tuple[str, Any]:
    """Validate a ``PUT /models/<name>`` body into a load instruction.

    Two accepted shapes, decided by their keys:

    * ``{"path": "model.json"}`` — load a server-side model file
      (``repro.api.load_model``),
    * a full format-v2 envelope ``{"format_version": 2, "method": ...,
      "library": ..., "state": ...}`` — load from the request body
      itself (``repro.api.model_from_envelope``).

    Returns ``("path", str)`` or ``("envelope", dict)``; raises
    :class:`WireError` 400 on anything else, before any model state is
    touched.
    """
    if not isinstance(obj, dict):
        raise WireError(400, "model load body must be a JSON object")
    if "path" in obj:
        unknown = set(obj) - {"path"}
        if unknown:
            raise WireError(
                400, f"unknown model load fields: {sorted(unknown)}"
            )
        path = obj["path"]
        if not isinstance(path, str) or not path:
            raise WireError(400, "'path' must be a non-empty string")
        return "path", path
    if "format_version" in obj:
        return "envelope", obj
    raise WireError(
        400,
        "model load body needs either a 'path' or a full "
        "'format_version' model envelope",
    )


_DSE_FIELDS = frozenset(
    {
        "base",
        "axes",
        "workloads",
        "method",
        "train",
        "library",
        "jobs",
        "chunk",
        "max_configs",
    }
)


def decode_dse_submit(obj: Any) -> dict:
    """Structurally validate a ``POST /dse`` body into a job spec.

    Only the *shape* is checked here (it must be an object, with known
    field names and JSON-typed values); name resolution and semantic
    validation (unknown rows, grid bounds, method names) belong to
    :func:`repro.dse.jobs.normalize_spec`, which answers 400 through
    :class:`~repro.dse.jobs.DseError` — both run before any flow work.
    """
    if not isinstance(obj, dict):
        raise WireError(400, "DSE submission must be a JSON object")
    unknown = set(obj) - _DSE_FIELDS
    if unknown:
        raise WireError(400, f"unknown DSE fields: {sorted(unknown)}")
    for name in ("base", "method", "library"):
        if name in obj and not isinstance(obj[name], str):
            raise WireError(400, f"{name!r} must be a name string")
    for name in ("workloads", "train"):
        if name in obj and (
            not isinstance(obj[name], list)
            or not all(isinstance(x, str) for x in obj[name])
        ):
            raise WireError(400, f"{name!r} must be a list of name strings")
    if "axes" not in obj:
        raise WireError(400, "DSE submission needs an 'axes' object")
    if not isinstance(obj["axes"], dict):
        raise WireError(
            400, "'axes' must map raw parameter rows to value lists"
        )
    return dict(obj)


def encode_request(request: PredictRequest) -> dict:
    """The JSON object form of a request (the client side of the wire)."""
    obj: dict[str, Any] = {
        "config": request.config.name,
        "kind": request.kind,
        "events": dict(request.events.counts),
    }
    if request.workload is not None:
        obj["workload"] = request.workload.name
    if request.kind == "trace":
        obj["scales"] = [float(s) for s in request.scales]
        obj["window_cycles"] = request.window_cycles
    if request.deadline_ms is not None:
        obj["deadline_ms"] = request.deadline_ms
    return obj


def encode_report(report: PowerReport) -> dict:
    """Per-component power-group breakdown as plain JSON."""
    return {
        "total": float(report.total),
        "groups": {g: float(report.group_total(g)) for g in POWER_GROUPS},
        "components": [
            {
                "name": c.name,
                "clock": float(c.clock),
                "sram": float(c.sram),
                "register": float(c.register),
                "comb": float(c.comb),
                "total": float(c.total),
            }
            for c in report.components
        ],
    }


def encode_response(response: PredictResponse) -> dict:
    """The JSON object form of one response (payload field per kind)."""
    obj: dict[str, Any] = {
        "config": response.config_name,
        "workload": response.workload_name,
        "kind": response.kind,
    }
    if response.total is not None:
        obj["total"] = float(response.total)
    if response.report is not None:
        obj["report"] = encode_report(response.report)
    if response.trace is not None:
        obj["trace"] = [float(x) for x in response.trace]
    return obj


def encode_error(status: int, message: str) -> dict:
    """The structured error body every non-2xx response carries."""
    return {"error": {"status": status, "message": message}}
