"""Design-space exploration over a persistent content-addressed flow cache.

Two halves:

* :mod:`repro.dse.cache` — :class:`FlowDiskCache`, the on-disk
  content-addressed store :class:`~repro.vlsi.flow.VlsiFlow` writes
  every flow result through, shared across processes and runs.  A
  repeated sweep is a pure cache hit returning in milliseconds,
  byte-identical to the cold run.
* :mod:`repro.dse.grid` + :mod:`repro.dse.jobs` — parameter-grid
  generation over the raw Table II rows and the asynchronous DSE job
  manager the serving gateway exposes at ``POST /dse`` /
  ``GET /dse/<id>`` / ``GET /dse/<id>/results`` / ``DELETE /dse/<id>``.
"""

from repro.dse.cache import (
    FlowDiskCache,
    cache_enabled,
    content_key,
    default_flow_cache,
    flow_cache_root,
)
from repro.dse.grid import generate_grid, grid_size, raw_rows_of
from repro.dse.jobs import DseError, DseJob, DseJobManager

__all__ = [
    "DseError",
    "DseJob",
    "DseJobManager",
    "FlowDiskCache",
    "cache_enabled",
    "content_key",
    "default_flow_cache",
    "flow_cache_root",
    "generate_grid",
    "grid_size",
    "raw_rows_of",
]
