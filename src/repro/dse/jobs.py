"""Asynchronous design-space-exploration jobs.

A DSE job sweeps a parameter grid (:mod:`repro.dse.grid`) through the
disk-cached flow and ranks the resulting configurations.  Jobs are
submitted by the serving gateway (``POST /dse``), run on a daemon
thread so the event loop keeps serving predictions, and are polled via
``GET /dse/<id>`` / ``GET /dse/<id>/results`` (``DELETE`` cancels).

Two evaluation methods:

* ``"golden"`` (default) — run the full flow for every grid point and
  rank by golden mean total power.  Cache-aware scheduling: pairs
  already in the disk cache resolve inline in the submitting process;
  only the misses fan out through :mod:`repro.parallel` (per the job's
  ``jobs`` knob), chunked so progress and cancellation stay responsive.
* any registered model method (``"autopower"``, ``"mcpat-calib"``, ...)
  — few-shot fit the method on the job's training configurations
  through the cached flow, then predict every grid point from
  performance-simulator events alone (the paper's architect-side
  hand-off: no flow run for the explored points).

Ranking is ascending by mean total power over the job's workloads —
the DSE question is "which candidate spends the least power", and ties
between methods are broken by the deterministic grid order.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.arch.config import BoomConfig, config_by_name
from repro.arch.workloads import WORKLOADS, Workload, workload_by_name
from repro.dse.grid import generate_grid, grid_size, raw_rows_of
from repro.parallel import get_executor

__all__ = ["DseError", "DseJob", "DseJobManager"]

_GOLDEN = "golden"
_LIBRARIES = ("default", "extended")
DEFAULT_MAX_CONFIGS = 4096
HARD_MAX_CONFIGS = 50_000
DEFAULT_CHUNK = 25


class DseError(Exception):
    """A DSE request the gateway refuses, with the HTTP status to answer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _known_methods() -> list[str]:
    import repro.api as api

    return [_GOLDEN, *api.method_names()]


def normalize_spec(spec: dict) -> dict:
    """Validate and fill in a submitted spec (cheap; no flow work).

    Everything that can be rejected synchronously is rejected here with
    a :class:`DseError` 400, so a bad submission never spawns a thread:
    unknown base/workload/method/library names, malformed axes, and
    grids larger than the (possibly raised) ``max_configs`` bound.
    """
    if not isinstance(spec, dict):
        raise DseError(400, "DSE spec must be a JSON object")
    axes = spec.get("axes")
    if not isinstance(axes, dict) or not axes:
        raise DseError(
            400, "DSE spec needs a non-empty 'axes' object "
            "(raw Table II row -> list of values)"
        )
    base = spec.get("base", "C8")
    try:
        base_config = (
            base if isinstance(base, BoomConfig) else config_by_name(base)
        )
    except KeyError as exc:
        raise DseError(400, str(exc.args[0] if exc.args else exc)) from None
    workload_names = spec.get("workloads")
    if workload_names is None:
        workload_list: list[Workload] = list(WORKLOADS)
    else:
        try:
            workload_list = [
                w if isinstance(w, Workload) else workload_by_name(w)
                for w in workload_names
            ]
        except KeyError as exc:
            raise DseError(
                400, str(exc.args[0] if exc.args else exc)
            ) from None
        if not workload_list:
            raise DseError(400, "'workloads' must not be empty")
    method = spec.get("method", _GOLDEN)
    if method not in _known_methods():
        raise DseError(
            400,
            f"unknown method {method!r}; expected one of {_known_methods()}",
        )
    train = spec.get("train", ["C1", "C15"])
    try:
        train_configs = [
            c if isinstance(c, BoomConfig) else config_by_name(c)
            for c in train
        ]
    except KeyError as exc:
        raise DseError(400, str(exc.args[0] if exc.args else exc)) from None
    if method != _GOLDEN and not train_configs:
        raise DseError(400, "model methods need at least one train config")
    library = spec.get("library", "default")
    if library not in _LIBRARIES:
        raise DseError(
            400, f"unknown library {library!r}; expected one of {_LIBRARIES}"
        )
    max_configs = spec.get("max_configs", DEFAULT_MAX_CONFIGS)
    if (
        not isinstance(max_configs, int)
        or isinstance(max_configs, bool)
        or not 1 <= max_configs <= HARD_MAX_CONFIGS
    ):
        raise DseError(
            400, f"'max_configs' must be an int in [1, {HARD_MAX_CONFIGS}]"
        )
    chunk = spec.get("chunk", DEFAULT_CHUNK)
    if not isinstance(chunk, int) or isinstance(chunk, bool) or chunk < 1:
        raise DseError(400, "'chunk' must be a positive int")
    jobs = spec.get("jobs")
    if jobs is not None and (not isinstance(jobs, int) or isinstance(jobs, bool)):
        raise DseError(400, "'jobs' must be an int or omitted")
    normalized_axes: dict[str, list[int]] = {}
    for row, values in axes.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise DseError(400, f"axis {row!r} needs a non-empty value list")
        cleaned = []
        for value in values:
            if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
                raise DseError(400, f"axis {row!r} values must be positive ints")
            cleaned.append(value)
        normalized_axes[str(row)] = cleaned
    try:
        generate_grid(base_config, {k: [1] for k in normalized_axes}, None)
    except ValueError as exc:  # unknown axis rows
        raise DseError(400, str(exc)) from None
    size = grid_size(normalized_axes)
    if size > max_configs:
        raise DseError(
            400,
            f"grid spans {size} points, more than the {max_configs} allowed; "
            "shrink an axis or raise 'max_configs'",
        )
    return {
        "base": base_config,
        "axes": normalized_axes,
        "workloads": workload_list,
        "method": method,
        "train": train_configs,
        "library": library,
        "max_configs": max_configs,
        "chunk": chunk,
        "jobs": jobs,
    }


def _build_flow(library: str):
    from repro.library.stdcell import default_library, extended_library
    from repro.vlsi.flow import VlsiFlow

    lib = default_library() if library == "default" else extended_library()
    return VlsiFlow(library=lib)


class DseJob:
    """One submitted sweep: spec, progress, and (eventually) ranked results."""

    def __init__(self, job_id: str, spec: dict) -> None:
        self.id = job_id
        self.spec = spec
        # -> running -> done | failed | cancelled
        self.state = "pending"  # guarded-by: _lock
        self.error: str | None = None  # guarded-by: _lock
        self.results: list[dict] | None = None  # guarded-by: _lock
        self.submitted_unix = time.time()
        self.started_monotonic: float | None = None  # guarded-by: _lock
        self.runtime_s: float | None = None  # guarded-by: _lock
        self._lock = threading.Lock()
        self._cancel = threading.Event()
        self.thread: threading.Thread | None = None
        self._progress = {
            "grid_points": grid_size(spec["axes"]),
            "configs": None,  # valid configs, known once the grid builds
            "dropped": None,
            "pairs_total": None,
            "pairs_done": 0,
        }
        self._flow_stats: dict | None = None

    # -- worker-thread side ---------------------------------------------
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def _update(self, **fields: Any) -> None:
        with self._lock:
            self._progress.update(fields)

    def _record_flow(self, flow) -> None:
        with self._lock:
            self._flow_stats = {
                "executions": flow.executions,
                "cache": (
                    flow.disk_cache.stats.snapshot()
                    if flow.disk_cache is not None
                    else None
                ),
            }

    def _finish(self, state: str, error: str | None = None) -> None:
        with self._lock:
            self.state = state
            self.error = error
            if self.started_monotonic is not None:
                self.runtime_s = time.monotonic() - self.started_monotonic

    def run(self) -> None:
        """The job body (runs on the manager's daemon thread)."""
        with self._lock:
            self.started_monotonic = time.monotonic()
            self.state = "running"
        try:
            flow = _build_flow(self.spec["library"])
            configs, dropped = generate_grid(
                self.spec["base"], self.spec["axes"], self.spec["max_configs"]
            )
            workloads = self.spec["workloads"]
            self._update(
                configs=len(configs),
                dropped=dropped,
                pairs_total=len(configs) * len(workloads),
            )
            if not configs:
                self._finish("failed", "no valid configurations in the grid")
                return
            if self.spec["method"] == _GOLDEN:
                ranked = self._run_golden(flow, configs, workloads)
            else:
                ranked = self._run_model(flow, configs, workloads)
            self._record_flow(flow)
            if ranked is None:  # cancelled mid-sweep
                self._finish("cancelled")
                return
            with self._lock:
                self.results = ranked
            self._finish("done")
        except Exception as exc:  # surfaced via GET /dse/<id>
            self._finish("failed", f"{type(exc).__name__}: {exc}")

    def _run_golden(self, flow, configs, workloads) -> list[dict] | None:
        # One executor for the whole sweep: pooled backends keep their
        # workers alive across chunks, so chunking costs progress
        # granularity, not pool spin-ups.
        with get_executor(self.spec["jobs"]) as executor:
            chunk = self.spec["chunk"]
            for start in range(0, len(configs), chunk):
                if self.cancelled():
                    return None
                batch = configs[start : start + chunk]
                flow.run_many(batch, workloads, executor=executor)
                self._update(
                    pairs_done=min(
                        (start + len(batch)) * len(workloads),
                        len(configs) * len(workloads),
                    )
                )
                self._record_flow(flow)
        return self._rank(
            configs,
            workloads,
            "golden",
            lambda c, w: flow.run(c, w).power.total,
        )

    def _run_model(self, flow, configs, workloads) -> list[dict] | None:
        import repro.api as api

        model = api.fit(
            self.spec["method"],
            flow=flow,
            train_configs=self.spec["train"],
            workloads=workloads,
            n_jobs=self.spec["jobs"],
        )
        self._record_flow(flow)
        service = api.PredictionService(model)
        totals: dict[tuple[str, str], float] = {}
        chunk = self.spec["chunk"]
        for start in range(0, len(configs), chunk):
            if self.cancelled():
                return None
            batch = configs[start : start + chunk]
            requests = [
                api.PredictRequest(
                    config=c, events=flow.perf.run(c, w), workload=w
                )
                for c in batch
                for w in workloads
            ]
            for request, response in zip(requests, service.stream(requests)):
                totals[(request.config.name, request.workload.name)] = (
                    response.total
                )
            self._update(
                pairs_done=min(
                    (start + len(batch)) * len(workloads),
                    len(configs) * len(workloads),
                )
            )
        return self._rank(
            configs, workloads, "predicted", lambda c, w: totals[(c.name, w.name)]
        )

    def _rank(self, configs, workloads, kind, total_of) -> list[dict]:
        axis_rows = list(self.spec["axes"])
        entries = []
        for config in configs:
            per_workload = {w.name: float(total_of(config, w)) for w in workloads}
            raw = raw_rows_of(config)
            entries.append(
                {
                    "config": config.name,
                    "point": {row: raw[row] for row in axis_rows},
                    "params": raw,
                    "kind": kind,
                    "mean_total_mw": sum(per_workload.values())
                    / len(per_workload),
                    "per_workload": per_workload,
                }
            )
        entries.sort(key=lambda e: e["mean_total_mw"])
        for rank, entry in enumerate(entries, start=1):
            entry["rank"] = rank
        return entries

    # -- gateway-facing side --------------------------------------------
    def cancel(self) -> None:
        self._cancel.set()

    def snapshot(self) -> dict:
        with self._lock:
            progress = dict(self._progress)
            flow_stats = dict(self._flow_stats) if self._flow_stats else None
            state, error = self.state, self.error
            runtime = self.runtime_s
        if runtime is None and self.started_monotonic is not None:
            runtime = time.monotonic() - self.started_monotonic
        total = progress.get("pairs_total")
        done = progress.get("pairs_done", 0)
        progress["percent"] = (
            round(100.0 * done / total, 2) if total else None
        )
        return {
            "id": self.id,
            "state": state,
            "method": self.spec["method"],
            "library": self.spec["library"],
            "base": self.spec["base"].name,
            "workloads": [w.name for w in self.spec["workloads"]],
            "axes": self.spec["axes"],
            "submitted_unix": self.submitted_unix,
            "runtime_s": runtime,
            "progress": progress,
            "flow": flow_stats,
            "error": error,
        }

    def results_payload(self, top: int | None = None) -> dict:
        with self._lock:
            state, results = self.state, self.results
        if state != "done" or results is None:
            raise DseError(
                409,
                f"job {self.id} is {state}; results are available once it "
                "is done",
            )
        ranked = results if top is None else results[: max(0, top)]
        return {
            "id": self.id,
            "state": state,
            "method": self.spec["method"],
            "library": self.spec["library"],
            "configs": len(results),
            "returned": len(ranked),
            "ranked": ranked,
        }


class DseJobManager:
    """Submit, track, cancel and reap DSE jobs (thread-safe).

    ``max_finished`` bounds retention: once more than that many jobs
    have finished, the oldest finished jobs are forgotten (running jobs
    are never evicted).  ``max_running`` sheds submissions with 429
    while that many sweeps are already in flight — a DSE sweep is many
    flow runs, and an unbounded thread pile-up would starve serving.
    """

    def __init__(self, max_finished: int = 64, max_running: int = 4) -> None:
        self.max_finished = max_finished
        self.max_running = max_running
        self._jobs: dict[str, DseJob] = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        self._counter = 0  # guarded-by: _lock
        self.submitted = 0  # guarded-by: _lock

    def submit(self, spec: dict) -> DseJob:
        normalized = normalize_spec(spec)
        with self._lock:
            running = [
                j for j in self._jobs.values()
                if j.state in ("pending", "running")
            ]
            if len(running) >= self.max_running:
                raise DseError(
                    429,
                    f"{len(running)} DSE jobs already running "
                    f"(limit {self.max_running}); retry after one finishes",
                )
            self._counter += 1
            self.submitted += 1
            job = DseJob(f"dse-{self._counter}", normalized)
            self._jobs[job.id] = job
            self._reap_locked()
        job.thread = threading.Thread(
            target=job.run, name=f"repro-{job.id}", daemon=True
        )
        job.thread.start()
        return job

    def _reap_locked(self) -> None:
        finished = [
            j
            for j in self._jobs.values()
            if j.state in ("done", "failed", "cancelled")
        ]
        overflow = len(finished) - self.max_finished
        for job in finished[:max(0, overflow)]:
            del self._jobs[job.id]

    def get(self, job_id: str) -> DseJob:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise DseError(404, f"no DSE job {job_id!r}")
        return job

    def cancel(self, job_id: str) -> dict:
        job = self.get(job_id)
        job.cancel()
        return {"id": job.id, "state": job.state, "cancel_requested": True}

    def list_payload(self) -> dict:
        with self._lock:
            jobs = list(self._jobs.values())
        return {"jobs": [job.snapshot() for job in jobs]}

    def snapshot(self) -> dict:
        """The ``/stats`` DSE block: job counts by state."""
        with self._lock:
            jobs = list(self._jobs.values())
        counts: dict[str, int] = {}
        for job in jobs:
            counts[job.state] = counts.get(job.state, 0) + 1
        return {
            "submitted": self.submitted,
            "tracked": len(jobs),
            "by_state": counts,
        }

    def stop(self, timeout: float = 10.0) -> None:
        """Cancel every running job and wait (bounded) for the threads."""
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            job.cancel()
        deadline = time.monotonic() + timeout
        for job in jobs:
            thread = job.thread
            if thread is not None and thread.is_alive():
                thread.join(timeout=max(0.0, deadline - time.monotonic()))
