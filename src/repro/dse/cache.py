"""On-disk content-addressed cache for flow results.

:class:`~repro.vlsi.flow.VlsiFlow` caches only in-process; every sweep,
CLI run, and serve worker used to re-run the synthetic EDA flow from
scratch.  :class:`FlowDiskCache` keys every flow result by a canonical
content hash of (flow version, technology library, simulator state,
configuration, workload) and stores it in a directory shared across
processes and runs.

Design points:

* **Canonical hashing.**  Keys come from :func:`content_key`, a
  deterministic encoder over plain values, dataclasses and simple
  objects — floats via ``repr`` (shortest round-tripping form), dicts
  and sets in sorted order — so the same inputs hash identically in
  every process regardless of ``PYTHONHASHSEED``.  Raw ``pickle`` bytes
  are *not* used for keys (set/dict iteration order is not canonical).
* **Atomic, cross-process-safe writes.**  Each entry is written to a
  temp file in the target directory and published with ``os.replace``;
  readers never observe a partial entry and concurrent writers of the
  same key are idempotent (last writer wins with identical bytes).
* **Versioned envelopes.**  Entries carry ``FLOW_CACHE_VERSION`` and
  their own key; a version bump, a key mismatch (hash collision /
  renamed file) or any unpickling failure is treated as a miss, never
  an error.
* **LRU / size-bounded eviction.**  The store is bounded by
  ``REPRO_FLOW_CACHE_MAX_MB`` (default 512); when a write pushes the
  total over the bound, the least-recently-used entries (by mtime —
  reads touch their entry) are evicted.
* **Counters.** ``hits`` / ``misses`` / ``stores`` / ``evictions`` /
  ``errors`` per cache handle, surfaced through ``/stats`` DSE blocks
  and ``python -m repro cache stats``.

Environment knobs:

* ``REPRO_FLOW_CACHE_DIR`` — cache root (default
  ``~/.cache/repro/flow-cache``),
* ``REPRO_NO_FLOW_CACHE=1`` — escape hatch: :func:`default_flow_cache`
  returns ``None`` and flows run fully in-process,
* ``REPRO_FLOW_CACHE_MAX_MB`` — size bound in MiB (default 512).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import threading

from repro.env import get_bool, get_float, get_path

__all__ = [
    "FLOW_CACHE_VERSION",
    "CacheStats",
    "FlowDiskCache",
    "cache_enabled",
    "canonical_bytes",
    "content_key",
    "default_flow_cache",
    "flow_cache_root",
]

# Bump when the canonical encoding, the envelope layout, or the meaning
# of cached flow results changes — old entries then read as misses.
FLOW_CACHE_VERSION = 1

_SUFFIX = ".pkl"


# ---------------------------------------------------------------------------
# Canonical hashing
# ---------------------------------------------------------------------------
def _encode(obj: object, out: list[bytes]) -> None:
    if obj is None:
        out.append(b"N;")
    elif obj is True:
        out.append(b"T;")
    elif obj is False:
        out.append(b"F;")
    elif isinstance(obj, int):
        out.append(b"i" + str(obj).encode("ascii") + b";")
    elif isinstance(obj, float):
        # repr is the shortest round-tripping form: identical across
        # processes and identical to the float json puts on the wire.
        out.append(b"f" + repr(obj).encode("ascii") + b";")
    elif isinstance(obj, str):
        raw = obj.encode()
        out.append(b"s" + str(len(raw)).encode("ascii") + b":" + raw)
    elif isinstance(obj, bytes):
        out.append(b"b" + str(len(obj)).encode("ascii") + b":" + obj)
    elif isinstance(obj, (tuple, list)):
        out.append(b"(")
        for item in obj:
            _encode(item, out)
        out.append(b")")
    elif isinstance(obj, dict):
        # Sort by the keys' canonical encodings, not their hash order.
        out.append(b"{")
        for key_bytes, value in sorted(
            (canonical_bytes(k), v) for k, v in obj.items()
        ):
            out.append(key_bytes)
            _encode(value, out)
        out.append(b"}")
    elif isinstance(obj, (set, frozenset)):
        out.append(b"<")
        out.extend(sorted(canonical_bytes(item) for item in obj))
        out.append(b">")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out.append(b"D" + type(obj).__qualname__.encode() + b"{")
        for field in dataclasses.fields(obj):
            _encode(field.name, out)
            _encode(getattr(obj, field.name), out)
        out.append(b"}")
    elif hasattr(obj, "__dict__"):
        # Plain objects (simulators, the SRAM compiler): type identity
        # plus every instance attribute, in sorted attribute order.
        out.append(b"O" + type(obj).__qualname__.encode() + b"{")
        for name in sorted(vars(obj)):
            _encode(name, out)
            _encode(vars(obj)[name], out)
        out.append(b"}")
    else:
        raise TypeError(
            f"cannot canonically encode {type(obj).__qualname__} for a "
            "flow-cache key"
        )


def canonical_bytes(obj: object) -> bytes:
    """Deterministic byte encoding of ``obj`` (see module docstring)."""
    out: list[bytes] = []
    _encode(obj, out)
    return b"".join(out)


def content_key(*parts: object) -> str:
    """SHA-256 hex digest of the canonical encoding of ``parts``."""
    return hashlib.sha256(canonical_bytes(tuple(parts))).hexdigest()


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------
def cache_enabled() -> bool:
    """Whether the disk cache is on (``REPRO_NO_FLOW_CACHE`` unset)."""
    return not get_bool("REPRO_NO_FLOW_CACHE")


def flow_cache_root() -> str:
    """The configured cache root directory (may not exist yet)."""
    default = os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "flow-cache"
    )
    return get_path("REPRO_FLOW_CACHE_DIR", default=default)


def _max_bytes_from_env() -> int:
    mb = get_float("REPRO_FLOW_CACHE_MAX_MB")
    return max(0, int(mb * 1024 * 1024))


def default_flow_cache() -> FlowDiskCache | None:
    """The cache a fresh :class:`~repro.vlsi.flow.VlsiFlow` adopts.

    ``None`` with ``REPRO_NO_FLOW_CACHE=1`` — the escape hatch that
    keeps flows fully in-process.  Each call returns a fresh handle
    (cheap: no I/O until the first get/put) so per-flow counters stay
    attributable; all handles share the same on-disk store.
    """
    if not cache_enabled():
        return None
    return FlowDiskCache()


class CacheStats:
    """Hit/miss/store/evict/error counters of one cache handle."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.errors = 0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "errors": self.errors,
        }


class FlowDiskCache:
    """Content-addressed pickle store with atomic writes and LRU eviction.

    Entries live at ``<root>/<key[:2]>/<key>.pkl`` (two-level fan-out
    keeps directories small).  The handle is picklable — worker
    processes of :meth:`~repro.vlsi.flow.VlsiFlow.run_many` receive a
    copy pointing at the same directory, so results computed in workers
    are immediately visible to every later run on the machine.
    """

    def __init__(
        self, root: str | None = None, max_bytes: int | None = None
    ) -> None:
        self.root = os.path.abspath(root) if root else flow_cache_root()
        self.max_bytes = (
            int(max_bytes) if max_bytes is not None else _max_bytes_from_env()
        )
        self.stats = CacheStats()  # guarded-by: _lock
        self._lock = threading.Lock()
        # Lazily scanned on first put.
        self._approx_bytes: int | None = None  # guarded-by: _lock

    # Pickle support: the lock is per-process; counters travel (they are
    # merged nowhere, so a worker copy simply counts its own traffic).
    def __getstate__(self) -> dict:
        return {"root": self.root, "max_bytes": self.max_bytes}

    def __setstate__(self, state: dict) -> None:
        self.root = state["root"]
        self.max_bytes = state["max_bytes"]
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._approx_bytes = None

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + _SUFFIX)

    def get(self, key: str) -> object | None:
        """The cached payload for ``key``, or ``None`` on a miss.

        A corrupt, truncated, version-skewed or mis-keyed entry counts
        as a miss (plus the ``errors`` counter when the file existed but
        could not be used) — the caller recomputes and overwrites it.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return None
        except Exception:  # corrupt / truncated / unpicklable entry
            with self._lock:
                self.stats.misses += 1
                self.stats.errors += 1
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("version") != FLOW_CACHE_VERSION
            or envelope.get("key") != key
            or "payload" not in envelope
        ):
            with self._lock:
                self.stats.misses += 1
                self.stats.errors += 1
            return None
        try:  # LRU touch: reads refresh the entry's eviction age
            os.utime(path)
        except OSError:
            pass
        with self._lock:
            self.stats.hits += 1
        return envelope["payload"]

    def put(self, key: str, payload: object) -> None:
        """Store ``payload`` under ``key`` atomically (temp + rename)."""
        envelope = {
            "version": FLOW_CACHE_VERSION,
            "key": key,
            "payload": payload,
        }
        blob = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        path = self.path_for(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix=".tmp-", suffix=_SUFFIX, dir=directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_path, path)  # atomic publish
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        with self._lock:
            self.stats.stores += 1
            if self._approx_bytes is not None:
                self._approx_bytes += len(blob)
        self._maybe_evict()

    # ------------------------------------------------------------------
    def _entries(self) -> list[tuple[float, int, str]]:
        """Every entry as (mtime, size, path), oldest first."""
        found: list[tuple[float, int, str]] = []
        try:
            shards = os.scandir(self.root)
        except FileNotFoundError:
            return found
        with shards:
            for shard in shards:
                if not shard.is_dir():
                    continue
                try:
                    files = os.scandir(shard.path)
                except FileNotFoundError:
                    continue  # concurrent clear
                with files:
                    for entry in files:
                        if not entry.name.endswith(_SUFFIX):
                            continue
                        try:
                            stat = entry.stat()
                        except FileNotFoundError:
                            continue  # concurrent eviction
                        found.append(
                            (stat.st_mtime, stat.st_size, entry.path)
                        )
        found.sort()
        return found

    def _maybe_evict(self) -> None:
        if self.max_bytes <= 0:
            return
        with self._lock:
            if self._approx_bytes is None:
                self._approx_bytes = sum(s for _, s, _ in self._entries())
            if self._approx_bytes <= self.max_bytes:
                return
            # Over budget: rescan (cross-process writers drift the
            # estimate) and drop least-recently-used entries.
            entries = self._entries()
            total = sum(s for _, s, _ in entries)
            for _mtime, size, path in entries:
                if total <= self.max_bytes:
                    break
                try:
                    os.unlink(path)
                except OSError:
                    continue  # another process got there first
                total -= size
                self.stats.evictions += 1
            self._approx_bytes = total

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for _mtime, _size, path in self._entries():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        with self._lock:
            self._approx_bytes = 0
        return removed

    def entry_count(self) -> int:
        return len(self._entries())

    def size_bytes(self) -> int:
        return sum(size for _mtime, size, _path in self._entries())

    def snapshot(self) -> dict:
        """Counters plus configuration (no directory scan)."""
        with self._lock:
            counters = self.stats.snapshot()
        return {
            "root": self.root,
            "max_bytes": self.max_bytes,
            "enabled": cache_enabled(),
            **counters,
        }
