"""Parameter-grid generation over the raw Table II rows.

A DSE grid is the cross product of *axes*: raw Table II row names
(``RobEntry``, ``DCache/ICacheWay``, ...) each mapped to a list of
candidate values.  Every grid point starts from a base configuration's
raw rows, overrides the axis rows, expands to the canonical 18-parameter
set (:func:`repro.arch.params.expand_raw_parameters`) and becomes a
:class:`~repro.arch.config.BoomConfig` named ``dse-<hash12>`` — a pure
content hash of its parameters, so the same point gets the same name in
every process and run (which is what makes grid sweeps disk-cacheable).

Validity is gated by the ground-truth SRAM scaling laws: a point whose
position plans evaluate to a non-positive or (for exact laws)
non-integral block shape is dropped, not errored —
:func:`generate_grid` reports how many points survived.  With the
banked (``rounding="up"``) laws on the BTB and ROB positions most
positive parameter combinations are valid, so modest axes already reach
1000+ configurations.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping

from repro.arch.config import BoomConfig, config_by_name
from repro.arch.params import (
    _RAW_EXPANSION,
    RAW_PARAMETER_ROWS,
    expand_raw_parameters,
)
from repro.dse.cache import content_key
from repro.rtl.sram_plan import plan_violations

__all__ = ["generate_grid", "grid_size", "raw_rows_of"]


def raw_rows_of(config: BoomConfig) -> dict[str, int]:
    """Reconstruct a configuration's 14 raw Table II rows.

    Every raw row expands to parameters sharing its value, so reading
    the first expanded parameter back recovers the row exactly.
    """
    return {
        row: config[_RAW_EXPANSION[row][0]] for row in RAW_PARAMETER_ROWS
    }


def grid_size(axes: Mapping[str, Iterable[int]]) -> int:
    """How many points the cross product of ``axes`` spans."""
    size = 1
    for values in axes.values():
        size *= len(list(values))
    return size


def _point_name(params: Mapping[str, int]) -> str:
    return "dse-" + content_key(dict(params))[:12]


def generate_grid(
    base: BoomConfig | str,
    axes: Mapping[str, Iterable[int]],
    max_configs: int | None = None,
) -> tuple[list[BoomConfig], int]:
    """Materialize the valid configurations of a parameter grid.

    Returns ``(configs, dropped)`` where ``dropped`` counts grid points
    that violated a scaling law (non-positive / non-integral block
    shape).  Point order is deterministic: the cross product iterates
    the axes in the given order, last axis fastest.  Duplicate points
    (axes that repeat a value) collapse onto one config by content hash.

    Raises ``KeyError`` for an unknown base-config name, ``ValueError``
    for unknown axis rows, empty/non-positive axis values, or a grid
    larger than ``max_configs`` points.
    """
    if isinstance(base, str):
        base = config_by_name(base)
    axes = {row: [int(v) for v in values] for row, values in axes.items()}
    unknown = set(axes) - set(RAW_PARAMETER_ROWS)
    if unknown:
        raise ValueError(
            f"unknown parameter rows {sorted(unknown)}; axes must use raw "
            f"Table II row names {list(RAW_PARAMETER_ROWS)}"
        )
    if not axes:
        raise ValueError("a DSE grid needs at least one axis")
    for row, values in axes.items():
        if not values:
            raise ValueError(f"axis {row!r} has no values")
        if any(v <= 0 for v in values):
            raise ValueError(f"axis {row!r} values must be positive")
    size = grid_size(axes)
    if max_configs is not None and size > max_configs:
        raise ValueError(
            f"grid spans {size} points, more than the {max_configs} allowed; "
            "shrink an axis or raise max_configs"
        )

    base_rows = raw_rows_of(base)
    rows = list(axes)
    configs: list[BoomConfig] = []
    seen: set[str] = set()
    dropped = 0
    for point in itertools.product(*(axes[row] for row in rows)):
        raw = dict(base_rows)
        raw.update(zip(rows, point))
        params = expand_raw_parameters(raw)
        name = _point_name(params)
        if name in seen:
            continue
        config = BoomConfig(name=name, params=params)
        if plan_violations(config):
            dropped += 1
            continue
        seen.add(name)
        configs.append(config)
    return configs, dropped
