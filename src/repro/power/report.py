"""Power report data structures."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ComponentPower", "PowerReport", "POWER_GROUPS"]

# Canonical power-group names used across the repository.
POWER_GROUPS: tuple[str, ...] = ("clock", "sram", "register", "comb")


@dataclass(frozen=True)
class ComponentPower:
    """Per-group power of one component, in mW."""

    name: str
    clock: float
    sram: float
    register: float
    comb: float

    def __post_init__(self) -> None:
        for group in POWER_GROUPS:
            if getattr(self, group) < 0:
                raise ValueError(f"{self.name}: negative {group} power")

    @property
    def logic(self) -> float:
        """The paper's logic group: register (non-clock) + combinational."""
        return self.register + self.comb

    @property
    def total(self) -> float:
        return self.clock + self.sram + self.register + self.comb

    def group(self, name: str) -> float:
        if name == "logic":
            return self.logic
        if name == "total":
            return self.total
        if name not in POWER_GROUPS:
            raise KeyError(f"unknown power group {name!r}")
        return float(getattr(self, name))


@dataclass(frozen=True)
class PowerReport:
    """Golden (or predicted) power of a full design under one workload."""

    config_name: str
    workload_name: str
    components: tuple[ComponentPower, ...]

    def component(self, name: str) -> ComponentPower:
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(f"report has no component {name!r}")

    def group_total(self, group: str) -> float:
        return sum(c.group(group) for c in self.components)

    @property
    def total(self) -> float:
        return sum(c.total for c in self.components)

    def breakdown(self) -> dict[str, float]:
        """Fraction of total power per group (the paper's Observation 1)."""
        total = self.total
        if total <= 0:
            raise ValueError("cannot compute a breakdown of zero total power")
        return {group: self.group_total(group) / total for group in POWER_GROUPS}

    def as_rows(self) -> list[tuple[str, float, float, float, float, float]]:
        """(component, clock, sram, register, comb, total) rows in mW."""
        return [
            (c.name, c.clock, c.sram, c.register, c.comb, c.total)
            for c in self.components
        ]
