"""Golden power computation (the PrimePower stage of the flow).

Power model per group (all energies from the technology library; at the
library's 1 GHz clock, pJ-per-cycle values are numerically mW):

* clock: ungated register clock pins toggle every cycle; gated pins follow
  the component's true active rate; ICG latch pins toggle every cycle;
  the clock-tree buffer term is partially gated.  ICG leakage is billed to
  the clock group.
* sram: per block, an access activates one row of macros; write energy is
  already mask-weighted in the activity labels.  Macro leakage and the
  address/data pin-toggle constant are static adders.
* register (logic group): data-output toggling plus register leakage.
* comb (logic group): per cell-class switching plus leakage.
"""

from __future__ import annotations

from repro.library.stdcell import TechLibrary
from repro.power.report import ComponentPower, PowerReport
from repro.sim.activity import ComponentActivity, DesignActivity
from repro.synthesis.netlist import ComponentNetlist, Netlist
from repro.vlsi.macro_mapping import MacroMapper

__all__ = ["PowerAnalyzer"]


class PowerAnalyzer:
    """Netlist + golden activity + library -> golden power report."""

    def __init__(self, library: TechLibrary, mapper: MacroMapper | None = None) -> None:
        self.library = library
        self.mapper = mapper if mapper is not None else MacroMapper(library.sram)

    # ------------------------------------------------------------------
    def analyze(self, netlist: Netlist, activity: DesignActivity) -> PowerReport:
        """Compute the golden power report for one (config, workload) run."""
        components = []
        for comp in netlist.components:
            act = activity.component(comp.name)
            components.append(
                ComponentPower(
                    name=comp.name,
                    clock=self._clock_power(comp, act),
                    sram=self._sram_power(comp, act),
                    register=self._register_power(comp, act),
                    comb=self._comb_power(comp, act),
                )
            )
        return PowerReport(
            config_name=netlist.config_name,
            workload_name=activity.workload_name,
            components=tuple(components),
        )

    # ------------------------------------------------------------------
    def _clock_power(self, comp: ComponentNetlist, act: ComponentActivity) -> float:
        lib = self.library
        ungated = comp.registers - comp.gated_registers
        alpha = act.gated_active_rate
        pin = (ungated + alpha * comp.gated_registers) * lib.p_reg_mw
        icg = comp.gating_cells * lib.p_latch_mw
        # Clock tree: the always-on trunk plus the gated leaf share that
        # follows the average clock-pin activity of the registers below it.
        if comp.registers > 0:
            active_share = (ungated + alpha * comp.gated_registers) / comp.registers
        else:
            active_share = 0.0
        tree_pj = comp.registers * lib.clock_tree_energy_per_reg_pj
        tree = lib.power_mw(tree_pj) * (
            (1.0 - lib.clock_tree_gated_share)
            + lib.clock_tree_gated_share * active_share
        )
        leakage = comp.gating_cells * lib.icg_leakage_mw
        return pin + icg + tree + leakage

    def _sram_power(self, comp: ComponentNetlist, act: ComponentActivity) -> float:
        return sum(
            self.position_power(comp, act, pos.name) for pos in comp.sram_positions
        )

    def position_power(
        self, comp: ComponentNetlist, act: ComponentActivity, position: str
    ) -> float:
        """Golden power of one SRAM position (all its blocks), in mW.

        Exposed because AutoPower calibrates its pin-toggle constant ``C``
        "based on the golden power of an SRAM Block collected from power
        simulation" (paper Eq. 10).
        """
        lib = self.library
        pos = next(p for p in comp.sram_positions if p.name == position)
        pos_act = act.positions[pos.name]
        mapping = self.mapper.map(pos.block.width, pos.block.depth)
        macro = mapping.macro
        dyn_pj_per_cycle = mapping.n_row * (
            pos_act.read_per_block_cycle * macro.read_energy_pj
            + pos_act.write_per_block_cycle * macro.write_energy_pj
        )
        dyn = lib.power_mw(dyn_pj_per_cycle)
        static = mapping.n_macros * (macro.leakage_mw + macro.pin_toggle_mw)
        return pos.block.count * (dyn + static)

    def _register_power(self, comp: ComponentNetlist, act: ComponentActivity) -> float:
        lib = self.library
        toggling = lib.power_mw(
            comp.registers * act.data_toggle_rate * lib.register_data_energy_pj
        )
        leakage = comp.registers * lib.register_leakage_mw
        return toggling + leakage

    def _comb_power(self, comp: ComponentNetlist, act: ComponentActivity) -> float:
        lib = self.library
        total = 0.0
        for cell_name, count in comp.comb_cells.items():
            spec = lib.comb_cell(cell_name)
            total += lib.power_mw(count * act.comb_switch_rate * spec.switch_energy_pj)
            total += count * spec.leakage_mw
        return total
