"""Golden time-based power traces.

Window-level golden power is the full pipeline evaluated at the window's
activity scale.  Because every stage is piecewise-linear in the scale
(rates scale linearly, clipping is piecewise-linear, power is linear in
rates), the trace is computed exactly via dense anchor evaluation + linear
interpolation instead of running the pipeline tens of thousands of times.
"""

from __future__ import annotations

import numpy as np

from repro.arch.config import BoomConfig
from repro.arch.workloads import Workload

__all__ = ["golden_trace_power", "power_scale_function"]


def power_scale_function(
    flow,
    config: BoomConfig,
    workload: Workload,
    scale_lo: float,
    scale_hi: float,
    n_anchors: int = 129,
    group: str = "total",
):
    """Return ``f(scales) -> power`` built from dense anchor evaluation.

    ``flow`` is a :class:`repro.vlsi.flow.VlsiFlow`.  ``group`` selects a
    power group (``"total"`` or any report group).
    """
    if n_anchors < 2:
        raise ValueError("need at least two anchors")
    if scale_hi <= scale_lo:
        raise ValueError("scale_hi must exceed scale_lo")
    anchors = np.linspace(scale_lo, scale_hi, n_anchors)
    powers = np.empty(n_anchors)
    for i, s in enumerate(anchors):
        report = flow.power_at_scale(config, workload, float(s))
        powers[i] = report.total if group == "total" else report.group_total(group)

    def evaluate(scales: np.ndarray) -> np.ndarray:
        scales = np.asarray(scales, dtype=float)
        if scales.min() < scale_lo - 1e-9 or scales.max() > scale_hi + 1e-9:
            raise ValueError("scales outside the anchored range")
        return np.interp(scales, anchors, powers)

    return evaluate


def golden_trace_power(
    flow,
    config: BoomConfig,
    workload: Workload,
    scales: np.ndarray,
    n_anchors: int = 129,
    group: str = "total",
) -> np.ndarray:
    """Golden per-window power (mW) for a window-scale sequence."""
    scales = np.asarray(scales, dtype=float)
    if scales.size == 0:
        raise ValueError("scales must be non-empty")
    fn = power_scale_function(
        flow,
        config,
        workload,
        scale_lo=float(scales.min()),
        scale_hi=float(scales.max()),
        n_anchors=n_anchors,
        group=group,
    )
    return fn(scales)
