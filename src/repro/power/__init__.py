"""Golden power analysis (stands in for Synopsys PrimePower).

Computes per-component, per-power-group golden power from the synthesized
netlist, the golden activity and the technology library.  Power groups
follow the paper's decomposition:

* ``clock`` — register clock pins (gated + ungated), ICG cells, clock tree,
* ``sram`` — macro read/write energy, pin toggling, macro leakage,
* ``register`` — register power excluding clock pins (data toggling),
* ``comb`` — combinational switching + leakage.

``logic`` in the paper is ``register + comb``; reports expose both views.
"""

from repro.power.analysis import PowerAnalyzer
from repro.power.report import ComponentPower, PowerReport
from repro.power.trace import golden_trace_power

__all__ = [
    "ComponentPower",
    "PowerAnalyzer",
    "PowerReport",
    "golden_trace_power",
]
