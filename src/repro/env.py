"""Central registry of every ``REPRO_*`` environment variable.

Before this module, ~10 knobs were read ad hoc across a dozen files —
each with its own parsing, defaults, and truthiness conventions, and no
single place to learn what a variable does.  Every ``REPRO_*`` read now
goes through this registry:

* each variable is *declared* once (name, type, default, docstring),
* typed accessors (:func:`get_bool`, :func:`get_float`, :func:`get_str`,
  :func:`get_path`) apply one consistent parsing convention,
* :func:`markdown_table` renders the authoritative reference table the
  README embeds,
* the ``ENV001`` lint rule (:mod:`repro.analysis`) rejects any direct
  ``os.environ``/``os.getenv`` read of a ``REPRO_*`` name outside this
  module, so the registry can never silently rot.

Parsing conventions (uniform across all variables):

* values are stripped; an unset or blank variable counts as *unset* and
  yields the declared default,
* booleans: ``1``/``true``/``yes``/``on`` (case-insensitive) are true,
  anything else is false,
* numbers: a malformed value falls back to the declared default rather
  than raising — a typo in an env var must not crash a serving worker,
* paths: ``~`` is expanded and the result made absolute.

Reads always hit the live process environment (no import-time caching),
so tests can ``monkeypatch.setenv`` freely.
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from dataclasses import dataclass

__all__ = [
    "EnvVar",
    "REGISTRY",
    "get_bool",
    "get_float",
    "get_path",
    "get_str",
    "is_set",
    "markdown_table",
]


@dataclass(frozen=True)
class EnvVar:
    """One declared environment variable."""

    name: str
    kind: str  # "bool" | "float" | "str" | "path"
    default: object
    doc: str


#: Every known ``REPRO_*`` variable, by name.
REGISTRY: dict[str, EnvVar] = {}

_TRUE_VALUES = frozenset({"1", "true", "yes", "on"})


def _declare(name: str, kind: str, default: object, doc: str) -> EnvVar:
    if name in REGISTRY:
        raise ValueError(f"environment variable {name!r} declared twice")
    var = EnvVar(name=name, kind=kind, default=default, doc=doc)
    REGISTRY[name] = var
    return var


# ---------------------------------------------------------------------------
# The registry (append new variables here; the README table regenerates
# from it via ``python -m repro env --markdown``).
# ---------------------------------------------------------------------------
REPRO_JOBS = _declare(
    "REPRO_JOBS",
    "str",
    None,
    "Default parallelism for flow runs and sub-model fits: a worker "
    "count (`4`), a backend (`thread`), or a `backend:count` pair "
    "(`thread:4`).  `0` or negative means all cores.  Overridden by "
    "`--jobs` and explicit `n_jobs` arguments; results are identical "
    "on every backend.",
)

REPRO_NO_KERNEL = _declare(
    "REPRO_NO_KERNEL",
    "bool",
    False,
    "Disable the compiled C fit kernel (`repro.ml._kernel`) and run "
    "the pure-numpy engine.  Results are byte-identical either way.",
)

REPRO_NO_FLOW_CACHE = _declare(
    "REPRO_NO_FLOW_CACHE",
    "bool",
    False,
    "Disable the persistent on-disk flow-result cache "
    "(`repro.dse.cache`); flows then run fully in-process.",
)

REPRO_FLOW_CACHE_DIR = _declare(
    "REPRO_FLOW_CACHE_DIR",
    "path",
    None,
    "Root directory of the flow-result cache "
    "(default: `~/.cache/repro/flow-cache`).",
)

REPRO_FLOW_CACHE_MAX_MB = _declare(
    "REPRO_FLOW_CACHE_MAX_MB",
    "float",
    512.0,
    "Size bound of the flow-result cache in MiB; least-recently-used "
    "entries are evicted beyond it.  `0` disables eviction.",
)

REPRO_CHAOS_DIR = _declare(
    "REPRO_CHAOS_DIR",
    "path",
    None,
    "Directory of armed process-chaos token files "
    "(`repro.serving.faults.ProcessChaos`).  Unset means chaos "
    "injection is off — the production default.",
)

REPRO_BENCH_JSON = _declare(
    "REPRO_BENCH_JSON",
    "path",
    None,
    "Where the benchmark suite writes its per-run JSON trajectory "
    "(equivalent to `pytest --bench-json PATH`).",
)


# ---------------------------------------------------------------------------
# Typed accessors
# ---------------------------------------------------------------------------
def _lookup(name: str) -> EnvVar:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown environment variable {name!r}; declare it in repro.env"
        ) from None


def raw(name: str, environ: Mapping[str, str] | None = None) -> str | None:
    """The stripped raw value of a declared variable, ``None`` when unset.

    A blank value counts as unset.  ``environ`` substitutes the process
    environment (the faults harness passes recorded dicts).
    """
    _lookup(name)
    source = os.environ if environ is None else environ
    value = source.get(name, "").strip()
    return value or None


def is_set(name: str, environ: Mapping[str, str] | None = None) -> bool:
    """Whether the variable has a non-blank value."""
    return raw(name, environ) is not None


def get_str(
    name: str,
    default: str | None = None,
    environ: Mapping[str, str] | None = None,
) -> str | None:
    """String value; ``default`` (or the declared default) when unset."""
    value = raw(name, environ)
    if value is None:
        declared = _lookup(name).default
        return default if default is not None else declared
    return value


def get_bool(name: str, environ: Mapping[str, str] | None = None) -> bool:
    """Boolean value: ``1``/``true``/``yes``/``on`` (case-insensitive)."""
    value = raw(name, environ)
    if value is None:
        return bool(_lookup(name).default)
    return value.lower() in _TRUE_VALUES


def get_float(
    name: str,
    default: float | None = None,
    environ: Mapping[str, str] | None = None,
) -> float | None:
    """Float value; malformed or unset values yield the default."""
    value = raw(name, environ)
    fallback = default if default is not None else _lookup(name).default
    if value is None:
        return fallback
    try:
        return float(value)
    except ValueError:
        return fallback


def get_path(
    name: str,
    default: str | None = None,
    environ: Mapping[str, str] | None = None,
) -> str | None:
    """Absolute, ``~``-expanded path; the default when unset."""
    value = raw(name, environ)
    if value is None:
        value = default if default is not None else _lookup(name).default
        if value is None:
            return None
    return os.path.abspath(os.path.expanduser(str(value)))


# ---------------------------------------------------------------------------
# Documentation
# ---------------------------------------------------------------------------
def markdown_table() -> str:
    """The README's env-var reference table, straight from the registry."""
    rows = [
        "| Variable | Type | Default | Purpose |",
        "| --- | --- | --- | --- |",
    ]
    for name in sorted(REGISTRY):
        var = REGISTRY[name]
        default = "unset" if var.default is None else f"`{var.default}`"
        rows.append(f"| `{var.name}` | {var.kind} | {default} | {var.doc} |")
    return "\n".join(rows)


def plain_table() -> str:
    """Terminal rendering of the registry (``python -m repro env``)."""
    lines = []
    for name in sorted(REGISTRY):
        var = REGISTRY[name]
        default = "unset" if var.default is None else repr(var.default)
        lines.append(f"{var.name}  ({var.kind}, default: {default})")
        lines.append(f"    {var.doc}")
    return "\n".join(lines)
