"""LOCK — checked ``# guarded-by:`` annotations for shared mutable state.

Comments like "protected by self._lock" rot silently; this rule makes
them machine-checked.  Annotate the attribute *where it is assigned in
``__init__``* (or ``__setstate__``)::

    class ServiceStats:
        ...

    class PredictionService:
        def __init__(self) -> None:
            self._stats_lock = threading.Lock()
            self.stats = ServiceStats()  # guarded-by: _stats_lock

From then on, ``LOCK001`` flags any mutation of ``self.stats`` (or a
field of it, ``self.stats.requests += 1``) in a method that is not
lexically inside ``with self._stats_lock:`` (or ``async with``).

Conventions honoured:

* methods named ``*_locked`` are caller-holds-the-lock by contract and
  are exempt (the project-wide naming convention, see
  ``dse/jobs.py``),
* ``__init__`` / ``__new__`` / ``__getstate__`` / ``__setstate__`` /
  ``__del__`` run before/after the object is shared and are exempt,
* the sentinel lock name ``loop`` means "confined to the asyncio event
  loop": mutations are legal only when the nearest enclosing function
  is ``async def`` (the single-threaded loop *is* the lock) — used for
  the gateway/batcher counters,
* ``LOCK002`` flags a ``guarded-by`` comment that is not attached to a
  ``self.<attr> = ...`` assignment (a typo'd or drifted annotation).

Scope: every file (the annotation opts a class in; un-annotated code is
untouched).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from repro.analysis.engine import FileContext, Finding, Rule, dotted_name, register

GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Lock name meaning "event-loop confined" rather than a real lock attr.
LOOP_SENTINEL = "loop"

_EXEMPT_METHODS = {"__init__", "__new__", "__getstate__", "__setstate__", "__del__"}


def _self_attr_path(node: ast.AST) -> str | None:
    """``"stats.requests"`` for ``self.stats.requests``; ``None`` otherwise.

    Subscripts are transparent: ``self._jobs[k]`` resolves to ``_jobs``
    so dict/list mutations on a guarded container are checked too.
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            return ".".join(reversed(parts)) if node.id == "self" and parts else None
        else:
            return None


def _mutation_targets(node: ast.stmt) -> list[ast.AST]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, ast.AugAssign):
        return [node.target]
    if isinstance(node, ast.AnnAssign) and node.value is not None:
        return [node.target]
    if isinstance(node, ast.Delete):
        return list(node.targets)
    return []


class _MethodWalker:
    """Walk one method body tracking held locks and function nesting."""

    def __init__(self, rule: Rule, ctx: FileContext, guards: dict[str, str]) -> None:
        self.rule = rule
        self.ctx = ctx
        self.guards = guards  # attr root -> lock name
        self.findings: list[Finding] = []

    def walk(self, method: ast.AST) -> list[Finding]:
        is_async = isinstance(method, ast.AsyncFunctionDef)
        for stmt in getattr(method, "body", []):
            self._walk_stmt(stmt, held=frozenset(), in_async=is_async)
        return self.findings

    def _walk_stmt(self, stmt: ast.stmt, held: frozenset, in_async: bool) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in stmt.items:
                name = dotted_name(item.context_expr)
                if name and name.startswith("self."):
                    acquired.add(name[len("self."):])
            new_held = held | acquired
            for inner in stmt.body:
                self._walk_stmt(inner, new_held, in_async)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: it may run later on another thread, so
            # held locks do not transfer; async-ness is its own.
            nested_async = isinstance(stmt, ast.AsyncFunctionDef)
            for inner in stmt.body:
                self._walk_stmt(inner, frozenset(), nested_async)
            return
        self._check_stmt(stmt, held, in_async)
        for inner in ast.iter_child_nodes(stmt):
            if isinstance(inner, ast.stmt):
                self._walk_stmt(inner, held, in_async)
            elif isinstance(inner, (ast.ExceptHandler, ast.match_case)):
                for deeper in inner.body:
                    self._walk_stmt(deeper, held, in_async)
            elif hasattr(inner, "body") and isinstance(
                getattr(inner, "body", None), list
            ):  # pragma: no cover - defensive
                for deeper in inner.body:
                    if isinstance(deeper, ast.stmt):
                        self._walk_stmt(deeper, held, in_async)

    def _check_stmt(self, stmt: ast.stmt, held: frozenset, in_async: bool) -> None:
        for target in _mutation_targets(stmt):
            path = _self_attr_path(target)
            if path is None:
                continue
            root = path.split(".", 1)[0]
            lock = self.guards.get(root)
            if lock is None:
                continue
            if lock == LOOP_SENTINEL:
                if in_async:
                    continue
                self.findings.append(
                    self.rule.finding(
                        self.ctx,
                        target,
                        f"'self.{path}' is event-loop confined (guarded-by: "
                        "loop) but is mutated outside an 'async def' — only "
                        "coroutines on the loop may touch it",
                    )
                )
            elif lock not in held:
                self.findings.append(
                    self.rule.finding(
                        self.ctx,
                        target,
                        f"'self.{path}' is guarded by 'self.{lock}' but is "
                        f"mutated outside 'with self.{lock}:' — take the "
                        "lock, or rename the method '*_locked' if the "
                        "caller holds it",
                    )
                )


@register
class GuardedMutationRule(Rule):
    id = "LOCK001"
    name = "guarded-mutation"
    description = (
        "attribute annotated '# guarded-by: <lock>' mutated outside "
        "'with self.<lock>:' (or outside async code for 'loop')"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            guards = _collect_guards(ctx, class_node)
            if not guards:
                continue
            for method in class_node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in _EXEMPT_METHODS or method.name.endswith("_locked"):
                    continue
                walker = _MethodWalker(self, ctx, guards)
                yield from walker.walk(method)


def _collect_guards(ctx: FileContext, class_node: ast.ClassDef) -> dict[str, str]:
    """``{attr: lock}`` from guarded-by comments on ``self.X = ...`` lines."""
    guards: dict[str, str] = {}
    for node in ast.walk(class_node):
        targets = _mutation_targets(node) if isinstance(node, ast.stmt) else []
        for target in targets:
            path = _self_attr_path(target)
            if path is None or "." in path:
                continue
            for line in range(node.lineno, (node.end_lineno or node.lineno) + 1):
                comment = ctx.comments.get(line)
                if not comment:
                    continue
                match = GUARDED_RE.search(comment)
                if match:
                    guards[path] = match.group(1)
    return guards


@register
class DanglingGuardRule(Rule):
    id = "LOCK002"
    name = "dangling-guard-annotation"
    description = (
        "'# guarded-by:' comment not attached to a 'self.<attr> = ...' "
        "assignment inside a class"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        bound_lines: set[int] = set()
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            for node in ast.walk(class_node):
                if not isinstance(node, ast.stmt):
                    continue
                for target in _mutation_targets(node):
                    path = _self_attr_path(target)
                    if path is None or "." in path:
                        continue
                    for line in range(
                        node.lineno, (node.end_lineno or node.lineno) + 1
                    ):
                        bound_lines.add(line)
        for line, comment in sorted(ctx.comments.items()):
            if GUARDED_RE.search(comment) and line not in bound_lines:
                yield Finding(
                    rule=self.id,
                    path=ctx.path,
                    line=line,
                    col=0,
                    message=(
                        "guarded-by annotation is not attached to a "
                        "'self.<attr> = ...' assignment — move it onto the "
                        "attribute's __init__ assignment line"
                    ),
                )
