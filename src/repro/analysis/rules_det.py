"""DET — determinism rules for the reproducibility-critical layers.

The repo's headline contract is byte-identical results: same seed, same
bytes, regardless of backend, worker count, or host (see
``tests/test_determinism.py`` and the flow cache's content-addressed
keys).  These rules guard the three ways that contract historically
breaks:

* ``DET001`` — an RNG without an explicit seed (``default_rng()``,
  ``random.Random()``) or any call into the *global* RNG state
  (``np.random.rand``, ``random.shuffle``): results then depend on
  process history.
* ``DET002`` — wall-clock reads (``time.time``, ``datetime.now``):
  timestamps leak into artifacts and keys.  ``time.monotonic`` /
  ``time.perf_counter`` stay legal — they measure duration, never
  escape into outputs.
* ``DET003`` — iterating a set (or ``frozenset``) into an ordered
  product (``list(set(...))``, a ``for`` over a set literal, a
  comprehension over a set): set order is salted per process, so the
  output ordering differs run to run.  Sort first (``sorted(set(x))``).

Scope: ``repro.ml``, ``repro.core``, ``repro.baselines``, and
``repro.dse.cache`` (the content-addressed key builder) — the layers
whose outputs are hashed, persisted, or compared byte-for-byte.
Serving-side telemetry legitimately wants wall-clock time, so
``repro.serving`` is deliberately out of scope.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.engine import FileContext, Finding, Rule, dotted_name, register

#: Module prefixes whose outputs must be byte-identical across runs.
DETERMINISTIC_PREFIXES = (
    "repro.ml",
    "repro.core",
    "repro.baselines",
    "repro.dse.cache",
)

# RNG factories that are deterministic *only* when given a seed.
_SEEDED_FACTORIES = {
    "np.random.default_rng",
    "numpy.random.default_rng",
    "np.random.RandomState",
    "numpy.random.RandomState",
    "np.random.Generator",
    "numpy.random.Generator",
    "random.Random",
}
# ``from numpy.random import default_rng`` style aliases.
_FACTORY_IMPORTS = {
    ("numpy.random", "default_rng"),
    ("numpy.random", "RandomState"),
    ("random", "Random"),
}
_SEED_KEYWORDS = {"seed", "random_state"}

# Calls into module-global RNG state: never legal in deterministic
# layers, seeded or not — global state is shared across the process.
_GLOBAL_STATE_CALLS = {
    f"{mod}.{fn}"
    for mod in ("np.random", "numpy.random")
    for fn in (
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "seed",
    )
} | {
    f"random.{fn}"
    for fn in (
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "seed",
        "betavariate",
        "expovariate",
    )
}

# Wall-clock reads; monotonic/perf_counter are fine (durations only).
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "time.strftime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
}

# Calls that materialize an iterable into an *ordered* product.
_ORDERING_CALLS = {"list", "tuple", "enumerate"}


def _is_set_expr(node: ast.AST, aliases: set[str]) -> bool:
    """Whether ``node`` syntactically produces a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in {"set", "frozenset"}:
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra (a | b, a - b) keeps set-ness if either side is one
        return _is_set_expr(node.left, aliases) or _is_set_expr(node.right, aliases)
    if isinstance(node, ast.Name) and node.id in aliases:
        return True
    return False


class _DetRule(Rule):
    def applies(self, ctx: FileContext) -> bool:
        return ctx.module_is(*DETERMINISTIC_PREFIXES)


@register
class UnseededRandomRule(_DetRule):
    id = "DET001"
    name = "unseeded-rng"
    description = (
        "RNG constructed without an explicit seed, or call into global "
        "RNG state, in a deterministic layer"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        # Resolve `from numpy.random import default_rng as X` aliases.
        local_factories: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if (node.module, alias.name) in _FACTORY_IMPORTS:
                        local = alias.asname or alias.name
                        local_factories[local] = f"{node.module}.{alias.name}"
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            canonical = local_factories.get(name, name)
            if canonical in _GLOBAL_STATE_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"call into global RNG state '{name}()' — construct a "
                    "seeded Generator (np.random.default_rng(seed)) and "
                    "thread it through instead",
                )
            elif name in _SEEDED_FACTORIES or canonical in _SEEDED_FACTORIES:
                seeded = bool(node.args) or any(
                    kw.arg in _SEED_KEYWORDS for kw in node.keywords
                )
                if not seeded:
                    yield self.finding(
                        ctx,
                        node,
                        f"'{name}()' without an explicit seed — pass the "
                        "seed (or random_state) so reruns are byte-identical",
                    )


@register
class WallClockRule(_DetRule):
    id = "DET002"
    name = "wall-clock"
    description = (
        "wall-clock read (time.time, datetime.now) in a deterministic "
        "layer; use time.monotonic for durations"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read '{name}()' in a deterministic layer — "
                    "timestamps make artifacts differ between identical "
                    "runs; use time.monotonic()/perf_counter() for "
                    "durations, or stamp at the reporting boundary",
                )


@register
class SetOrderingRule(_DetRule):
    id = "DET003"
    name = "set-iteration-order"
    description = (
        "set iterated into an ordered product (list(set(..)), for-loop "
        "or comprehension over a set); sort first"
    )

    _ADVICE = "set iteration order is salted per process — use sorted(...)"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        # Track names assigned directly from set expressions so
        # `s = set(x); for v in s:` is caught too (single-file, best
        # effort — reassignments to non-sets clear the alias).
        aliases: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if _is_set_expr(node.value, aliases):
                        aliases.add(target.id)
                    else:
                        aliases.discard(target.id)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter, aliases):
                yield self.finding(
                    ctx, node.iter, f"for-loop over a set: {self._ADVICE}"
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter, aliases):
                        yield self.finding(
                            ctx,
                            gen.iter,
                            f"comprehension over a set: {self._ADVICE}",
                        )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (
                    name in _ORDERING_CALLS
                    and node.args
                    and _is_set_expr(node.args[0], aliases)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"'{name}()' over a set: {self._ADVICE}",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and _is_set_expr(node.args[0], aliases)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"str.join over a set: {self._ADVICE}",
                    )
