"""Rule registry, per-file dispatch, and suppression handling.

The engine is deliberately small: one :func:`ast.parse` and one
:mod:`tokenize` pass per file produce a :class:`FileContext` (tree,
comment map, inferred module name); every registered :class:`Rule` that
:meth:`~Rule.applies` to the file runs over that context and yields
:class:`Finding`\\ s; the engine then applies ``# repro: noqa[RULE-ID]``
suppressions and reports any suppression that matched nothing (a stale
or typo'd noqa is itself a finding — ``SUP001`` — so suppressions can
never silently rot).

Suppression syntax, on the reported line::

    something_flagged()  # repro: noqa[DET001] -- why this is deliberate

Multiple ids separate with commas (``noqa[DET001,DET002]``).  The
justification text after the closing bracket is free-form but strongly
encouraged; the comment must live on the line the finding reports.

Files that fail to parse report a single ``PARSE001`` finding instead
of crashing the run, so one syntax error cannot hide every other file's
results.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import asdict, dataclass
from collections.abc import Iterable, Iterator

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "RULES",
    "register",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "module_for_path",
    "dotted_name",
    "PARSE_RULE_ID",
    "SUPPRESSION_RULE_ID",
]

PARSE_RULE_ID = "PARSE001"
SUPPRESSION_RULE_ID = "SUP001"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One reported violation, anchored to a file position."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        return asdict(self)


class Rule:
    """Base class for one lint rule.

    Subclasses set ``id`` / ``name`` / ``description`` (the README rule
    table renders from them), narrow :meth:`applies` to the files the
    invariant covers, and yield findings from :meth:`check`.
    """

    id: str = ""
    name: str = ""
    description: str = ""

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: Every registered rule, by id, in registration order.
RULES: dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return rule_cls


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_for_path(path: str) -> str | None:
    """Infer the ``repro.*`` module name from a file path.

    The last path component named ``repro`` is taken as the package
    root, so both the real tree (``src/repro/ml/gbm.py``) and test
    fixtures (``<tmp>/src/repro/ml/case.py``) resolve; files outside a
    ``repro`` tree (scripts, benchmarks) return ``None`` and module-
    scoped rules skip them.
    """
    parts = list(os.path.abspath(path).split(os.sep))
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("repro")
    names = parts[idx:]
    if not names[-1].endswith(".py"):
        return None
    names[-1] = names[-1][: -len(".py")]
    if names[-1] == "__init__":
        names.pop()
    return ".".join(names)


class FileContext:
    """Everything the rules need about one file, computed once."""

    def __init__(self, path: str, source: str, module: str | None = None) -> None:
        self.path = path
        self.source = source
        self.module = module if module is not None else module_for_path(path)
        self.tree = ast.parse(source, filename=path)
        #: ``{line: comment_text}`` for every comment token.
        self.comments: dict[int, str] = {}
        #: ``{line: {rule ids}}`` for every ``# repro: noqa[...]`` comment.
        self.noqa: dict[int, set[str]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    self.comments[tok.start[0]] = tok.string
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            pass  # ast.parse accepted it; comments stay best-effort
        for line, comment in self.comments.items():
            match = _NOQA_RE.search(comment)
            if match:
                ids = {p.strip() for p in match.group(1).split(",") if p.strip()}
                if ids:
                    self.noqa[line] = ids

    def module_is(self, *prefixes: str) -> bool:
        """Whether the module equals, or lives under, any given prefix."""
        if self.module is None:
            return False
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in prefixes
        )


def _apply_suppressions(ctx: FileContext, findings: list[Finding]) -> list[Finding]:
    """Drop suppressed findings; report suppressions that match nothing."""
    used: set[tuple[int, str]] = set()
    kept: list[Finding] = []
    for finding in findings:
        if finding.rule in ctx.noqa.get(finding.line, ()):
            used.add((finding.line, finding.rule))
        else:
            kept.append(finding)
    for line in sorted(ctx.noqa):
        for rule_id in sorted(ctx.noqa[line]):
            if (line, rule_id) in used:
                continue
            if rule_id in RULES:
                message = (
                    f"unused suppression: noqa[{rule_id}] matches no "
                    f"{rule_id} finding on this line — delete it"
                )
            else:
                message = (
                    f"unknown rule id {rule_id!r} in noqa "
                    f"(known: {', '.join(sorted(RULES))})"
                )
            kept.append(
                Finding(
                    rule=SUPPRESSION_RULE_ID,
                    path=ctx.path,
                    line=line,
                    col=0,
                    message=message,
                )
            )
    return sorted(kept, key=Finding.sort_key)


def lint_file(
    path: str, source: str | None = None, module: str | None = None
) -> list[Finding]:
    """Run every applicable rule over one file."""
    if source is None:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    try:
        ctx = FileContext(path, source, module=module)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_RULE_ID,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"cannot parse file: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    for rule in RULES.values():
        if rule.applies(ctx):
            findings.extend(rule.check(ctx))
    return _apply_suppressions(ctx, findings)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    seen: set[str] = set()
    collected: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d != "__pycache__" and not d.startswith(".")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        collected.append(os.path.join(root, name))
        else:
            collected.append(path)
    for path in collected:
        resolved = os.path.abspath(path)
        if resolved not in seen:
            seen.add(resolved)
            yield path


def lint_paths(paths: Iterable[str]) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; findings sorted by position."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path))
    return sorted(findings, key=Finding.sort_key)
