"""Project-invariant static analysis (``python -m repro lint``).

A small AST-based linter for the invariants this repo's tests cannot
see locally: determinism of the reproduction layers (DET), asyncio
event-loop discipline in the gateway (ASYNC), checked lock-discipline
annotations (LOCK), the central ``REPRO_*`` env registry (ENV), and
the downward-only import DAG (LAYER).  Rules, suppression syntax, and
the layer map are documented in the submodules; the README carries the
user-facing rule table.

Importing this package registers every rule (the ``rules_*`` imports
below are the registration side effect).
"""

from repro.analysis.engine import (
    PARSE_RULE_ID,
    RULES,
    SUPPRESSION_RULE_ID,
    FileContext,
    Finding,
    Rule,
    lint_file,
    lint_paths,
    module_for_path,
    register,
)
from repro.analysis import (  # noqa: F401  (imported for rule registration)
    rules_async,
    rules_det,
    rules_env,
    rules_layer,
    rules_lock,
)
from repro.analysis.report import FORMATS, format_findings, rule_table

__all__ = [
    "FORMATS",
    "FileContext",
    "Finding",
    "PARSE_RULE_ID",
    "RULES",
    "Rule",
    "SUPPRESSION_RULE_ID",
    "format_findings",
    "lint_file",
    "lint_paths",
    "module_for_path",
    "register",
    "rule_table",
]
