"""LAYER — the import DAG points downward.

The repo is layered so that the reproducibility core stays importable
(and testable) without the serving stack, and nothing heavy sneaks into
the leaves.  Each ``repro`` subpackage has a layer number; a module may
import same-or-lower layers only:

====== =============================================================
layer  packages
====== =============================================================
0      env, analysis, arch, library, rtl, parallel, ml
1      sim, synthesis  (+ dse.cache, vlsi.macro_mapping — see below)
2      power
3      core, baselines, vlsi
4      api, data
5      dse
6      serving, experiments
7      cli, __main__, repro (the package root re-exports everything)
====== =============================================================

Two *module* overrides sit below their package: ``repro.dse.cache``
(the content-addressed cache is storage, used by ``vlsi.flow``) and
``repro.vlsi.macro_mapping`` (pure table lookup, used by ``power``).

``LAYER001`` flags any import of a strictly higher layer.  Lateral
imports (same layer, different package) are allowed — the DAG we
enforce is the layering, not full package acyclicity.  Relative
imports are resolved against the importing module first.

Scope: ``repro.*`` modules only (scripts and benchmarks sit above the
package and may import anything).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.engine import FileContext, Finding, Rule, register

#: Layer number per ``repro`` subpackage (key = second dotted part).
PACKAGE_LAYERS: dict[str, int] = {
    "env": 0,
    "analysis": 0,
    "arch": 0,
    "library": 0,
    "rtl": 0,
    "parallel": 0,
    "ml": 0,
    "sim": 1,
    "synthesis": 1,
    "power": 2,
    "core": 3,
    "baselines": 3,
    "vlsi": 3,
    "api": 4,
    "data": 4,
    "dse": 5,
    "serving": 6,
    "experiments": 6,
    "cli": 7,
    "__main__": 7,
}

#: Exact-module overrides (checked before the package rule).
MODULE_LAYERS: dict[str, int] = {
    "repro": 7,  # the root __init__ re-exports the public API
    "repro.dse.cache": 1,  # content-addressed storage, used by vlsi.flow
    "repro.vlsi.macro_mapping": 1,  # pure lookup table, used by power
}


def layer_of(module: str) -> int | None:
    """Layer for a ``repro[.x[.y]]`` module; ``None`` if not ours."""
    if module in MODULE_LAYERS:
        return MODULE_LAYERS[module]
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return MODULE_LAYERS["repro"]
    return PACKAGE_LAYERS.get(parts[1])


def _resolve_relative(ctx_module: str, level: int, target: str | None) -> str | None:
    """Absolute module for a ``from ... import`` with ``level`` dots."""
    parts = ctx_module.split(".")
    if level >= len(parts) + 1:
        return None
    base = parts[: len(parts) - level]
    if target:
        base.extend(target.split("."))
    return ".".join(base) if base else None


@register
class LayerImportRule(Rule):
    id = "LAYER001"
    name = "upward-import"
    description = (
        "module imports a repro package from a strictly higher layer "
        "(the import DAG must point downward)"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module is not None and ctx.module.startswith("repro")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        my_layer = layer_of(ctx.module)
        if my_layer is None:
            return
        for node in ast.walk(ctx.tree):
            targets: list[str] = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    resolved = _resolve_relative(
                        ctx.module, node.level, node.module
                    )
                    if resolved:
                        targets = [resolved]
                elif node.module:
                    targets = [node.module]
            for target in targets:
                target_layer = layer_of(target)
                if target_layer is None or target_layer <= my_layer:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"'{ctx.module}' (layer {my_layer}) imports "
                    f"'{target}' (layer {target_layer}) — lower layers "
                    "must not depend on higher ones; move the shared "
                    "piece down or invert the dependency",
                )
