"""Finding formatters: human text, machine JSON, GitHub annotations.

* ``text`` — ``path:line:col: RULE message`` plus a summary line;
  what a developer reads in a terminal.
* ``json`` — a list of finding objects plus counts; for tooling.
* ``github`` — ``::error file=...`` workflow commands, which the
  Actions runner turns into inline PR annotations; the CI lint step
  uses this format.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterable, Sequence

from repro.analysis.engine import RULES, Finding

__all__ = ["FORMATS", "format_findings", "rule_table"]

FORMATS = ("text", "json", "github")


def _text(findings: Sequence[Finding]) -> str:
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}" for f in findings
    ]
    if findings:
        by_rule = Counter(f.rule for f in findings)
        breakdown = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(by_rule.items())
        )
        plural = "" if len(findings) == 1 else "s"
        lines.append(f"{len(findings)} finding{plural} ({breakdown})")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def _json(findings: Sequence[Finding]) -> str:
    payload = {
        "findings": [f.to_dict() for f in findings],
        "count": len(findings),
        "counts_by_rule": dict(
            sorted(Counter(f.rule for f in findings).items())
        ),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _github(findings: Sequence[Finding]) -> str:
    lines = []
    for f in findings:
        # Workflow-command payloads are single-line; our messages are,
        # but escape defensively per the Actions spec.
        message = (
            f.message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
        )
        lines.append(
            f"::error file={f.path},line={f.line},col={f.col + 1},"
            f"title={f.rule}::{message}"
        )
    return "\n".join(lines)


def format_findings(findings: Iterable[Finding], fmt: str = "text") -> str:
    """Render findings in one of :data:`FORMATS`."""
    ordered = list(findings)
    if fmt == "text":
        return _text(ordered)
    if fmt == "json":
        return _json(ordered)
    if fmt == "github":
        return _github(ordered)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")


def rule_table() -> str:
    """Plain-text table of every registered rule (``lint --rules``)."""
    rows = [(rule.id, rule.name, rule.description) for rule in RULES.values()]
    rows.append(("PARSE001", "syntax-error", "file failed to parse"))
    rows.append(
        (
            "SUP001",
            "unused-suppression",
            "a # repro: noqa[...] comment that matches no finding",
        )
    )
    id_w = max(len(r[0]) for r in rows)
    name_w = max(len(r[1]) for r in rows)
    return "\n".join(
        f"{rule_id:<{id_w}}  {name:<{name_w}}  {description}"
        for rule_id, name, description in rows
    )
