"""ASYNC — event-loop discipline for the serving layer.

The gateway (``repro.serving``) is a single-threaded asyncio server: one
blocked coroutine stalls *every* connection, admission decision, and
health check behind it.  The repo's convention is that anything blocking
— model inference, file IO, process control — runs either on the
``_ModelWorker`` thread or through ``loop.run_in_executor``.

* ``ASYNC001`` — a known-blocking call (``time.sleep``,
  ``subprocess.run``, ``open``, ...) lexically inside an ``async def``.
  Nested *sync* ``def``\\ s inside an async function are exempt: they
  are exactly the functions handed to ``run_in_executor``.
* ``ASYNC002`` — a direct model/service call (``.submit_many(...)``,
  ``.predict*(...)``, ``.fit(...)``) inside an ``async def``.  Passing
  the bound method *by reference* (``partial(service.submit_many, ...)``
  into an executor) is fine and not flagged — only the direct call is.

Scope: ``repro.serving`` only.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.engine import FileContext, Finding, Rule, dotted_name, register

#: Module prefix where the event loop must never block.
ASYNC_PREFIXES = ("repro.serving",)

# Dotted calls that block the calling thread.
_BLOCKING_CALLS = {
    "time.sleep",
    "os.system",
    "os.wait",
    "os.waitpid",
    "os.popen",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.put",
    "requests.delete",
    "requests.request",
}
# Bare built-ins that block (file IO, stdin).
_BLOCKING_BUILTINS = {"open", "input"}
# Method names that block on synchronization primitives or model work.
_BLOCKING_METHODS = {
    "acquire",  # threading.Lock.acquire — asyncio locks are awaited, not called
}

# Service/model entry points that must go through the worker thread.
_MODEL_METHODS = {
    "submit_many",
    "predict",
    "predict_total",
    "predict_totals",
    "predict_report",
    "predict_reports",
    "fit",
    "run_many",
}


class _AsyncCallVisitor(ast.NodeVisitor):
    """Collect calls whose *nearest enclosing function* is ``async def``."""

    def __init__(self) -> None:
        # Stack of ("async"|"sync", function name); lambdas count as sync
        # (they are what gets handed to executors).
        self._stack: list[tuple[str, str]] = []
        self.async_calls: list[tuple[ast.Call, str]] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(("sync", node.name))
        self.generic_visit(node)
        self._stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._stack.append(("async", node.name))
        self.generic_visit(node)
        self._stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._stack.append(("sync", "<lambda>"))
        self.generic_visit(node)
        self._stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self._stack and self._stack[-1][0] == "async":
            self.async_calls.append((node, self._stack[-1][1]))
        self.generic_visit(node)


def _calls_in_async(ctx: FileContext) -> list[tuple[ast.Call, str]]:
    visitor = _AsyncCallVisitor()
    visitor.visit(ctx.tree)
    return visitor.async_calls


class _AsyncRule(Rule):
    def applies(self, ctx: FileContext) -> bool:
        return ctx.module_is(*ASYNC_PREFIXES)


@register
class BlockingCallRule(_AsyncRule):
    id = "ASYNC001"
    name = "blocking-call-in-async"
    description = (
        "known-blocking call (time.sleep, subprocess, open, ...) "
        "lexically inside an async def in the serving layer"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node, func_name in _calls_in_async(ctx):
            name = dotted_name(node.func)
            blocking = None
            if name in _BLOCKING_CALLS or name in _BLOCKING_BUILTINS:
                blocking = name
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_METHODS
                # `await lock.acquire()` is the asyncio idiom — only the
                # un-awaited threading form blocks. The tokenizer-free
                # check: a blocking-method call is fine if its parent is
                # Await; we approximate by checking the call is not the
                # value of an Await (handled via _awaited set below).
            ):
                blocking = f"...{node.func.attr}"
            if blocking is None:
                continue
            if blocking.startswith("...") and self._is_awaited(ctx, node):
                continue
            yield self.finding(
                ctx,
                node,
                f"blocking call '{blocking}(...)' inside 'async def "
                f"{func_name}' stalls the event loop — route it through "
                "loop.run_in_executor(...) or the model worker thread",
            )

    @staticmethod
    def _is_awaited(ctx: FileContext, call: ast.Call) -> bool:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Await) and node.value is call:
                return True
        return False


@register
class DirectModelCallRule(_AsyncRule):
    id = "ASYNC002"
    name = "model-call-in-async"
    description = (
        "direct service/model call (.submit_many, .predict*, .fit) "
        "inside an async def; hand it to the worker thread instead"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node, func_name in _calls_in_async(ctx):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MODEL_METHODS:
                yield self.finding(
                    ctx,
                    node,
                    f"direct model call '.{func.attr}(...)' inside 'async "
                    f"def {func_name}' runs inference on the event loop — "
                    "submit it to the model worker (or wrap it in "
                    "functools.partial and run_in_executor)",
                )
