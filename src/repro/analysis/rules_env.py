"""ENV — every ``REPRO_*`` environment variable goes through the registry.

``repro.env`` declares each knob once (name, type, default, docstring)
and gives the whole repo typed accessors; the README's env-var table is
generated from it.  A stray ``os.environ.get("REPRO_...")`` elsewhere
would reintroduce exactly the drift the registry exists to kill —
undocumented knobs with ad-hoc parsing.

* ``ENV001`` — a literal ``REPRO_*`` key read via ``os.environ`` /
  ``os.getenv`` outside ``repro.env``.  Non-``REPRO_`` literals
  (``CC``, ``XDG_CACHE_HOME``) are third-party contracts and stay
  legal.
* ``ENV002`` — an environment read whose key is *not* a string literal
  (a variable, an f-string): the rule cannot prove it isn't a
  ``REPRO_*`` name, so it must either move to the registry or carry a
  justified suppression.

Scope: everything except ``repro/env.py`` itself.  Writes
(``os.environ[...] = ...``, ``monkeypatch.setenv``) are not reads and
are not flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.engine import FileContext, Finding, Rule, dotted_name, register

_ENVIRON_NAMES = {"os.environ", "environ"}
_READ_METHODS = {"get", "pop", "setdefault"}


def _env_read_key(node: ast.AST) -> ast.AST | None:
    """The key expression if ``node`` reads the environment, else ``None``."""
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in {"os.getenv", "getenv"} and node.args:
            return node.args[0]
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _READ_METHODS
            and dotted_name(node.func.value) in _ENVIRON_NAMES
            and node.args
        ):
            return node.args[0]
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.ctx, ast.Load)
        and dotted_name(node.value) in _ENVIRON_NAMES
    ):
        return node.slice
    return None


class _EnvRule(Rule):
    def applies(self, ctx: FileContext) -> bool:
        return ctx.module != "repro.env"


@register
class ReproEnvReadRule(_EnvRule):
    id = "ENV001"
    name = "env-read-outside-registry"
    description = (
        "literal REPRO_* environment read outside repro/env.py; use the "
        "registry accessors (get_str/get_bool/get_float/get_path)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            key = _env_read_key(node)
            if key is None:
                continue
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and key.value.startswith("REPRO_")
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"'{key.value}' read directly from os.environ — go "
                    "through repro.env (declare it in the registry, "
                    "read it with get_str/get_bool/get_float/get_path)",
                )


@register
class DynamicEnvReadRule(_EnvRule):
    id = "ENV002"
    name = "dynamic-env-read"
    description = (
        "environment read with a non-literal key; the linter cannot "
        "prove it is not a REPRO_* knob"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            key = _env_read_key(node)
            if key is None:
                continue
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                continue
            yield self.finding(
                ctx,
                node,
                "environment read with a non-literal key — the linter "
                "cannot verify it is not a REPRO_* knob; use the "
                "repro.env registry, or suppress with a justification "
                "if the name is genuinely caller-chosen",
            )
