"""Dataset assembly: flow outputs -> feature/label matrices.

AutoPower and the baselines consume flow results directly; this module is
the tabular view for downstream users who want to train their *own*
models on the substrate (e.g. the examples, or future extensions).  Each
sample is one (configuration, workload) run with the full hardware
parameter vector, event rates, program features and golden power labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import BOOM_CONFIGS, BoomConfig
from repro.arch.events import EVENT_NAMES
from repro.arch.params import HARDWARE_PARAMETERS
from repro.arch.workloads import WORKLOADS, Workload
from repro.core.features import program_feature_names, program_features
from repro.power.report import POWER_GROUPS
from repro.vlsi.flow import VlsiFlow

__all__ = ["PowerDataset", "Sample", "build_dataset"]

_RATE_NAMES = tuple(f"rate_{n}" for n in EVENT_NAMES if n != "cycles")


@dataclass(frozen=True)
class Sample:
    """One (configuration, workload) data point."""

    config_name: str
    workload_name: str
    hardware: np.ndarray
    event_rates: np.ndarray
    program: np.ndarray
    total_power: float
    group_power: dict[str, float]


@dataclass
class PowerDataset:
    """A tabular power-modeling dataset."""

    samples: list[Sample]

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def feature_names(self) -> tuple[str, ...]:
        return HARDWARE_PARAMETERS + _RATE_NAMES + program_feature_names()

    def features(self) -> np.ndarray:
        """(n_samples, n_features) matrix: H ++ E rates ++ program."""
        return np.stack(
            [
                np.concatenate([s.hardware, s.event_rates, s.program])
                for s in self.samples
            ]
        )

    def totals(self) -> np.ndarray:
        return np.array([s.total_power for s in self.samples])

    def group(self, name: str) -> np.ndarray:
        return np.array([s.group_power[name] for s in self.samples])

    def split_by_config(
        self, train_names: tuple[str, ...] | list[str]
    ) -> tuple["PowerDataset", "PowerDataset"]:
        """Split into (train, test) by configuration membership."""
        train_set = set(train_names)
        train = [s for s in self.samples if s.config_name in train_set]
        test = [s for s in self.samples if s.config_name not in train_set]
        if not train or not test:
            raise ValueError("split leaves an empty train or test partition")
        return PowerDataset(train), PowerDataset(test)


def build_dataset(
    flow: VlsiFlow | None = None,
    configs: tuple[BoomConfig, ...] | None = None,
    workloads: tuple[Workload, ...] | None = None,
) -> PowerDataset:
    """Run the flow over (configs x workloads) and tabulate the results."""
    if flow is None:
        flow = VlsiFlow()
    if configs is None:
        configs = BOOM_CONFIGS
    if workloads is None:
        workloads = WORKLOADS
    samples: list[Sample] = []
    for config in configs:
        for workload in workloads:
            res = flow.run(config, workload)
            rates = np.array(
                [
                    res.events.counts[n] / res.events.cycles
                    for n in EVENT_NAMES
                    if n != "cycles"
                ]
            )
            samples.append(
                Sample(
                    config_name=config.name,
                    workload_name=workload.name,
                    hardware=config.vector(),
                    event_rates=rates,
                    program=program_features(workload),
                    total_power=res.power.total,
                    group_power={
                        g: res.power.group_total(g) for g in POWER_GROUPS
                    },
                )
            )
    return PowerDataset(samples)
