"""Dataset assembly helpers for custom modeling experiments."""

from repro.data.dataset import PowerDataset, Sample, build_dataset

__all__ = ["PowerDataset", "Sample", "build_dataset"]
