"""``python -m repro`` — experiment runner CLI."""

import os
import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piping into `head` closes stdout early; exit quietly instead
        # of tracebacking.  Re-point stdout at devnull so the
        # interpreter's shutdown flush doesn't raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(1)
