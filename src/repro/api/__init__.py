"""``repro.api`` — the single public surface of the reproduction.

The paper's value is that a fitted model is a *hand-off artifact*: the
flow team trains on 2-3 known configurations, architects then predict
any configuration from hardware parameters and performance-simulator
events alone.  This package is that hand-off, method-agnostically:

* :class:`PowerModel` — the protocol every method satisfies
  (``fit_results`` / ``predict_total`` / ``predict_totals`` /
  ``to_state`` / ``from_state``, plus ``predict_report`` where
  supported),
* the **method registry** — :func:`register`, :func:`get_method`,
  :func:`list_methods`, :func:`create`, :func:`fit` resolve methods by
  string name (``"autopower"``, ``"mcpat-calib"``, ...); experiments and
  the CLI carry no per-method branches,
* **versioned persistence** — :func:`save_model` / :func:`load_model`
  wrap any method's state in a ``{format_version: 2, method, library,
  state}`` envelope (legacy v1 AutoPower files still load),
* the **prediction service** — :class:`PredictionService` coalesces
  :class:`PredictRequest` streams into fused batched model calls.

Quick tour::

    import repro.api as api

    model = api.fit("autopower", train_configs=["C1", "C15"])
    api.save_model(model, "model.json")

    model = api.load_model("model.json")
    service = api.PredictionService(model)
    response = service.predict(api.PredictRequest("C8", events, "dhrystone"))

Importing the package registers the five built-in methods.
"""

from repro.api.adapters import register_builtin_methods
from repro.api.protocol import PowerModel, supports_reports
from repro.api.registry import (
    MethodSpec,
    create,
    fit,
    get_method,
    list_methods,
    method_names,
    register,
    spec_for,
)
from repro.api.persistence import (
    FORMAT_VERSION,
    load_model,
    model_from_envelope,
    model_to_envelope,
    save_model,
)
from repro.api.service import (
    PredictRequest,
    PredictResponse,
    PredictionService,
    ServiceStats,
)

register_builtin_methods()

__all__ = [
    "FORMAT_VERSION",
    "MethodSpec",
    "PowerModel",
    "PredictRequest",
    "PredictResponse",
    "PredictionService",
    "ServiceStats",
    "create",
    "fit",
    "get_method",
    "list_methods",
    "load_model",
    "method_names",
    "model_from_envelope",
    "model_to_envelope",
    "register",
    "register_builtin_methods",
    "save_model",
    "spec_for",
    "supports_reports",
]
