"""Batched prediction serving on top of the fast engine.

The PR 1-3 engine work made one fused-ensemble pass over an
:class:`~repro.arch.events.EventBatch` dramatically cheaper than the
equivalent loop of scalar calls; this module is the request/response
layer that exploits it.  :class:`PredictionService` accepts individual
:class:`PredictRequest` objects (one simulation interval each), coalesces
them per configuration into event batches, runs one batched model call
per (configuration, chunk), and scatters the results back into
per-request :class:`PredictResponse` objects — bitwise-equal to what the
request-at-a-time loop would have produced, at a fraction of the cost.

Request kinds:

* ``"total"`` — total power (mW); every method supports it,
* ``"report"`` — per-component power-group report; methods with
  ``predict_report`` / ``predict_reports`` only,
* ``"trace"`` — per-window power trace from activity scales; methods
  with ``predict_trace`` only (AutoPower).

``n_jobs`` fans the per-configuration batch calls out through
:mod:`repro.parallel` (the numbers are backend-independent);
``max_batch_size`` caps how many intervals one model call sees, so a
service embedded in a latency-sensitive loop can bound its chunk cost.
:meth:`PredictionService.stream` is the incremental variant: it consumes
any request iterable lazily and yields responses in request order with
bounded buffering.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence
from typing import Any

import numpy as np

from repro.arch.config import BoomConfig, config_by_name
from repro.arch.events import EventBatch, EventParams
from repro.arch.workloads import Workload, workload_by_name
from repro.parallel import get_executor

__all__ = ["PredictRequest", "PredictResponse", "PredictionService", "ServiceStats"]

_KINDS = ("total", "report", "trace")


@dataclass(frozen=True, eq=False)
class PredictRequest:
    """One prediction request: a (config, interval[, workload]) triple.

    ``config`` and ``workload`` accept instances or names (names resolve
    at construction).  ``kind`` selects the response payload; ``scales``
    and ``window_cycles`` apply to ``kind="trace"`` only.
    ``deadline_ms`` is an optional latency budget the *serving* layer
    enforces (:mod:`repro.serving`): an expired request is shed with 504
    before reaching the model; the service itself ignores it.  Identity
    semantics (``eq=False``): the event/scale payloads are arrays, so
    requests compare and hash by object identity.
    """

    config: BoomConfig
    events: EventParams
    workload: Workload | None = None
    kind: str = "total"
    scales: Any = None
    window_cycles: int = 50
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if isinstance(self.config, str):
            object.__setattr__(self, "config", config_by_name(self.config))
        if isinstance(self.workload, str):
            object.__setattr__(self, "workload", workload_by_name(self.workload))
        if self.kind not in _KINDS:
            raise ValueError(f"unknown request kind {self.kind!r}; expected {_KINDS}")
        if self.kind == "trace":
            if self.scales is None:
                raise ValueError("trace requests need activity scales")
            scales = np.asarray(self.scales, dtype=float)
            if scales.size == 0:
                raise ValueError(
                    "trace requests need at least one activity scale"
                )
            if not np.all(np.isfinite(scales)) or np.any(scales <= 0):
                raise ValueError("activity scales must be positive and finite")
            object.__setattr__(self, "scales", scales)
            if self.window_cycles <= 0:
                raise ValueError(
                    f"window_cycles must be positive, got {self.window_cycles!r}"
                )
        elif self.scales is not None:
            raise ValueError("scales are only valid for trace requests")
        if self.deadline_ms is not None:
            deadline_ms = self.deadline_ms
            if (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or not np.isfinite(deadline_ms)
                or deadline_ms <= 0
            ):
                raise ValueError(
                    f"deadline_ms must be a positive finite number, "
                    f"got {self.deadline_ms!r}"
                )


@dataclass(frozen=True, eq=False)
class PredictResponse:
    """The result of one request (payload field matches ``kind``).

    Identity semantics (``eq=False``): ``trace`` payloads are arrays.
    """

    config_name: str
    workload_name: str | None
    kind: str
    total: float | None = None
    report: Any = None
    trace: np.ndarray | None = None


@dataclass
class ServiceStats:
    """Serving counters (observability for the batching layer)."""

    requests: int = 0
    responses: int = 0
    model_calls: int = 0
    batched_intervals: int = 0

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "responses": self.responses,
            "model_calls": self.model_calls,
            "batched_intervals": self.batched_intervals,
        }

    # PredictionService.stats_snapshot is the torn-read-free variant for
    # readers on another thread than the submitter (e.g. /stats).


def _predict_totals_task(payload: dict) -> np.ndarray:
    """One coalesced totals call — the picklable executor task."""
    return payload["model"].predict_totals(
        payload["config"], payload["batch"], payload["workload"]
    )


def _workload_arg(workloads: list) -> Any:
    """Collapse a per-row workload list to what the batch APIs expect."""
    if all(w is None for w in workloads):
        return None
    if any(w is None for w in workloads):
        raise ValueError(
            "cannot mix workload-carrying and workload-free requests "
            "for one configuration"
        )
    return workloads


class PredictionService:
    """Micro-batching request/response front end for one fitted model.

    Parameters
    ----------
    model:
        Any fitted :class:`repro.api.protocol.PowerModel`.
    n_jobs / backend:
        Parallel fan-out of the per-configuration batch calls through
        :mod:`repro.parallel` (``None`` defers to ``--jobs`` /
        ``REPRO_JOBS``; results are backend-independent).
    max_batch_size:
        Upper bound on intervals per coalesced model call (``None`` =
        unbounded).

    Thread safety: :meth:`submit_many` may be called concurrently from
    multiple threads (the async gateway offloads submissions to a worker
    thread while the event loop keeps accepting).  Model predictions are
    read-only, every submission is validated before any model call runs
    (a rejected submission does no work and leaves ``stats`` untouched),
    and the stats counters are applied once per completed submission
    under a lock.
    """

    def __init__(
        self,
        model: Any,
        n_jobs: int | None = None,
        backend: str | None = None,
        max_batch_size: int | None = None,
    ) -> None:
        if max_batch_size is not None and max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        self.model = model
        self.n_jobs = n_jobs
        self.backend = backend
        self.max_batch_size = max_batch_size
        self.stats = ServiceStats()  # guarded-by: _stats_lock
        self._stats_lock = threading.Lock()

    def stats_snapshot(self) -> dict:
        """The :class:`ServiceStats` snapshot, taken under the stats lock
        so a concurrent submission can't be observed half-applied."""
        with self._stats_lock:
            return self.stats.snapshot()

    # ------------------------------------------------------------------
    def predict(self, request: PredictRequest) -> PredictResponse:
        """Serve one request (sugar over :meth:`submit_many`)."""
        return self.submit_many([request])[0]

    def predict_total(
        self, config: Any, events: EventParams, workload: Any = None
    ) -> float:
        """Scalar convenience: total power (mW) for one interval."""
        return self.predict(
            PredictRequest(config=config, events=events, workload=workload)
        ).total

    # ------------------------------------------------------------------
    def submit_many(
        self, requests: Sequence[PredictRequest]
    ) -> list[PredictResponse]:
        """Serve a batch of requests; responses come back in order.

        ``total`` requests sharing a configuration coalesce into one
        :class:`EventBatch` ``predict_totals`` call (chunked by
        ``max_batch_size``) and fan out across the executor; ``report``
        requests batch through ``predict_reports`` per configuration;
        ``trace`` requests run one batched anchor sweep each.
        """
        requests = list(requests)
        self._validate(requests)
        model_calls = 0
        batched_intervals = 0
        responses: list[PredictResponse | None] = [None] * len(requests)

        # -- totals: coalesce per config, chunk, fan out -----------------
        chunks: list[tuple[list[int], dict]] = []
        for part in self._config_chunks(requests, "total"):
            chunks.append(
                (
                    part,
                    {
                        "model": self.model,
                        "config": requests[part[0]].config,
                        "batch": EventBatch.from_events(
                            [requests[i].events for i in part]
                        ),
                        "workload": _workload_arg(
                            [requests[i].workload for i in part]
                        ),
                    },
                )
            )
        if chunks:
            executor = get_executor(self.n_jobs, self.backend)
            totals = executor.map(_predict_totals_task, [p for _, p in chunks])
            model_calls += len(chunks)
            for (part, _payload), values in zip(chunks, totals):
                batched_intervals += len(part)
                for i, value in zip(part, np.asarray(values, dtype=float)):
                    responses[i] = self._response(
                        requests[i], total=float(value)
                    )

        # -- reports: batch per config where the model supports it -------
        for part in self._config_chunks(requests, "report"):
            reports, n_calls = self._predict_reports(part, requests)
            model_calls += n_calls
            batched_intervals += len(part)
            for i, report in zip(part, reports):
                responses[i] = self._response(
                    requests[i], total=float(report.total), report=report
                )

        # -- traces: one batched anchor sweep per request ----------------
        for i, req in enumerate(requests):
            if req.kind != "trace":
                continue
            trace = self.model.predict_trace(
                req.config,
                req.events,
                req.workload,
                req.scales,
                window_cycles=req.window_cycles,
            )
            model_calls += 1
            batched_intervals += 1
            responses[i] = self._response(requests[i], trace=trace)

        # Counters are applied once per submission, after every model call
        # succeeded, under a lock: a failing submission leaves the stats
        # untouched, and concurrent submit_many callers (the async gateway
        # offloads submissions to executor threads) can't interleave the
        # read-modify-write increments.
        with self._stats_lock:
            self.stats.requests += len(requests)
            self.stats.responses += len(responses)
            self.stats.model_calls += model_calls
            self.stats.batched_intervals += batched_intervals
        return responses  # every kind above filled its slots

    # ------------------------------------------------------------------
    def _validate(self, requests: list[PredictRequest]) -> None:
        """Reject unservable submissions before any model work runs, so a
        bad request can't discard completed results or skew the stats."""
        for req in requests:
            if not isinstance(req, PredictRequest):
                raise TypeError(f"expected PredictRequest, got {type(req).__name__}")
            if req.kind == "report" and not (
                callable(getattr(self.model, "predict_reports", None))
                or callable(getattr(self.model, "predict_report", None))
            ):
                raise TypeError(
                    f"{type(self.model).__name__} does not support report requests"
                )
            if req.kind == "trace" and not callable(
                getattr(self.model, "predict_trace", None)
            ):
                raise TypeError(
                    f"{type(self.model).__name__} does not support trace requests"
                )
        # Workload mixing is a per-chunk property: every coalesced model
        # call needs either all-workload or no-workload rows.  Checking the
        # exact chunks the execution phases will use keeps the semantics
        # identical (a max_batch_size split that happens to separate the
        # mix stays accepted) while firing *before* any model call.
        for part in self._config_chunks(requests, "total"):
            _workload_arg([requests[i].workload for i in part])
        if callable(getattr(self.model, "predict_reports", None)):
            for part in self._config_chunks(requests, "report"):
                _workload_arg([requests[i].workload for i in part])

    def _config_chunks(
        self, requests: list[PredictRequest], kind: str
    ) -> Iterator[list[int]]:
        """Same-config request-index chunks of one kind, capped by
        ``max_batch_size`` — the coalescing unit of one model call."""
        groups: dict[str, list[int]] = {}
        for i, req in enumerate(requests):
            if req.kind == kind:
                groups.setdefault(req.config.name, []).append(i)
        for indices in groups.values():
            step = self.max_batch_size or len(indices)
            for start in range(0, len(indices), step):
                yield indices[start : start + step]

    @staticmethod
    def _response(req: PredictRequest, **payload) -> PredictResponse:
        return PredictResponse(
            config_name=req.config.name,
            workload_name=getattr(req.workload, "name", None),
            kind=req.kind,
            **payload,
        )

    def _predict_reports(self, part: list[int], requests: list[PredictRequest]):
        """Reports for one same-config chunk: (reports, model calls made)."""
        config = requests[part[0]].config
        predict_reports = getattr(self.model, "predict_reports", None)
        if predict_reports is not None:
            batch = EventBatch.from_events([requests[i].events for i in part])
            workload = _workload_arg([requests[i].workload for i in part])
            return predict_reports(config, batch, workload), 1
        # _validate guaranteed the scalar fallback exists.
        reports = [
            self.model.predict_report(config, requests[i].events, requests[i].workload)
            for i in part
        ]
        return reports, len(part)

    # ------------------------------------------------------------------
    def stream(
        self, requests: Iterable[PredictRequest], chunk_size: int = 64
    ) -> Iterator[PredictResponse]:
        """Serve a request iterable incrementally, in request order.

        Buffers up to ``chunk_size`` requests, serves each buffer through
        :meth:`submit_many` (so per-config coalescing still applies
        within a buffer), and yields responses as each buffer completes —
        the shape a long-running caller (or an async gateway) consumes.

        Error semantics: each buffer is validated and served
        independently.  A bad request surfaces as an exception at the
        failing buffer's yield point — responses for earlier buffers have
        already been yielded and stay valid, the failing buffer runs no
        model work and contributes nothing to ``stats``, and requests in
        later buffers are never consumed from the iterable.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        buffer: list[PredictRequest] = []
        for request in requests:
            buffer.append(request)
            if len(buffer) >= chunk_size:
                yield from self.submit_many(buffer)
                buffer = []
        if buffer:
            yield from self.submit_many(buffer)
