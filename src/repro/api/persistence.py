"""Versioned, method-agnostic model persistence (format v2).

A fitted model is the paper's hand-off artifact: the flow-side team
trains once against the slow, licensed EDA flow and ships a JSON file to
architects who only have a performance simulator.  Format v2 wraps *any*
registered method's :meth:`to_state` payload in a small envelope::

    {"format_version": 2, "method": "<registry name>",
     "library": "<tech library name or null>", "state": {...}}

so one ``load_model`` call reconstructs whichever method wrote the file.
The envelope carries the technology library by *name* only — the library
is part of the flow, not of the learned state — and loading validates it
against the caller's library for the methods that depend on one.

Legacy format-v1 files (AutoPower-only, state keys at the top level)
still load; saving always writes v2.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.api.registry import get_method, spec_for

__all__ = [
    "FORMAT_VERSION",
    "load_model",
    "model_from_envelope",
    "model_to_envelope",
    "save_model",
]

FORMAT_VERSION = 2


def model_to_envelope(model: Any) -> dict:
    """The format-v2 envelope dict for any registered fitted model.

    This is the in-memory half of :func:`save_model` — the serving
    gateway ships envelopes over the wire (``PUT /models/<name>``)
    without touching the filesystem.
    """
    spec = spec_for(model)
    library = getattr(model, "library", None)
    return {
        "format_version": FORMAT_VERSION,
        "method": spec.name,
        "library": getattr(library, "name", None),
        "state": model.to_state(),
    }


def save_model(model: Any, path: str | Path) -> None:
    """Serialize any registered method's fitted model to a JSON file."""
    Path(path).write_text(json.dumps(model_to_envelope(model)))


def model_from_envelope(envelope: Any, library: Any = None) -> Any:
    """Reconstruct a fitted model from an envelope dict.

    The in-memory half of :func:`load_model`: accepts format-v2
    envelopes and legacy format-v1 AutoPower payloads.  ``library`` is
    resolved by name for methods that carry one.
    """
    if not isinstance(envelope, dict):
        raise ValueError(
            f"model envelope must be a JSON object, got {type(envelope).__name__}"
        )
    version = envelope.get("format_version")
    if version == 1:
        # v1 predates the envelope: AutoPower state at the top level.
        method, library_name, state = "autopower", envelope["library"], envelope
    elif version == FORMAT_VERSION:
        method = envelope["method"]
        library_name = envelope.get("library")
        state = envelope["state"]
    else:
        raise ValueError(f"unsupported model file version {version!r}")
    spec = get_method(method)
    if library_name is not None:
        if library is None:
            from repro.library.stdcell import default_library

            library = default_library()
        if library.name != library_name:
            raise ValueError(
                f"model was trained against library {library_name!r}, "
                f"got {library.name!r}"
            )
    return spec.cls.from_state(state, library=library)


def load_model(path: str | Path, library: Any = None) -> Any:
    """Load a fitted model saved by :func:`save_model`.

    Accepts both format-v2 envelopes and legacy format-v1 AutoPower
    files.  ``library`` is resolved by name for methods that carry one
    (pass it explicitly when using a non-default technology library).
    """
    return model_from_envelope(json.loads(Path(path).read_text()), library=library)
