"""The ``PowerModel`` protocol — the one contract every method satisfies.

The paper's deliverable is a *hand-off artifact*: the flow team fits a
model on 2-3 known configurations, architects predict any configuration
from hardware parameters and performance-simulator events alone.  The
protocol pins down the surface that hand-off needs:

* ``fit_results(results)`` — train from precomputed
  :class:`repro.vlsi.flow.FlowResult` objects (the flow is only ever run
  on *training* configurations),
* ``predict_total(config, events, workload)`` — scalar total power (mW),
* ``predict_totals(config, events, workload)`` — batched totals over an
  :class:`repro.arch.events.EventBatch` (or sequence of
  :class:`~repro.arch.events.EventParams`), bitwise-equal to the scalar
  path,
* ``to_state()`` / ``from_state(state, library)`` — plain-JSON state for
  the versioned persistence layer (no pickle),
* ``predict_report`` — per-component, per-group
  :class:`~repro.power.report.PowerReport`, where supported (check with
  :func:`supports_reports`).

Methods that don't consume workload context (the McPAT family) accept
``workload=None`` and ignore it, so callers always pass it.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

__all__ = ["PowerModel", "supports_reports"]


@runtime_checkable
class PowerModel(Protocol):
    """Structural type of a registered power-modeling method.

    ``runtime_checkable`` protocols verify method *presence* only;
    signatures follow the conventions documented in the module docstring.
    """

    def fit_results(self, results: list) -> PowerModel:
        """Train from precomputed flow results (training configs only)."""
        ...

    def predict_total(self, config: Any, events: Any, workload: Any = None) -> float:
        """Predicted total power for one interval, in mW."""
        ...

    def predict_totals(self, config: Any, events: Any, workload: Any = None) -> Any:
        """Predicted total power per interval of a batch, in mW."""
        ...

    def to_state(self) -> dict:
        """JSON-serializable fitted state (no pickle)."""
        ...

    @classmethod
    def from_state(cls, state: dict, library: Any = None) -> PowerModel:
        """Rebuild a fitted model from :meth:`to_state` output."""
        ...


def supports_reports(model: Any) -> bool:
    """Whether the model produces per-component power-group reports."""
    return callable(getattr(model, "predict_report", None))
