"""Registry adapters for the five built-in power-modeling methods.

Each method's class implements the :class:`repro.api.protocol.PowerModel`
surface directly (``fit_results`` / ``predict_total`` / ``predict_totals``
/ ``to_state`` / ``from_state``); the adapter layer contributes only the
construction glue — a uniform ``factory(library=..., n_jobs=..., **kw)``
per method, since the constructors differ in which of those arguments
they accept — plus the registry metadata (canonical name, historical
display-name aliases, capability flags).

Importing this module populates the registry; :mod:`repro.api` does so on
package import.
"""

from __future__ import annotations

from typing import Any

from repro.api.registry import MethodSpec, register
from repro.baselines.autopower_minus import AutoPowerMinus
from repro.baselines.mcpat import McPatAnalytical
from repro.baselines.mcpat_calib import McPatCalib
from repro.baselines.mcpat_calib_component import McPatCalibComponent
from repro.core.autopower import AutoPower

__all__ = ["register_builtin_methods"]


def _autopower_factory(library: Any = None, n_jobs: int | None = None, **kw) -> AutoPower:
    return AutoPower(library=library, n_jobs=n_jobs, **kw)


def _autopower_minus_factory(
    library: Any = None, n_jobs: int | None = None, **kw
) -> AutoPowerMinus:
    return AutoPowerMinus(n_jobs=n_jobs, **kw)


def _mcpat_factory(library: Any = None, n_jobs: int | None = None, **kw) -> McPatAnalytical:
    return McPatAnalytical(**kw)


def _mcpat_calib_factory(
    library: Any = None, n_jobs: int | None = None, **kw
) -> McPatCalib:
    return McPatCalib(**kw)


def _mcpat_calib_component_factory(
    library: Any = None, n_jobs: int | None = None, **kw
) -> McPatCalibComponent:
    return McPatCalibComponent(**kw)


def register_builtin_methods(replace: bool = False) -> None:
    """Register the paper's five methods (a no-op if already present)."""
    from repro.api.registry import method_names

    if not replace and "autopower" in method_names():
        return
    register(
        MethodSpec(
            name="autopower",
            display_name="AutoPower",
            cls=AutoPower,
            factory=_autopower_factory,
            description=(
                "The paper's model: power-group decoupling with structural "
                "clock/SRAM/logic sub-models (per-component reports, traces)"
            ),
            supports_reports=True,
        ),
        replace=replace,
    )
    register(
        MethodSpec(
            name="autopower-minus",
            display_name="AutoPower-",
            cls=AutoPowerMinus,
            factory=_autopower_minus_factory,
            description=(
                "Ablation: decouples across power groups only — one direct "
                "GBM per (component, group), no structural sub-models"
            ),
            aliases=("AutoPower-",),
        ),
        replace=replace,
    )
    register(
        MethodSpec(
            name="mcpat",
            display_name="McPAT",
            cls=McPatAnalytical,
            factory=_mcpat_factory,
            description=(
                "Analytical McPAT-style model: generic resource/energy "
                "functions, deliberately uncalibrated (no training)"
            ),
        ),
        replace=replace,
    )
    register(
        MethodSpec(
            name="mcpat-calib",
            display_name="McPAT-Calib",
            cls=McPatCalib,
            factory=_mcpat_calib_factory,
            description=(
                "McPAT-Calib [Zhai et al. 2022]: one boosted model over "
                "hardware params, event rates and the analytical estimate"
            ),
        ),
        replace=replace,
    )
    register(
        MethodSpec(
            name="mcpat-calib-component",
            display_name="McPAT-Calib+Comp",
            cls=McPatCalibComponent,
            factory=_mcpat_calib_component_factory,
            description=(
                "Per-component McPAT-Calib ablation; total power is the sum "
                "of the component predictions"
            ),
            aliases=("McPAT-Calib+Comp",),
        ),
        replace=replace,
    )
