"""String-keyed method registry: one lookup path for every power model.

McPAT-Calib, FirePower and friends show calibration-method families keep
growing; the registry keeps that growth additive.  A method registers one
:class:`MethodSpec` (class + factory + metadata) under a canonical
kebab-case name; experiments, the CLI and the persistence layer resolve
methods exclusively through :func:`get_method` — no caller carries
per-method branches.

Lookup is case-insensitive and tolerant of ``_``/space vs ``-``;
historical display names (``"McPAT-Calib+Comp"``, ``"AutoPower-"``) are
registered as aliases so existing experiment call sites keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

__all__ = [
    "MethodSpec",
    "create",
    "fit",
    "get_method",
    "list_methods",
    "method_names",
    "register",
    "spec_for",
]


@dataclass(frozen=True)
class MethodSpec:
    """Everything the façade needs to drive one method by name.

    ``cls`` must satisfy :class:`repro.api.protocol.PowerModel`;
    ``factory(library=..., n_jobs=..., **kwargs)`` builds an unfitted
    instance (methods ignore the arguments they have no use for).
    """

    name: str
    display_name: str
    cls: type
    factory: Callable[..., Any]
    description: str = ""
    aliases: tuple[str, ...] = ()
    supports_reports: bool = False
    metadata: dict = field(default_factory=dict)


_REGISTRY: dict[str, MethodSpec] = {}
_ALIASES: dict[str, str] = {}


def _normalize(name: str) -> str:
    return name.strip().lower().replace("_", "-").replace(" ", "-")


def register(spec: MethodSpec, replace: bool = False) -> MethodSpec:
    """Register a method spec under its canonical name and aliases.

    Validation happens before any mutation, so a rejected spec leaves
    the registry untouched.
    """
    key = _normalize(spec.name)
    if not replace and key in _REGISTRY:
        raise ValueError(f"method {spec.name!r} is already registered")
    alias_pairs = [
        (alias, alias_key)
        for alias in spec.aliases
        if (alias_key := _normalize(alias)) != key
    ]
    for alias, alias_key in alias_pairs:
        target = _ALIASES.get(alias_key)
        if alias_key in _REGISTRY or (target is not None and target != key):
            raise ValueError(f"alias {alias!r} collides with an existing method")
    stale = [a for a, target in _ALIASES.items() if target == key]
    for alias in stale:
        del _ALIASES[alias]
    _REGISTRY[key] = spec
    for _alias, alias_key in alias_pairs:
        _ALIASES[alias_key] = key
    return spec


def get_method(name: str) -> MethodSpec:
    """Resolve a method (or alias) name to its spec.

    Raises ``KeyError`` listing the registered names on a miss.
    """
    key = _normalize(name)
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown method {name!r}; registered methods: {known}"
        ) from None


def list_methods() -> list[MethodSpec]:
    """All registered method specs, sorted by canonical name."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def method_names() -> tuple[str, ...]:
    """The canonical names of all registered methods, sorted."""
    return tuple(sorted(_REGISTRY))


def spec_for(model: Any) -> MethodSpec:
    """The spec a model instance belongs to (exact class match first)."""
    for spec in _REGISTRY.values():
        if type(model) is spec.cls:
            return spec
    for spec in _REGISTRY.values():
        if isinstance(model, spec.cls):
            return spec
    raise KeyError(
        f"{type(model).__name__} is not a registered power-model class"
    )


def create(
    method: str,
    library: Any = None,
    n_jobs: int | None = None,
    **kwargs: Any,
) -> Any:
    """Build an unfitted model of the named method."""
    spec = get_method(method)
    return spec.factory(library=library, n_jobs=n_jobs, **kwargs)


def fit(
    method: str,
    flow: Any = None,
    train_configs: Any = None,
    workloads: Any = None,
    n_jobs: int | None = None,
    **kwargs: Any,
) -> Any:
    """Construct and fit one method by registry name.

    ``flow`` defaults to a fresh :class:`repro.vlsi.flow.VlsiFlow`;
    ``train_configs``/``workloads`` accept instances or names and default
    to the paper's 2-config split over all eight workloads.  ``n_jobs``
    parallelizes the sub-model fits of the methods that decompose into
    independent tasks; the others ignore it.
    """
    from repro.arch.config import config_by_name
    from repro.arch.workloads import WORKLOADS, workload_by_name
    from repro.vlsi.flow import VlsiFlow

    if flow is None:
        flow = VlsiFlow()
    if train_configs is None:
        train_configs = ["C1", "C15"]
    if workloads is None:
        workloads = WORKLOADS
    configs = [
        config_by_name(c) if isinstance(c, str) else c for c in train_configs
    ]
    workload_list = [
        workload_by_name(w) if isinstance(w, str) else w for w in workloads
    ]
    model = create(method, library=flow.library, n_jobs=n_jobs, **kwargs)
    return model.fit(flow, configs, workload_list)
