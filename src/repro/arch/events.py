"""Event parameters — the performance-simulator outputs AutoPower consumes.

The paper defines event parameters ``E`` as "information collected from
architecture-level performance simulators ... for example, the number of
cache misses and branch mispredictions".  This module fixes the canonical
event vocabulary, the mapping from components to the events that are
relevant to them, and a container type with validation.

All events are *counts over the simulated interval* (a whole workload, or
one 50-cycle window for trace prediction), except ``cycles`` which defines
the interval length.  Rate features (events per cycle) are derived by the
feature extractors, not stored here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["COMPONENT_EVENTS", "EVENT_NAMES", "EventBatch", "EventParams"]

EVENT_NAMES: tuple[str, ...] = (
    "cycles",
    "instructions",
    "fetch_packets",
    "fetch_bubbles",
    "decode_uops",
    "rename_uops",
    "branch_lookups",
    "branch_mispredicts",
    "btb_hits",
    "icache_accesses",
    "icache_misses",
    "dcache_accesses",
    "dcache_misses",
    "dcache_writebacks",
    "mshr_allocations",
    "itlb_accesses",
    "itlb_misses",
    "dtlb_accesses",
    "dtlb_misses",
    "rob_allocations",
    "rob_commits",
    "rob_flushes",
    "int_issues",
    "fp_issues",
    "mem_issues",
    "regfile_int_reads",
    "regfile_int_writes",
    "regfile_fp_reads",
    "regfile_fp_writes",
    "ldq_allocations",
    "stq_allocations",
    "fu_int_ops",
    "fu_mul_ops",
    "fu_fp_ops",
    "fu_mem_ops",
)

# Which events feed each component's models (AutoPower trains per component
# and only sees the events of that component — mirroring how McPAT-Calib's
# per-component variant partitions gem5 statistics).
COMPONENT_EVENTS: dict[str, tuple[str, ...]] = {
    "BPTAGE": ("branch_lookups", "branch_mispredicts"),
    "BPBTB": ("branch_lookups", "btb_hits", "branch_mispredicts"),
    "BPOthers": ("branch_lookups", "branch_mispredicts", "fetch_packets"),
    "ICacheTagArray": ("icache_accesses", "icache_misses"),
    "ICacheDataArray": ("icache_accesses", "icache_misses"),
    "ICacheOthers": ("icache_accesses", "icache_misses", "fetch_packets"),
    "RNU": ("rename_uops", "decode_uops", "rob_flushes"),
    "ROB": ("rob_allocations", "rob_commits", "rob_flushes"),
    "Regfile": (
        "regfile_int_reads",
        "regfile_int_writes",
        "regfile_fp_reads",
        "regfile_fp_writes",
    ),
    "DCacheTagArray": ("dcache_accesses", "dcache_misses"),
    "DCacheDataArray": ("dcache_accesses", "dcache_misses", "dcache_writebacks"),
    "DCacheOthers": ("dcache_accesses", "dcache_misses", "mshr_allocations"),
    "FP-ISU": ("fp_issues", "decode_uops"),
    "Int-ISU": ("int_issues", "decode_uops"),
    "Mem-ISU": ("mem_issues", "decode_uops"),
    "I-TLB": ("itlb_accesses", "itlb_misses"),
    "D-TLB": ("dtlb_accesses", "dtlb_misses"),
    "FU Pool": ("fu_int_ops", "fu_mul_ops", "fu_fp_ops", "fu_mem_ops"),
    "Other Logic": ("instructions", "decode_uops", "rob_commits"),
    "DCacheMSHR": ("mshr_allocations", "dcache_misses"),
    "LSU": ("ldq_allocations", "stq_allocations", "mem_issues", "dcache_accesses"),
    "IFU": ("fetch_packets", "fetch_bubbles", "decode_uops", "icache_accesses"),
}


@dataclass
class EventParams:
    """Event counts for one (configuration, workload) simulation interval."""

    counts: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = set(self.counts) - set(EVENT_NAMES)
        if unknown:
            raise ValueError(f"unknown event names: {sorted(unknown)}")
        missing = set(EVENT_NAMES) - set(self.counts)
        if missing:
            raise ValueError(f"missing event names: {sorted(missing)}")
        for name, value in self.counts.items():
            if value < 0:
                raise ValueError(f"event {name} is negative: {value}")
        if self.counts["cycles"] <= 0:
            raise ValueError("cycles must be positive")

    def __getitem__(self, name: str) -> float:
        return self.counts[name]

    @property
    def cycles(self) -> float:
        return self.counts["cycles"]

    @property
    def ipc(self) -> float:
        return self.counts["instructions"] / self.counts["cycles"]

    def rate(self, name: str) -> float:
        """Events per cycle for the given event."""
        return self.counts[name] / self.counts["cycles"]

    def for_component(self, component_name: str) -> dict[str, float]:
        """The event sub-dict relevant to one component (raw counts)."""
        try:
            names = COMPONENT_EVENTS[component_name]
        except KeyError:
            raise KeyError(f"no event mapping for component {component_name!r}") from None
        return {name: self.counts[name] for name in names}

    def rates_for_component(self, component_name: str) -> dict[str, float]:
        """Per-cycle event rates relevant to one component."""
        return {
            name: value / self.cycles
            for name, value in self.for_component(component_name).items()
        }

    def scaled(self, factor: float) -> EventParams:
        """A copy with every count (including cycles) multiplied by factor."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return EventParams({k: v * factor for k, v in self.counts.items()})


_EVENT_INDEX: dict[str, int] = {name: i for i, name in enumerate(EVENT_NAMES)}


class EventBatch:
    """Stacked event counts for many simulation intervals.

    The matrix has one row per interval and one column per event in
    ``EVENT_NAMES`` order.  Batched feature extraction and the batch
    prediction APIs consume this instead of a list of
    :class:`EventParams`, so a trace sweep touches no per-window dicts.
    """

    __slots__ = ("matrix",)

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
        if matrix.shape[1] != len(EVENT_NAMES):
            raise ValueError(
                f"event matrix has {matrix.shape[1]} columns, "
                f"expected {len(EVENT_NAMES)}"
            )
        if matrix.shape[0] == 0:
            raise ValueError("event matrix must have at least one row")
        if np.any(matrix < 0):
            raise ValueError("event counts must be non-negative")
        if np.any(matrix[:, _EVENT_INDEX["cycles"]] <= 0):
            raise ValueError("cycles must be positive")
        self.matrix = matrix

    @classmethod
    def from_events(cls, events) -> EventBatch:
        """Stack a sequence of :class:`EventParams` (or pass one through)."""
        if isinstance(events, EventBatch):
            return events
        if isinstance(events, EventParams):
            events = [events]
        rows = [[e.counts[name] for name in EVENT_NAMES] for e in events]
        return cls(np.array(rows, dtype=float))

    def __len__(self) -> int:
        return self.matrix.shape[0]

    def __getitem__(self, i: int) -> EventParams:
        row = self.matrix[i]
        return EventParams({name: float(row[j]) for name, j in _EVENT_INDEX.items()})

    def column(self, name: str) -> np.ndarray:
        """The per-interval counts of one event."""
        try:
            return self.matrix[:, _EVENT_INDEX[name]]
        except KeyError:
            raise KeyError(f"unknown event name {name!r}") from None

    @property
    def cycles(self) -> np.ndarray:
        return self.matrix[:, _EVENT_INDEX["cycles"]]

    @property
    def ipc(self) -> np.ndarray:
        return self.matrix[:, _EVENT_INDEX["instructions"]] / self.cycles

    def rate(self, name: str) -> np.ndarray:
        """Events per cycle for the given event, per interval."""
        return self.column(name) / self.cycles

    def rates_for_component(self, component_name: str) -> dict[str, np.ndarray]:
        """Per-cycle event rate vectors relevant to one component."""
        try:
            names = COMPONENT_EVENTS[component_name]
        except KeyError:
            raise KeyError(
                f"no event mapping for component {component_name!r}"
            ) from None
        cycles = self.cycles
        return {name: self.column(name) / cycles for name in names}
