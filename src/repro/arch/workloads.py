"""Workload profiles standing in for riscv-tests binaries and GEMM/SPMM.

The paper evaluates on eight riscv-tests workloads (dhrystone, median,
multiply, qsort, rsort, towers, spmv, vvadd) and uses two large workloads
with millions of cycles (GEMM, SPMM) for time-based power-trace prediction.
We cannot run the RISC-V binaries offline, so each workload is modelled as
the *profile* the downstream pipeline actually consumes:

* a dynamic instruction mix (ALU / multiply / FP / load / store / branch),
* branch predictability and instruction/data footprints that drive the
  performance simulator's miss and misprediction models,
* intrinsic ILP, which bounds achievable IPC,
* a phase structure used by the windowed trace generator for the two
  large workloads.

Program-level features — the microarchitecture-independent inputs the
paper adds to the SRAM activity model — are derived directly from these
profiles (they play the role of static/ISA-level program analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "LARGE_WORKLOADS",
    "Phase",
    "WORKLOADS",
    "Workload",
    "all_workloads",
    "workload_by_name",
]


@dataclass(frozen=True)
class Phase:
    """One execution phase of a large workload.

    ``weight`` is the fraction of total cycles spent in the phase;
    ``activity_scale`` multiplies the workload's average activity;
    ``ripple_amplitude``/``ripple_period`` describe a periodic modulation
    (in units of 50-cycle windows) such as the blocking structure of a
    tiled GEMM; ``noise`` is the relative magnitude of window-to-window
    jitter.
    """

    name: str
    weight: float
    activity_scale: float
    ripple_amplitude: float = 0.0
    ripple_period: float = 16.0
    noise: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise ValueError(f"phase {self.name}: weight must be in (0, 1]")
        if self.activity_scale <= 0.0:
            raise ValueError(f"phase {self.name}: activity_scale must be > 0")
        if self.ripple_period <= 0.0:
            raise ValueError(f"phase {self.name}: ripple_period must be > 0")


@dataclass(frozen=True)
class Workload:
    """Profile of one benchmark program.

    Instruction-mix fractions must sum to 1.  Footprints are in bytes.
    ``branch_entropy`` in [0, 1]: 0 = perfectly predictable branches,
    1 = essentially random.  ``locality`` in [0, 1]: 1 = streaming/unit
    stride, 0 = pointer chasing.  ``ilp`` is the intrinsic instruction-level
    parallelism that caps IPC on a perfectly provisioned machine.
    """

    name: str
    instructions: int
    frac_int_alu: float
    frac_int_mul: float
    frac_fp: float
    frac_load: float
    frac_store: float
    frac_branch: float
    branch_entropy: float
    icache_footprint: int
    dcache_footprint: int
    locality: float
    ilp: float
    phases: tuple[Phase, ...] = field(default=())

    def __post_init__(self) -> None:
        mix = (
            self.frac_int_alu
            + self.frac_int_mul
            + self.frac_fp
            + self.frac_load
            + self.frac_store
            + self.frac_branch
        )
        if abs(mix - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: instruction mix sums to {mix}, not 1.0")
        for attr in ("branch_entropy", "locality"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {attr} must be in [0, 1]")
        if self.instructions <= 0:
            raise ValueError(f"{self.name}: instructions must be positive")
        if self.ilp < 1.0:
            raise ValueError(f"{self.name}: ilp must be >= 1")
        if self.phases:
            total = sum(p.weight for p in self.phases)
            if abs(total - 1.0) > 1e-9:
                raise ValueError(f"{self.name}: phase weights sum to {total}, not 1.0")

    @property
    def is_large(self) -> bool:
        """Large workloads carry a phase structure for trace prediction."""
        return bool(self.phases)

    def program_features(self) -> dict[str, float]:
        """Microarchitecture-independent program-level features.

        These are the features the paper adds to the SRAM activity model
        because they are immune to performance-simulator inaccuracy.
        """
        n = float(self.instructions)
        return {
            "prog_instructions": n,
            "prog_branches": n * self.frac_branch,
            "prog_loads": n * self.frac_load,
            "prog_stores": n * self.frac_store,
            "prog_fp_ops": n * self.frac_fp,
            "prog_mul_ops": n * self.frac_int_mul,
            "prog_branch_entropy": self.branch_entropy,
            "prog_locality": self.locality,
            "prog_icache_footprint": float(self.icache_footprint),
            "prog_dcache_footprint": float(self.dcache_footprint),
            "prog_ilp": self.ilp,
        }


# ---------------------------------------------------------------------------
# The eight riscv-tests evaluation workloads.  Profiles are hand-written to
# reflect the well-known character of each benchmark (e.g. vvadd streams,
# qsort is branchy with poor locality, multiply is ALU/mul bound).
# ---------------------------------------------------------------------------
WORKLOADS: tuple[Workload, ...] = (
    Workload(
        name="dhrystone",
        instructions=200_000,
        frac_int_alu=0.46,
        frac_int_mul=0.02,
        frac_fp=0.00,
        frac_load=0.23,
        frac_store=0.13,
        frac_branch=0.16,
        branch_entropy=0.18,
        icache_footprint=12_288,
        dcache_footprint=8_192,
        locality=0.82,
        ilp=2.6,
    ),
    Workload(
        name="median",
        instructions=40_000,
        frac_int_alu=0.38,
        frac_int_mul=0.00,
        frac_fp=0.00,
        frac_load=0.28,
        frac_store=0.12,
        frac_branch=0.22,
        branch_entropy=0.42,
        icache_footprint=4_096,
        dcache_footprint=16_384,
        locality=0.66,
        ilp=2.1,
    ),
    Workload(
        name="multiply",
        instructions=60_000,
        frac_int_alu=0.45,
        frac_int_mul=0.25,
        frac_fp=0.00,
        frac_load=0.12,
        frac_store=0.06,
        frac_branch=0.12,
        branch_entropy=0.10,
        icache_footprint=2_048,
        dcache_footprint=8_192,
        locality=0.88,
        ilp=4.6,
    ),
    Workload(
        name="qsort",
        instructions=160_000,
        frac_int_alu=0.33,
        frac_int_mul=0.00,
        frac_fp=0.00,
        frac_load=0.30,
        frac_store=0.14,
        frac_branch=0.23,
        branch_entropy=0.58,
        icache_footprint=6_144,
        dcache_footprint=65_536,
        locality=0.38,
        ilp=1.8,
    ),
    Workload(
        name="rsort",
        instructions=180_000,
        frac_int_alu=0.30,
        frac_int_mul=0.00,
        frac_fp=0.00,
        frac_load=0.32,
        frac_store=0.24,
        frac_branch=0.14,
        branch_entropy=0.16,
        icache_footprint=4_096,
        dcache_footprint=24_576,
        locality=0.60,
        ilp=3.2,
    ),
    Workload(
        name="towers",
        instructions=50_000,
        frac_int_alu=0.40,
        frac_int_mul=0.00,
        frac_fp=0.00,
        frac_load=0.24,
        frac_store=0.16,
        frac_branch=0.20,
        branch_entropy=0.30,
        icache_footprint=3_072,
        dcache_footprint=12_288,
        locality=0.72,
        ilp=1.9,
    ),
    Workload(
        name="spmv",
        instructions=220_000,
        frac_int_alu=0.22,
        frac_int_mul=0.02,
        frac_fp=0.18,
        frac_load=0.38,
        frac_store=0.08,
        frac_branch=0.12,
        branch_entropy=0.34,
        icache_footprint=4_096,
        dcache_footprint=262_144,
        locality=0.25,
        ilp=2.0,
    ),
    Workload(
        name="vvadd",
        instructions=120_000,
        frac_int_alu=0.14,
        frac_int_mul=0.00,
        frac_fp=0.20,
        frac_load=0.38,
        frac_store=0.22,
        frac_branch=0.06,
        branch_entropy=0.04,
        icache_footprint=1_024,
        dcache_footprint=196_608,
        locality=0.96,
        ilp=3.8,
    ),
)

# ---------------------------------------------------------------------------
# Large workloads (millions of cycles) for time-based trace prediction.
# GEMM is a tiled dense matmul: a short ramp, a long compute-dominated
# steady state with blocking ripples, and a writeback tail.  SPMM is a
# sparse matmul: burstier, memory-bound, with larger window-level noise.
# ---------------------------------------------------------------------------
LARGE_WORKLOADS: tuple[Workload, ...] = (
    Workload(
        name="gemm",
        instructions=3_000_000,
        frac_int_alu=0.20,
        frac_int_mul=0.01,
        frac_fp=0.38,
        frac_load=0.26,
        frac_store=0.08,
        frac_branch=0.07,
        branch_entropy=0.05,
        icache_footprint=2_048,
        dcache_footprint=786_432,
        locality=0.85,
        ilp=3.6,
        phases=(
            Phase("ramp", 0.08, 0.72, ripple_amplitude=0.05, ripple_period=10.0),
            Phase("compute", 0.80, 1.10, ripple_amplitude=0.12, ripple_period=24.0),
            Phase("writeback", 0.12, 0.78, ripple_amplitude=0.06, ripple_period=12.0),
        ),
    ),
    Workload(
        name="spmm",
        instructions=2_400_000,
        frac_int_alu=0.24,
        frac_int_mul=0.02,
        frac_fp=0.26,
        frac_load=0.34,
        frac_store=0.06,
        frac_branch=0.08,
        branch_entropy=0.40,
        icache_footprint=4_096,
        dcache_footprint=1_048_576,
        locality=0.30,
        ilp=2.2,
        phases=(
            Phase("index-build", 0.15, 0.82, ripple_amplitude=0.08, ripple_period=14.0, noise=0.05),
            Phase("sparse-compute", 0.70, 1.12, ripple_amplitude=0.18, ripple_period=30.0, noise=0.07),
            Phase("gather-tail", 0.15, 0.70, ripple_amplitude=0.10, ripple_period=18.0, noise=0.05),
        ),
    ),
)

_ALL = {w.name: w for w in WORKLOADS + LARGE_WORKLOADS}


def workload_by_name(name: str) -> Workload:
    """Look up any workload (evaluation or large) by name."""
    try:
        return _ALL[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; expected one of {sorted(_ALL)}"
        ) from None


def all_workloads() -> tuple[Workload, ...]:
    """All workloads: the eight riscv-tests profiles plus GEMM and SPMM."""
    return WORKLOADS + LARGE_WORKLOADS
