"""The 22 design components and their hardware parameters (Table III).

Each component is modelled at the architecture level by the subset of
hardware parameters Table III assigns to it.  The same subsets drive the
RTL generator's ground-truth structure, the synthesizer's gating policies
and AutoPower's per-component feature extraction — exactly the information
boundary the paper assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import HARDWARE_PARAMETERS

__all__ = ["COMPONENTS", "Component", "component_by_name", "sram_components"]


@dataclass(frozen=True)
class Component:
    """One architecture-level design component.

    Attributes
    ----------
    name:
        Component name as printed in Table III.
    hardware_parameters:
        The architecture-level hardware parameters of the component.
    has_sram:
        Whether the component contains SRAM positions (caches, big tables).
    domain:
        Coarse functional domain, used by the synthesizer's gating policy
        and the activity simulator (``frontend`` / ``backend`` / ``memory``).
    """

    name: str
    hardware_parameters: tuple[str, ...]
    has_sram: bool
    domain: str

    def __post_init__(self) -> None:
        unknown = set(self.hardware_parameters) - set(HARDWARE_PARAMETERS)
        if unknown:
            raise ValueError(f"{self.name}: unknown parameters {sorted(unknown)}")
        if self.domain not in ("frontend", "backend", "memory"):
            raise ValueError(f"{self.name}: bad domain {self.domain!r}")


# Table III, with "All" for Other Logic expanded to the full parameter set.
COMPONENTS: tuple[Component, ...] = (
    Component("BPTAGE", ("FetchWidth", "BranchCount"), True, "frontend"),
    Component("BPBTB", ("FetchWidth", "BranchCount"), True, "frontend"),
    Component("BPOthers", ("FetchWidth", "BranchCount"), False, "frontend"),
    Component("ICacheTagArray", ("ICacheWay", "ICacheFetchBytes"), True, "frontend"),
    Component("ICacheDataArray", ("ICacheWay", "ICacheFetchBytes"), True, "frontend"),
    Component("ICacheOthers", ("ICacheWay", "ICacheFetchBytes"), False, "frontend"),
    Component("RNU", ("DecodeWidth",), False, "backend"),
    Component("ROB", ("DecodeWidth", "RobEntry"), True, "backend"),
    Component(
        "Regfile", ("DecodeWidth", "IntPhyRegister", "FpPhyRegister"), False, "backend"
    ),
    Component(
        "DCacheTagArray", ("DCacheWay", "MemIssueWidth", "DTLBEntry"), True, "memory"
    ),
    Component("DCacheDataArray", ("DCacheWay", "MemIssueWidth"), True, "memory"),
    Component(
        "DCacheOthers", ("DCacheWay", "MemIssueWidth", "DTLBEntry"), False, "memory"
    ),
    Component("FP-ISU", ("DecodeWidth", "FpIssueWidth"), False, "backend"),
    Component("Int-ISU", ("DecodeWidth", "IntIssueWidth"), False, "backend"),
    Component("Mem-ISU", ("DecodeWidth", "MemIssueWidth"), False, "backend"),
    Component("I-TLB", ("ITLBEntry",), True, "frontend"),
    Component("D-TLB", ("DTLBEntry",), True, "memory"),
    Component(
        "FU Pool", ("MemIssueWidth", "FpIssueWidth", "IntIssueWidth"), False, "backend"
    ),
    Component("Other Logic", tuple(HARDWARE_PARAMETERS), False, "backend"),
    Component("DCacheMSHR", ("MSHREntry",), False, "memory"),
    Component("LSU", ("LDQEntry", "STQEntry", "MemIssueWidth"), True, "memory"),
    Component("IFU", ("FetchWidth", "DecodeWidth", "FetchBufferEntry"), True, "frontend"),
)

_BY_NAME = {c.name: c for c in COMPONENTS}


def component_by_name(name: str) -> Component:
    """Look up a component by its Table III name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown component {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from None


def sram_components() -> tuple[Component, ...]:
    """Components that contain at least one SRAM position."""
    return tuple(c for c in COMPONENTS if c.has_sram)
