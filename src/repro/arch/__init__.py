"""Architecture substrate: configurations, components, workloads, events.

This package encodes the paper's experiment setup:

* the 14-row hardware-parameter table (Table II) expanded to the full
  per-parameter form used by the component mapping,
* the 15 BOOM configurations C1..C15,
* the 22 design components and their architecture-level hardware
  parameters (Table III),
* the 8 evaluation workloads from riscv-tests plus the two large
  time-based-trace workloads (GEMM, SPMM), modelled as instruction-mix /
  footprint / phase profiles.
"""

from repro.arch.components import COMPONENTS, Component, component_by_name
from repro.arch.config import (
    BOOM_CONFIGS,
    BoomConfig,
    config_by_name,
    config_matrix,
)
from repro.arch.events import EVENT_NAMES, EventParams
from repro.arch.params import HARDWARE_PARAMETERS, expand_raw_parameters
from repro.arch.workloads import (
    LARGE_WORKLOADS,
    WORKLOADS,
    Workload,
    workload_by_name,
)

__all__ = [
    "BOOM_CONFIGS",
    "BoomConfig",
    "COMPONENTS",
    "Component",
    "EVENT_NAMES",
    "EventParams",
    "HARDWARE_PARAMETERS",
    "LARGE_WORKLOADS",
    "WORKLOADS",
    "Workload",
    "component_by_name",
    "config_by_name",
    "config_matrix",
    "expand_raw_parameters",
    "workload_by_name",
]
