"""Hardware-parameter definitions (expanded form of the paper's Table II).

Table II lists 14 rows; several rows set two parameters at once
("LDQ/STQEntry", "Mem/FpIssueWidth", "DCache/ICacheWay").  The expanded
parameter set below is what the component mapping (Table III) refers to.
``ITLBEntry`` is not in Table II; BOOM ties the I-TLB size to the D-TLB
entry count in the evaluated configurations, so we expand it the same way.
"""

from __future__ import annotations

__all__ = ["HARDWARE_PARAMETERS", "RAW_PARAMETER_ROWS", "expand_raw_parameters"]

# Expanded architecture-level hardware parameters, in canonical order.
HARDWARE_PARAMETERS: tuple[str, ...] = (
    "FetchWidth",
    "DecodeWidth",
    "FetchBufferEntry",
    "RobEntry",
    "IntPhyRegister",
    "FpPhyRegister",
    "LDQEntry",
    "STQEntry",
    "BranchCount",
    "MemIssueWidth",
    "FpIssueWidth",
    "IntIssueWidth",
    "DCacheWay",
    "ICacheWay",
    "DTLBEntry",
    "ITLBEntry",
    "MSHREntry",
    "ICacheFetchBytes",
)

# The 14 raw rows exactly as printed in Table II of the paper.
RAW_PARAMETER_ROWS: tuple[str, ...] = (
    "FetchWidth",
    "DecodeWidth",
    "FetchBufferEntry",
    "RobEntry",
    "IntPhyRegister",
    "FpPhyRegister",
    "LDQ/STQEntry",
    "BranchCount",
    "Mem/FpIssueWidth",
    "IntIssueWidth",
    "DCache/ICacheWay",
    "DTLBEntry",
    "MSHREntry",
    "ICacheFetchBytes",
)

# How each raw Table II row expands into canonical parameters.
_RAW_EXPANSION: dict[str, tuple[str, ...]] = {
    "FetchWidth": ("FetchWidth",),
    "DecodeWidth": ("DecodeWidth",),
    "FetchBufferEntry": ("FetchBufferEntry",),
    "RobEntry": ("RobEntry",),
    "IntPhyRegister": ("IntPhyRegister",),
    "FpPhyRegister": ("FpPhyRegister",),
    "LDQ/STQEntry": ("LDQEntry", "STQEntry"),
    "BranchCount": ("BranchCount",),
    "Mem/FpIssueWidth": ("MemIssueWidth", "FpIssueWidth"),
    "IntIssueWidth": ("IntIssueWidth",),
    "DCache/ICacheWay": ("DCacheWay", "ICacheWay"),
    "DTLBEntry": ("DTLBEntry", "ITLBEntry"),
    "MSHREntry": ("MSHREntry",),
    "ICacheFetchBytes": ("ICacheFetchBytes",),
}


def expand_raw_parameters(raw: dict[str, int]) -> dict[str, int]:
    """Expand a 14-row Table II dict into the canonical 18-parameter dict.

    Raises ``KeyError`` if a raw row is missing and ``ValueError`` on
    unknown rows, so malformed configuration tables fail immediately.
    """
    unknown = set(raw) - set(RAW_PARAMETER_ROWS)
    if unknown:
        raise ValueError(f"unknown Table II rows: {sorted(unknown)}")
    expanded: dict[str, int] = {}
    for row in RAW_PARAMETER_ROWS:
        value = raw[row]  # KeyError on missing row is intentional
        if value <= 0:
            raise ValueError(f"parameter {row} must be positive, got {value}")
        for name in _RAW_EXPANSION[row]:
            expanded[name] = int(value)
    return expanded
