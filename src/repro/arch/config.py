"""The 15 BOOM CPU configurations from Table II of the paper."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.params import (
    HARDWARE_PARAMETERS,
    RAW_PARAMETER_ROWS,
    expand_raw_parameters,
)

__all__ = ["BOOM_CONFIGS", "BoomConfig", "config_by_name", "config_matrix"]


@dataclass(frozen=True)
class BoomConfig:
    """One out-of-order RISC-V BOOM configuration.

    ``params`` maps every canonical hardware-parameter name (see
    :data:`repro.arch.params.HARDWARE_PARAMETERS`) to its value.
    """

    name: str
    params: dict[str, int] = field(hash=False)

    def __post_init__(self) -> None:
        missing = set(HARDWARE_PARAMETERS) - set(self.params)
        if missing:
            raise ValueError(f"{self.name}: missing parameters {sorted(missing)}")
        extra = set(self.params) - set(HARDWARE_PARAMETERS)
        if extra:
            raise ValueError(f"{self.name}: unknown parameters {sorted(extra)}")

    def __getitem__(self, key: str) -> int:
        return self.params[key]

    def subset(self, names: tuple[str, ...] | list[str]) -> dict[str, int]:
        """Parameter sub-dict for a component's Table III parameter list."""
        return {name: self.params[name] for name in names}

    def vector(self, names: tuple[str, ...] | list[str] | None = None) -> np.ndarray:
        """Parameter values as a float vector, in canonical order by default."""
        if names is None:
            names = HARDWARE_PARAMETERS
        return np.array([self.params[n] for n in names], dtype=float)

    @property
    def index(self) -> int:
        """1-based configuration index (C1 -> 1, ..., C15 -> 15)."""
        return int(self.name.lstrip("C"))


# Table II, transcribed column-wise: raw row -> 15 values (C1..C15).
_TABLE_II: dict[str, tuple[int, ...]] = {
    "FetchWidth": (4, 4, 4, 4, 4, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8),
    "DecodeWidth": (1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4, 5, 5, 5),
    "FetchBufferEntry": (5, 8, 16, 8, 16, 24, 18, 24, 30, 24, 32, 40, 30, 35, 40),
    "RobEntry": (16, 32, 48, 64, 64, 80, 81, 96, 114, 112, 128, 136, 125, 130, 140),
    "IntPhyRegister": (36, 53, 68, 64, 80, 88, 88, 110, 112, 108, 128, 136, 108, 128, 140),
    "FpPhyRegister": (36, 48, 56, 56, 64, 72, 88, 96, 112, 108, 128, 136, 108, 128, 140),
    "LDQ/STQEntry": (4, 8, 16, 12, 16, 20, 16, 24, 32, 24, 32, 36, 24, 32, 36),
    "BranchCount": (6, 8, 10, 10, 12, 14, 14, 16, 16, 18, 20, 20, 18, 20, 20),
    "Mem/FpIssueWidth": (1, 1, 1, 1, 1, 1, 1, 1, 2, 1, 2, 2, 2, 2, 2),
    "IntIssueWidth": (1, 1, 1, 1, 2, 2, 2, 3, 3, 4, 4, 4, 5, 5, 5),
    "DCache/ICacheWay": (2, 4, 8, 4, 4, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8),
    "DTLBEntry": (8, 8, 16, 8, 8, 16, 16, 16, 32, 32, 32, 32, 32, 32, 32),
    "MSHREntry": (2, 2, 4, 2, 2, 4, 4, 4, 4, 4, 4, 8, 8, 8, 8),
    "ICacheFetchBytes": (2, 2, 2, 2, 2, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4),
}


def _build_configs() -> tuple[BoomConfig, ...]:
    n = len(next(iter(_TABLE_II.values())))
    for row, values in _TABLE_II.items():
        if len(values) != n:
            raise AssertionError(f"Table II row {row} has {len(values)} != {n} entries")
    if set(_TABLE_II) != set(RAW_PARAMETER_ROWS):
        raise AssertionError("Table II rows out of sync with RAW_PARAMETER_ROWS")
    configs = []
    for i in range(n):
        raw = {row: _TABLE_II[row][i] for row in _TABLE_II}
        configs.append(BoomConfig(name=f"C{i + 1}", params=expand_raw_parameters(raw)))
    return tuple(configs)


BOOM_CONFIGS: tuple[BoomConfig, ...] = _build_configs()

_BY_NAME = {cfg.name: cfg for cfg in BOOM_CONFIGS}


def config_by_name(name: str) -> BoomConfig:
    """Look up a configuration by its paper name (``"C1"`` .. ``"C15"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown configuration {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from None


def config_matrix(
    configs: tuple[BoomConfig, ...] | list[BoomConfig] | None = None,
    names: tuple[str, ...] | None = None,
) -> np.ndarray:
    """Stack configurations into a (n_configs, n_params) float matrix."""
    if configs is None:
        configs = BOOM_CONFIGS
    return np.stack([cfg.vector(names) for cfg in configs])
