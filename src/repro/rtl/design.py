"""Intermediate representation of a generated RTL design."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ComponentRtl", "RtlDesign", "SramBlockSpec", "SramPositionRtl"]


@dataclass(frozen=True)
class SramBlockSpec:
    """Shape of the identical SRAM blocks implementing one SRAM position.

    ``count`` is the number of identical blocks (banks); ``mask_sectors``
    is the write-mask granularity of one block (1 = no partial writes).
    """

    width: int
    depth: int
    count: int
    mask_sectors: int = 1

    def __post_init__(self) -> None:
        for attr in ("width", "depth", "count", "mask_sectors"):
            value = getattr(self, attr)
            if value < 1:
                raise ValueError(f"SramBlockSpec.{attr} must be >= 1, got {value}")
        if self.width % self.mask_sectors != 0:
            raise ValueError(
                f"width {self.width} not divisible by mask_sectors {self.mask_sectors}"
            )

    @property
    def bits_per_block(self) -> int:
        return self.width * self.depth

    @property
    def capacity_bits(self) -> int:
        """Total bits across all blocks of the position."""
        return self.width * self.depth * self.count

    @property
    def throughput_bits(self) -> int:
        """Bits accessible per cycle: width times the number of banks."""
        return self.width * self.count


@dataclass(frozen=True)
class SramPositionRtl:
    """One SRAM position of a component, as realized in RTL."""

    name: str
    component: str
    block: SramBlockSpec


@dataclass(frozen=True)
class ComponentRtl:
    """Structural summary of one component's RTL.

    ``registers`` is the flip-flop count before synthesis-level gating
    decisions; ``comb_units`` is an abstract combinational complexity in
    gate-equivalents that the synthesizer maps onto library cells.
    """

    name: str
    registers: int
    comb_units: float
    sram_positions: tuple[SramPositionRtl, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.registers < 0:
            raise ValueError(f"{self.name}: negative register count")
        if self.comb_units < 0:
            raise ValueError(f"{self.name}: negative comb_units")
        for pos in self.sram_positions:
            if pos.component != self.name:
                raise ValueError(
                    f"SRAM position {pos.name} belongs to {pos.component}, "
                    f"not {self.name}"
                )

    def position(self, name: str) -> SramPositionRtl:
        for pos in self.sram_positions:
            if pos.name == name:
                return pos
        raise KeyError(f"{self.name} has no SRAM position {name!r}")


@dataclass(frozen=True)
class RtlDesign:
    """A full generated design: one entry per Table III component."""

    config_name: str
    components: tuple[ComponentRtl, ...]

    def component(self, name: str) -> ComponentRtl:
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(f"design {self.config_name} has no component {name!r}")

    @property
    def total_registers(self) -> int:
        return sum(c.registers for c in self.components)

    @property
    def total_comb_units(self) -> float:
        return sum(c.comb_units for c in self.components)

    def all_sram_positions(self) -> tuple[SramPositionRtl, ...]:
        return tuple(
            pos for comp in self.components for pos in comp.sram_positions
        )

    @property
    def total_sram_bits(self) -> int:
        return sum(p.block.capacity_bits for p in self.all_sram_positions())
