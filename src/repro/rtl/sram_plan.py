"""Ground-truth SRAM structure of every component (the hidden scaling laws).

Each SRAM position's block shape follows the two scaling patterns the paper
observes in real processors:

* **capacity scaling** — total bits scale linearly with a product of
  hardware parameters,
* **throughput scaling** — width x count scales linearly with a product of
  hardware parameters (or stays constant).

A :class:`ScalingLaw` is ``coefficient * prod(params)``; the empty parameter
tuple means a constant.  The plan for the IFU metadata table reproduces the
paper's Table I example exactly: width ``30 * FetchWidth``, depth
``8 * DecodeWidth``, count 1 (capacity ``240 * FetchWidth * DecodeWidth``).

These tables are *label-generation ground truth*.  AutoPower never reads
them — its scaling-pattern hardware model has to rediscover the laws from
the block shapes of the 2-3 training configurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import BoomConfig
from repro.rtl.design import SramBlockSpec

__all__ = [
    "SRAM_POSITION_PLANS",
    "ScalingLaw",
    "SramPositionPlan",
    "plan_violations",
    "positions_for",
]


@dataclass(frozen=True)
class ScalingLaw:
    """``value = coefficient * prod(params) / prod(inverse_params)``.

    ``inverse_params`` lets a *derived* quantity (e.g. ROB depth =
    capacity / throughput) be expressed even though the detector only ever
    fits direct proportionality on capacity and throughput — matching the
    paper's note that width/depth/count themselves often do not scale
    linearly.

    ``rounding`` widens the valid configuration space for design-space
    exploration: ``"exact"`` (the default) rejects non-integral values,
    while ``"up"`` rounds them up — the hardware answer for a banked or
    derived quantity (a 1.5-bank BTB is built as 2 banks, a 33.3-row ROB
    payload as 34 rows).  On every value that *is* integral the two modes
    agree, so the paper's C1–C15 shapes are untouched.
    """

    coefficient: float
    params: tuple[str, ...] = ()
    inverse_params: tuple[str, ...] = ()
    rounding: str = "exact"

    def __post_init__(self) -> None:
        if self.rounding not in ("exact", "up"):
            raise ValueError(
                f"unknown rounding mode {self.rounding!r}; "
                "expected 'exact' or 'up'"
            )

    def evaluate(self, config: BoomConfig) -> float:
        value = self.coefficient
        for name in self.params:
            value *= config[name]
        for name in self.inverse_params:
            value /= config[name]
        return value

    def evaluate_int(self, config: BoomConfig) -> int:
        value = self.evaluate(config)
        if self.rounding == "up":
            rounded = math.ceil(value - 1e-6)
        else:
            rounded = round(value)
            if abs(value - rounded) > 1e-6:
                raise ValueError(
                    f"scaling law {self.coefficient} * {self.params} gives "
                    f"non-integral value {value} for {config.name}"
                )
        if rounded < 1:
            raise ValueError(
                f"scaling law {self.coefficient} * {self.params} gives "
                f"non-positive value {value} for {config.name}"
            )
        return int(rounded)


@dataclass(frozen=True)
class SramPositionPlan:
    """Ground-truth plan of one SRAM position."""

    name: str
    component: str
    width: ScalingLaw
    depth: ScalingLaw
    count: ScalingLaw
    mask_sectors: int = 1

    def block(self, config: BoomConfig) -> SramBlockSpec:
        return SramBlockSpec(
            width=self.width.evaluate_int(config),
            depth=self.depth.evaluate_int(config),
            count=self.count.evaluate_int(config),
            mask_sectors=self.mask_sectors,
        )


# ---------------------------------------------------------------------------
# The 14 SRAM positions across the 11 SRAM-bearing components.
# ---------------------------------------------------------------------------
SRAM_POSITION_PLANS: tuple[SramPositionPlan, ...] = (
    # Branch predictor: TAGE history tables — capacity scales with the
    # branch-tag budget, throughput constant (one prediction per cycle).
    SramPositionPlan(
        name="tage_table",
        component="BPTAGE",
        width=ScalingLaw(12.0),
        depth=ScalingLaw(32.0, ("BranchCount",)),
        count=ScalingLaw(4.0),
        mask_sectors=1,
    ),
    # BTB: banked by fetch width, entries scale with branch budget.  The
    # bank count rounds up (a fractional bank is built whole), which is
    # what keeps fetch widths off the 4-multiple grid explorable.
    SramPositionPlan(
        name="btb",
        component="BPBTB",
        width=ScalingLaw(40.0),
        depth=ScalingLaw(16.0, ("BranchCount",)),
        count=ScalingLaw(0.25, ("FetchWidth",), rounding="up"),
        mask_sectors=1,
    ),
    # I$ tags: all ways probed in parallel -> width scales with ways.
    SramPositionPlan(
        name="icache_tags",
        component="ICacheTagArray",
        width=ScalingLaw(20.0, ("ICacheWay",)),
        depth=ScalingLaw(64.0),
        count=ScalingLaw(1.0),
        mask_sectors=1,
    ),
    # I$ data: fetch-bytes-wide read port, one bank per way.
    SramPositionPlan(
        name="icache_data",
        component="ICacheDataArray",
        width=ScalingLaw(8.0, ("ICacheFetchBytes",)),
        depth=ScalingLaw(256.0),
        count=ScalingLaw(1.0, ("ICacheWay",)),
        mask_sectors=1,
    ),
    # ROB payload: one row holds DecodeWidth uops -> width scales with
    # DecodeWidth, depth is RobEntry / DecodeWidth.  This is the paper's
    # example of a position where width/depth/count do NOT individually
    # scale linearly but capacity (24*RobEntry) and throughput do.  The
    # derived depth rounds up (a partial last row is still a row), so
    # ROB sizes need not divide evenly by the decode width.
    SramPositionPlan(
        name="rob_payload",
        component="ROB",
        width=ScalingLaw(24.0, ("DecodeWidth",)),
        depth=ScalingLaw(
            1.0,
            ("RobEntry",),
            inverse_params=("DecodeWidth",),
            rounding="up",
        ),
        count=ScalingLaw(1.0),
        mask_sectors=1,
    ),
    # D$ tags: ways in parallel, banked per memory port.
    SramPositionPlan(
        name="dcache_tags",
        component="DCacheTagArray",
        width=ScalingLaw(22.0, ("DCacheWay",)),
        depth=ScalingLaw(64.0),
        count=ScalingLaw(1.0, ("MemIssueWidth",)),
        mask_sectors=1,
    ),
    # D$ data: 64-bit subline access, one bank per way; byte write masks.
    SramPositionPlan(
        name="dcache_data",
        component="DCacheDataArray",
        width=ScalingLaw(64.0),
        depth=ScalingLaw(256.0),
        count=ScalingLaw(1.0, ("DCacheWay",)),
        mask_sectors=8,
    ),
    # TLBs: page-table-entry arrays.
    SramPositionPlan(
        name="itlb_entries",
        component="I-TLB",
        width=ScalingLaw(48.0),
        depth=ScalingLaw(1.0, ("ITLBEntry",)),
        count=ScalingLaw(1.0),
        mask_sectors=1,
    ),
    SramPositionPlan(
        name="dtlb_entries",
        component="D-TLB",
        width=ScalingLaw(48.0),
        depth=ScalingLaw(1.0, ("DTLBEntry",)),
        count=ScalingLaw(1.0),
        mask_sectors=1,
    ),
    # Load / store queues.
    SramPositionPlan(
        name="ldq",
        component="LSU",
        width=ScalingLaw(64.0),
        depth=ScalingLaw(1.0, ("LDQEntry",)),
        count=ScalingLaw(1.0),
        mask_sectors=1,
    ),
    SramPositionPlan(
        name="stq",
        component="LSU",
        width=ScalingLaw(72.0),
        depth=ScalingLaw(1.0, ("STQEntry",)),
        count=ScalingLaw(1.0),
        mask_sectors=2,
    ),
    # IFU metadata table — the paper's Table I example, verbatim.
    SramPositionPlan(
        name="meta",
        component="IFU",
        width=ScalingLaw(30.0, ("FetchWidth",)),
        depth=ScalingLaw(8.0, ("DecodeWidth",)),
        count=ScalingLaw(1.0),
        mask_sectors=2,
    ),
    # IFU global-history queue: constant width, depth scales with the
    # decode pipeline depth budget.
    SramPositionPlan(
        name="ghist",
        component="IFU",
        width=ScalingLaw(16.0),
        depth=ScalingLaw(8.0, ("DecodeWidth",)),
        count=ScalingLaw(1.0),
        mask_sectors=1,
    ),
    # IFU fetch buffer data.
    SramPositionPlan(
        name="fb_data",
        component="IFU",
        width=ScalingLaw(34.0, ("FetchWidth",)),
        depth=ScalingLaw(1.0, ("FetchBufferEntry",)),
        count=ScalingLaw(1.0),
        mask_sectors=1,
    ),
)


def positions_for(component_name: str) -> tuple[SramPositionPlan, ...]:
    """Ground-truth position plans of one component (possibly empty)."""
    return tuple(p for p in SRAM_POSITION_PLANS if p.component == component_name)


def plan_violations(config: BoomConfig) -> list[str]:
    """Which position plans a configuration violates (empty = valid).

    The DSE grid generator's validity gate: a grid point whose
    parameters drive any plan to a non-positive or (for exact laws)
    non-integral block shape cannot be built.
    """
    violations = []
    for plan in SRAM_POSITION_PLANS:
        try:
            plan.block(config)
        except ValueError as exc:
            violations.append(f"{plan.component}/{plan.name}: {exc}")
    return violations
