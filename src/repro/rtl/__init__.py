"""RTL design substrate (stands in for Chipyard-generated BOOM RTL).

Given a :class:`~repro.arch.config.BoomConfig`, the generator produces an
:class:`~repro.rtl.design.RtlDesign` — the per-component structural ground
truth: register counts, combinational complexity and SRAM positions broken
into SRAM blocks.  The scaling laws encoded here (linear capacity /
throughput scaling of SRAM, affine register scaling) are the hidden truth
AutoPower's sub-models must rediscover from 2-3 known configurations; no
model in :mod:`repro.core` ever imports the coefficient tables.
"""

from repro.rtl.design import (
    ComponentRtl,
    RtlDesign,
    SramBlockSpec,
    SramPositionRtl,
)
from repro.rtl.generator import RtlGenerator
from repro.rtl.sram_plan import SRAM_POSITION_PLANS, ScalingLaw, SramPositionPlan

__all__ = [
    "ComponentRtl",
    "RtlDesign",
    "RtlGenerator",
    "SRAM_POSITION_PLANS",
    "ScalingLaw",
    "SramBlockSpec",
    "SramPositionPlan",
    "SramPositionRtl",
]
