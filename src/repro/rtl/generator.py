"""RTL generator: BoomConfig -> RtlDesign (per-component structure).

Register counts and combinational complexity are affine functions of each
component's Table III hardware parameters, with interaction terms where a
real design has them (issue-select matrices, register-file port crossbars,
rename maps).  These coefficient tables are label-generation ground truth;
AutoPower's register-count model has to *learn* them from the netlists of
the training configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.components import COMPONENTS
from repro.arch.config import BoomConfig
from repro.rtl.design import ComponentRtl, RtlDesign, SramPositionRtl
from repro.rtl.sram_plan import positions_for

__all__ = ["RtlGenerator", "StructureSpec"]


@dataclass(frozen=True)
class _Term:
    """``coefficient * prod(config[p] for p in params)``; empty = constant."""

    coefficient: float
    params: tuple[str, ...] = ()

    def evaluate(self, config: BoomConfig) -> float:
        value = self.coefficient
        for name in self.params:
            value *= config[name]
        return value


@dataclass(frozen=True)
class StructureSpec:
    """Ground-truth structural model of one component."""

    register_terms: tuple[_Term, ...]
    comb_terms: tuple[_Term, ...]

    def registers(self, config: BoomConfig) -> int:
        return int(round(sum(t.evaluate(config) for t in self.register_terms)))

    def comb_units(self, config: BoomConfig) -> float:
        return float(sum(t.evaluate(config) for t in self.comb_terms))


def _t(coefficient: float, *params: str) -> _Term:
    return _Term(coefficient, params)


# ---------------------------------------------------------------------------
# Ground-truth structure per component.  Register terms only use that
# component's Table III parameters (the information boundary the paper
# assumes); comb terms add realistic super-linear interactions.
# ---------------------------------------------------------------------------
_STRUCTURE: dict[str, StructureSpec] = {
    "BPTAGE": StructureSpec(
        register_terms=(_t(220.0), _t(18.0, "BranchCount"), _t(9.0, "FetchWidth")),
        comb_terms=(_t(900.0), _t(55.0, "BranchCount"), _t(40.0, "FetchWidth")),
    ),
    "BPBTB": StructureSpec(
        register_terms=(_t(170.0), _t(12.0, "BranchCount"), _t(11.0, "FetchWidth")),
        comb_terms=(_t(650.0), _t(38.0, "BranchCount"), _t(30.0, "FetchWidth")),
    ),
    "BPOthers": StructureSpec(
        register_terms=(_t(360.0), _t(10.0, "BranchCount"), _t(26.0, "FetchWidth")),
        comb_terms=(_t(1400.0), _t(45.0, "BranchCount"), _t(80.0, "FetchWidth")),
    ),
    "ICacheTagArray": StructureSpec(
        register_terms=(_t(85.0), _t(15.0, "ICacheWay"), _t(18.0, "ICacheFetchBytes")),
        comb_terms=(_t(380.0), _t(60.0, "ICacheWay"), _t(35.0, "ICacheFetchBytes")),
    ),
    "ICacheDataArray": StructureSpec(
        register_terms=(_t(60.0), _t(9.0, "ICacheWay"), _t(28.0, "ICacheFetchBytes")),
        comb_terms=(
            _t(300.0),
            _t(30.0, "ICacheWay"),
            _t(55.0, "ICacheFetchBytes"),
            _t(6.0, "ICacheWay", "ICacheFetchBytes"),
        ),
    ),
    "ICacheOthers": StructureSpec(
        register_terms=(_t(410.0), _t(28.0, "ICacheWay"), _t(44.0, "ICacheFetchBytes")),
        comb_terms=(_t(1600.0), _t(95.0, "ICacheWay"), _t(110.0, "ICacheFetchBytes")),
    ),
    "RNU": StructureSpec(
        register_terms=(
            _t(160.0),
            _t(310.0, "DecodeWidth"),
            _t(22.0, "DecodeWidth", "DecodeWidth"),
        ),
        comb_terms=(
            _t(800.0),
            _t(650.0, "DecodeWidth"),
            _t(120.0, "DecodeWidth", "DecodeWidth"),
        ),
    ),
    "ROB": StructureSpec(
        register_terms=(
            _t(190.0),
            _t(6.0, "RobEntry"),
            _t(85.0, "DecodeWidth"),
            _t(0.6, "RobEntry", "DecodeWidth"),
        ),
        comb_terms=(
            _t(900.0),
            _t(14.0, "RobEntry"),
            _t(260.0, "DecodeWidth"),
            _t(2.2, "RobEntry", "DecodeWidth"),
        ),
    ),
    "Regfile": StructureSpec(
        # Flop-based physical register files: 64-bit payload + status bit.
        register_terms=(
            _t(120.0),
            _t(65.0, "IntPhyRegister"),
            _t(65.0, "FpPhyRegister"),
        ),
        comb_terms=(
            # Read-port crossbars grow with ports (DecodeWidth) x entries.
            _t(500.0),
            _t(7.5, "DecodeWidth", "IntPhyRegister"),
            _t(6.0, "DecodeWidth", "FpPhyRegister"),
        ),
    ),
    "DCacheTagArray": StructureSpec(
        register_terms=(
            _t(80.0),
            _t(17.0, "DCacheWay"),
            _t(4.0, "DTLBEntry"),
            _t(34.0, "MemIssueWidth"),
        ),
        comb_terms=(
            _t(420.0),
            _t(65.0, "DCacheWay"),
            _t(9.0, "DTLBEntry"),
            _t(120.0, "MemIssueWidth"),
        ),
    ),
    "DCacheDataArray": StructureSpec(
        register_terms=(_t(70.0), _t(11.0, "DCacheWay"), _t(48.0, "MemIssueWidth")),
        comb_terms=(
            _t(340.0),
            _t(38.0, "DCacheWay"),
            _t(150.0, "MemIssueWidth"),
            _t(14.0, "DCacheWay", "MemIssueWidth"),
        ),
    ),
    "DCacheOthers": StructureSpec(
        register_terms=(
            _t(520.0),
            _t(36.0, "DCacheWay"),
            _t(10.0, "DTLBEntry"),
            _t(130.0, "MemIssueWidth"),
        ),
        comb_terms=(
            _t(2100.0),
            _t(120.0, "DCacheWay"),
            _t(25.0, "DTLBEntry"),
            _t(420.0, "MemIssueWidth"),
        ),
    ),
    "FP-ISU": StructureSpec(
        register_terms=(
            _t(130.0),
            _t(55.0, "DecodeWidth"),
            _t(330.0, "FpIssueWidth"),
            _t(20.0, "DecodeWidth", "FpIssueWidth"),
        ),
        comb_terms=(
            _t(700.0),
            _t(140.0, "DecodeWidth"),
            _t(800.0, "FpIssueWidth"),
            _t(95.0, "DecodeWidth", "FpIssueWidth"),
        ),
    ),
    "Int-ISU": StructureSpec(
        register_terms=(
            _t(130.0),
            _t(55.0, "DecodeWidth"),
            _t(330.0, "IntIssueWidth"),
            _t(20.0, "DecodeWidth", "IntIssueWidth"),
        ),
        comb_terms=(
            _t(700.0),
            _t(140.0, "DecodeWidth"),
            _t(800.0, "IntIssueWidth"),
            _t(95.0, "DecodeWidth", "IntIssueWidth"),
        ),
    ),
    "Mem-ISU": StructureSpec(
        register_terms=(
            _t(130.0),
            _t(55.0, "DecodeWidth"),
            _t(330.0, "MemIssueWidth"),
            _t(20.0, "DecodeWidth", "MemIssueWidth"),
        ),
        comb_terms=(
            _t(700.0),
            _t(140.0, "DecodeWidth"),
            _t(800.0, "MemIssueWidth"),
            _t(95.0, "DecodeWidth", "MemIssueWidth"),
        ),
    ),
    "I-TLB": StructureSpec(
        # CAM match lines live in flops.
        register_terms=(_t(70.0), _t(26.0, "ITLBEntry")),
        comb_terms=(_t(280.0), _t(48.0, "ITLBEntry")),
    ),
    "D-TLB": StructureSpec(
        register_terms=(_t(70.0), _t(26.0, "DTLBEntry")),
        comb_terms=(_t(280.0), _t(48.0, "DTLBEntry")),
    ),
    "FU Pool": StructureSpec(
        register_terms=(
            _t(750.0),
            _t(850.0, "IntIssueWidth"),
            _t(1350.0, "FpIssueWidth"),
            _t(680.0, "MemIssueWidth"),
        ),
        comb_terms=(
            _t(4500.0),
            _t(5200.0, "IntIssueWidth"),
            _t(9800.0, "FpIssueWidth"),
            _t(2600.0, "MemIssueWidth"),
        ),
    ),
    "Other Logic": StructureSpec(
        register_terms=(
            _t(1400.0),
            _t(24.0, "FetchWidth"),
            _t(140.0, "DecodeWidth"),
            _t(2.2, "RobEntry"),
            _t(1.1, "IntPhyRegister"),
            _t(1.1, "FpPhyRegister"),
            _t(3.0, "LDQEntry"),
            _t(3.0, "STQEntry"),
            _t(7.0, "BranchCount"),
            _t(55.0, "MemIssueWidth"),
            _t(40.0, "FpIssueWidth"),
            _t(40.0, "IntIssueWidth"),
            _t(14.0, "DCacheWay"),
            _t(14.0, "ICacheWay"),
            _t(2.0, "DTLBEntry"),
            _t(2.0, "ITLBEntry"),
            _t(11.0, "MSHREntry"),
            _t(26.0, "ICacheFetchBytes"),
            _t(20.0, "FetchBufferEntry"),
        ),
        comb_terms=(
            _t(6500.0),
            _t(110.0, "FetchWidth"),
            _t(700.0, "DecodeWidth"),
            _t(9.0, "RobEntry"),
            _t(4.0, "IntPhyRegister"),
            _t(4.0, "FpPhyRegister"),
            _t(30.0, "BranchCount"),
            _t(240.0, "MemIssueWidth"),
            _t(180.0, "FpIssueWidth"),
            _t(180.0, "IntIssueWidth"),
        ),
    ),
    "DCacheMSHR": StructureSpec(
        register_terms=(_t(95.0), _t(135.0, "MSHREntry")),
        comb_terms=(_t(400.0), _t(310.0, "MSHREntry")),
    ),
    "LSU": StructureSpec(
        register_terms=(
            _t(310.0),
            _t(42.0, "LDQEntry"),
            _t(46.0, "STQEntry"),
            _t(250.0, "MemIssueWidth"),
        ),
        comb_terms=(
            _t(1800.0),
            # Age/dependence matrices scale with queue size x ports.
            _t(28.0, "LDQEntry", "MemIssueWidth"),
            _t(32.0, "STQEntry", "MemIssueWidth"),
            _t(90.0, "LDQEntry"),
            _t(95.0, "STQEntry"),
        ),
    ),
    "IFU": StructureSpec(
        register_terms=(
            _t(260.0),
            _t(38.0, "FetchWidth"),
            _t(80.0, "DecodeWidth"),
            _t(16.0, "FetchBufferEntry"),
        ),
        comb_terms=(
            _t(1300.0),
            _t(190.0, "FetchWidth"),
            _t(260.0, "DecodeWidth"),
            _t(40.0, "FetchBufferEntry"),
            _t(5.0, "FetchWidth", "DecodeWidth"),
        ),
    ),
}


class RtlGenerator:
    """Generate the structural RTL view of a configuration.

    Equivalent role to Chipyard RTL elaboration in the paper's flow: it is
    deterministic and purely a function of the configuration.
    """

    def __init__(self) -> None:
        missing = {c.name for c in COMPONENTS} - set(_STRUCTURE)
        if missing:
            raise AssertionError(f"structure table missing components: {missing}")

    def generate(self, config: BoomConfig) -> RtlDesign:
        """Elaborate one configuration into its per-component structure."""
        components = []
        for comp in COMPONENTS:
            spec = _STRUCTURE[comp.name]
            positions = tuple(
                SramPositionRtl(name=plan.name, component=comp.name, block=plan.block(config))
                for plan in positions_for(comp.name)
            )
            if comp.has_sram and not positions:
                raise AssertionError(f"{comp.name} marked has_sram but has no plan")
            if not comp.has_sram and positions:
                raise AssertionError(f"{comp.name} has SRAM plans but has_sram=False")
            components.append(
                ComponentRtl(
                    name=comp.name,
                    registers=spec.registers(config),
                    comb_units=spec.comb_units(config),
                    sram_positions=positions,
                )
            )
        return RtlDesign(config_name=config.name, components=tuple(components))
