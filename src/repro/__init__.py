"""AutoPower reproduction: few-shot architecture-level CPU power modeling.

:mod:`repro.api` is the stable public surface — a ``PowerModel``
protocol, a string-keyed method registry (``api.fit("autopower", ...)``),
versioned ``save_model``/``load_model`` persistence and a batched
``PredictionService``::

    import repro.api as api

    model = api.fit("autopower", train_configs=["C1", "C15"])
    api.save_model(model, "model.json")

The classic class-level quick-reference still works::

    from repro import (
        AutoPower,            # the paper's model
        VlsiFlow,             # synthetic EDA flow (labels)
        BOOM_CONFIGS,         # Table II configurations C1..C15
        WORKLOADS,            # the 8 riscv-tests workload profiles
        config_by_name, workload_by_name,
    )

    flow = VlsiFlow()
    train = [config_by_name("C1"), config_by_name("C15")]
    model = AutoPower(library=flow.library).fit(flow, train, list(WORKLOADS))

    cfg = config_by_name("C8")
    run = flow.run(cfg, workload_by_name("dhrystone"))
    predicted = model.predict_total(cfg, run.events, run.workload)

See ``examples/`` for runnable scenarios and ``repro.experiments`` for the
paper's tables and figures.
"""

from repro import api
from repro.arch.config import BOOM_CONFIGS, BoomConfig, config_by_name
from repro.arch.workloads import (
    LARGE_WORKLOADS,
    WORKLOADS,
    Workload,
    workload_by_name,
)
from repro.baselines.autopower_minus import AutoPowerMinus
from repro.baselines.mcpat import McPatAnalytical
from repro.baselines.mcpat_calib import McPatCalib
from repro.baselines.mcpat_calib_component import McPatCalibComponent
from repro.core.autopower import AutoPower
from repro.library.stdcell import TechLibrary, default_library
from repro.power.report import ComponentPower, PowerReport
from repro.vlsi.flow import FlowResult, VlsiFlow

__version__ = "1.0.0"

__all__ = [
    "AutoPower",
    "AutoPowerMinus",
    "BOOM_CONFIGS",
    "BoomConfig",
    "ComponentPower",
    "FlowResult",
    "LARGE_WORKLOADS",
    "McPatAnalytical",
    "McPatCalib",
    "McPatCalibComponent",
    "PowerReport",
    "TechLibrary",
    "VlsiFlow",
    "WORKLOADS",
    "Workload",
    "__version__",
    "api",
    "config_by_name",
    "default_library",
    "workload_by_name",
]
