"""Command-line entry point: ``python -m repro``.

Three command families:

* ``python -m repro <experiment>`` — regenerate the paper's tables and
  figures by name (``all`` runs everything),
* ``python -m repro fit <method> --out model.json`` — train any
  registered method through :mod:`repro.api` and write a format-v2 model
  file (the flow-side half of the paper's hand-off),
* ``python -m repro predict --model model.json`` — load a model file and
  predict configurations from performance-simulator events alone via the
  batched :class:`repro.api.PredictionService` (the architect's half; no
  EDA flow involved),
* ``python -m repro serve --model model.json --port N`` — the same
  hand-off as a long-running asyncio HTTP/JSON gateway
  (:mod:`repro.serving`) with cross-request micro-batching,
* ``python -m repro cache stats|path|clear`` — inspect or reset the
  persistent flow result cache (:mod:`repro.dse.cache`),
* ``python -m repro lint [paths...]`` — the project-invariant static
  analysis (:mod:`repro.analysis`); exit 1 when findings,
* ``python -m repro env [--markdown]`` — the ``REPRO_*`` environment
  variable reference, generated from :mod:`repro.env`.

Bare ``python -m repro`` lists the experiments and registered methods.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import time

import repro.api as api
from repro.experiments import (
    ablation_program_features,
    extension_workload_holdout,
    fig1_breakdown,
    fig45_accuracy,
    fig6_sweep,
    fig7_clock,
    fig8_sram,
    submodels,
    table1_example,
    table4_trace,
)
from repro.parallel import get_default_jobs, set_default_jobs

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS = {
    "fig1": (fig1_breakdown.main, "Observation 1 — power-group breakdown"),
    "fig4": (fig45_accuracy.main, "Figs. 4 & 5 — accuracy with 2 / 3 configs"),
    "fig5": (fig45_accuracy.main, "alias of fig4 (both figures printed)"),
    "fig6": (fig6_sweep.main, "Fig. 6 — accuracy vs training budget"),
    "fig7": (fig7_clock.main, "Fig. 7 — clock group vs AutoPower-"),
    "fig8": (fig8_sram.main, "Fig. 8 — SRAM group vs AutoPower-"),
    "submodels": (submodels.main, "Sec. III-B3/B4 — sub-model accuracy"),
    "table1": (table1_example.main, "Table I — meta scaling-law walk-through"),
    "table4": (table4_trace.main, "Table IV — time-based power traces"),
    "ablation": (
        ablation_program_features.main,
        "Ablation — program features vs simulator error",
    ),
    "holdout": (
        extension_workload_holdout.main,
        "Extension — unseen-workload generalization",
    ),
}


def _print_overview() -> None:
    print("available experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name:10s} {EXPERIMENTS[name][1]}")
    print("\nregistered methods (repro.api):")
    for spec in api.list_methods():
        print(f"  {spec.name:24s} {spec.description}")
    print(
        "\nmodel commands:"
        "\n  fit <method> --out model.json [--train C1,C15] [--jobs N]"
        "\n  predict --model model.json [--config C8[,C9]] [--workload dhrystone]"
        "\n  serve --model [NAME=]model.json [--port 8000] [--workers N]"
        "\n        [--max-restarts N] [--restart-backoff-ms MS]"
        " [--no-supervise]"
        "\n        [--auth-token T | --auth-token-env VAR | --auth-token-file F]"
        "\n        [--rate-limit R --rate-burst B] [--max-wait-ms W]"
        "\n        [--queue-depth N] [--default-deadline-ms MS]"
        " [--drain-timeout S]"
        "\n  cache {stats|path|clear}  inspect / reset the flow disk cache"
        "\n\ntooling commands:"
        "\n  lint [--format text|json|github] [--rules] [PATH...]"
        "  project-invariant static analysis"
        "\n  env [--markdown]  REPRO_* environment-variable reference"
    )


def _cmd_fit(argv: list[str]) -> int:
    """``python -m repro fit <method> --out model.json``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro fit",
        description=(
            "Train a registered method on known configurations and write a "
            "format-v2 model file (repro.api.save_model)."
        ),
    )
    parser.add_argument("method", help="registry name, e.g. autopower / mcpat-calib")
    parser.add_argument(
        "--out", required=True, metavar="PATH", help="model JSON file to write"
    )
    parser.add_argument(
        "--train",
        default="C1,C15",
        metavar="NAMES",
        help="comma-separated training configurations (default: C1,C15)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallel workers for flow runs and sub-model fits",
    )
    args = parser.parse_args(argv)
    try:
        spec = api.get_method(args.method)
    except KeyError:
        known = ", ".join(api.method_names())
        print(
            f"error: unknown method {args.method!r} (choose from: {known})",
            file=sys.stderr,
        )
        return 2
    train_names = [n.strip() for n in args.train.split(",") if n.strip()]
    if not train_names:
        print("error: --train needs at least one configuration", file=sys.stderr)
        return 2
    start = time.time()
    try:
        model = api.fit(spec.name, train_configs=train_names, n_jobs=args.jobs)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    api.save_model(model, args.out)
    print(
        f"fitted {spec.display_name} on {', '.join(train_names)} "
        f"in {time.time() - start:.1f}s -> {args.out}"
    )
    return 0


def _format_prediction_row(response) -> str:
    """One prediction table row; workload-free responses print ``-``."""
    workload = response.workload_name or "-"
    return (
        f"{response.config_name:>8s} {workload:>12s} {response.total:13.2f}"
    )


def _cmd_predict(argv: list[str]) -> int:
    """``python -m repro predict --model model.json``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro predict",
        description=(
            "Load a saved model and predict total power from hardware "
            "parameters and performance-simulator events alone (no EDA flow)."
        ),
    )
    parser.add_argument(
        "--model", required=True, metavar="PATH", help="model JSON file to load"
    )
    parser.add_argument(
        "--config",
        default="C8",
        metavar="NAMES",
        help="comma-separated configurations to predict (default: C8)",
    )
    parser.add_argument(
        "--workload",
        default="dhrystone",
        metavar="NAMES",
        help="comma-separated workloads (default: dhrystone)",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print the per-group power breakdown (methods with reports)",
    )
    args = parser.parse_args(argv)
    from repro.arch.config import config_by_name
    from repro.arch.workloads import workload_by_name
    from repro.power.report import POWER_GROUPS
    from repro.sim.perf import PerfSimulator

    try:
        model = api.load_model(args.model)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load {args.model}: {exc}", file=sys.stderr)
        return 2
    try:
        spec = api.spec_for(model)
    except KeyError:
        print(
            f"error: {args.model} holds an unregistered model class "
            f"({type(model).__name__}); register its method before predicting",
            file=sys.stderr,
        )
        return 2
    try:
        configs = [
            config_by_name(n.strip()) for n in args.config.split(",") if n.strip()
        ]
        workload_list = [
            workload_by_name(n.strip()) for n in args.workload.split(",") if n.strip()
        ]
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.report and not api.supports_reports(model):
        print(
            f"error: {type(model).__name__} does not produce power-group reports",
            file=sys.stderr,
        )
        return 2

    # Architecture-level prediction: events come from the performance
    # simulator only — exactly the hand-off the paper targets.
    perf = PerfSimulator()
    kind = "report" if args.report else "total"
    requests = [
        api.PredictRequest(
            config=c, events=perf.run(c, w), workload=w, kind=kind
        )
        for c in configs
        for w in workload_list
    ]
    service = api.PredictionService(model)
    print(f"model: {spec.display_name} ({args.model})")
    print(f"{'config':>8s} {'workload':>12s} {'predicted mW':>13s}")
    for response in service.stream(requests):
        print(_format_prediction_row(response))
        if response.report is not None:
            for group in POWER_GROUPS:
                print(f"{'':>21s} {group:>9s}: {response.report.group_total(group):9.2f}")
    return 0


def _parse_model_specs(
    specs: list[str], default_name: str
) -> dict[str, str]:
    """``[NAME=]PATH`` args into an ordered ``{name: path}`` map.

    A bare ``PATH`` takes the default-model name; duplicate names and
    invalid name syntax are errors (:class:`ValueError`).
    """
    from repro.serving.fleet import FleetError, validate_model_name

    named: dict[str, str] = {}
    for spec in specs:
        name, sep, path = spec.partition("=")
        if not sep:
            name, path = default_name, spec
        if not path:
            raise ValueError(f"--model {spec!r} has an empty path")
        try:
            validate_model_name(name)
        except FleetError as exc:
            raise ValueError(str(exc)) from None
        if name in named:
            raise ValueError(f"duplicate model name {name!r} in --model")
        named[name] = path
    return named


def _build_fleet(args, default_name: str, models: dict, resilience):
    """One fresh fleet over the preloaded models (per process)."""
    from repro.serving import ModelFleet

    fleet = ModelFleet(
        max_models=args.max_models,
        default_model=default_name,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        resilience=resilience,
        service_kwargs={"n_jobs": args.jobs},
    )
    for name, (path, model) in models.items():
        fleet.add_model(name, model, source=f"path:{path}")
    return fleet


def _serve_worker(
    announce_fd: int,
    bound_port: int,
    args,
    default_name: str,
    models: dict,
    resilience,
    auth,
) -> int:
    """One ``--workers N`` child: its own gateway on the shared port."""
    import signal

    from repro.serving import Gateway, RateLimiter
    from repro.serving.faults import ProcessChaos
    from repro.serving.fleet import write_worker_announce

    chaos = ProcessChaos.from_env()
    if chaos is not None:
        chaos.enact("startup")  # may crash or hang here, by design

    gateway = Gateway(
        _build_fleet(args, default_name, models, resilience),
        host=args.host,
        port=bound_port,
        resilience=resilience,
        auth=auth,
        rate_limiter=RateLimiter(args.rate_limit, args.rate_burst),
        reuse_port=True,
        control_port=0,
    )

    async def run() -> None:
        await gateway.start()
        write_worker_announce(announce_fd, gateway.port, gateway.control_port)
        loop = asyncio.get_running_loop()
        shutdown = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, shutdown.set)
            except (NotImplementedError, RuntimeError):
                pass
        await shutdown.wait()
        if chaos is not None:
            chaos.enact("drain")  # may crash mid-drain, by design
        await gateway.stop(drain=True, drain_timeout=args.drain_timeout)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    except Exception as exc:
        print(f"worker error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(argv: list[str]) -> int:
    """``python -m repro serve --model model.json --port N``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Serve saved models over HTTP/JSON (repro.serving): concurrent "
            "POST /predict and /models/<name>/predict requests coalesce into "
            "batched model calls; PUT/DELETE /models/<name> hot-reload and "
            "unload models; GET /healthz and GET /stats expose liveness and "
            "serving counters.  Once up, one machine-parseable line is "
            "printed: 'REPRO-SERVING addr=http://HOST:PORT workers=N ...'."
        ),
    )
    parser.add_argument(
        "--model",
        required=True,
        action="append",
        metavar="[NAME=]PATH",
        help=(
            "model JSON file to serve; repeatable, NAME= routes it at "
            "POST /models/NAME/predict (a bare PATH is the default model)"
        ),
    )
    parser.add_argument(
        "--default-model",
        default=None,
        metavar="NAME",
        help=(
            "which model legacy POST /predict routes to (default: the "
            "model named 'default', else the first --model)"
        ),
    )
    parser.add_argument(
        "--max-models",
        type=int,
        default=8,
        metavar="N",
        help=(
            "LRU bound on concurrently loaded models; PUT beyond it "
            "evicts the least-recently-routed non-default model "
            "(default: 8)"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8000, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "process-per-core scale-out: fork N shared-nothing workers on "
            "one SO_REUSEPORT socket, with a supervising parent control "
            "plane that merges /stats, fans out model admin, and restarts "
            "crashed workers (default: 1)"
        ),
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=5,
        metavar="N",
        help=(
            "crash-loop breaker: give up, drain survivors and exit "
            "non-zero after more than N worker crashes within 30s "
            "(0 = the first crash is fatal; default: 5)"
        ),
    )
    parser.add_argument(
        "--restart-backoff-ms",
        type=float,
        default=100.0,
        metavar="MS",
        help=(
            "base delay before restarting a crashed worker, doubling per "
            "consecutive failure up to 5s (default: 100)"
        ),
    )
    parser.add_argument(
        "--startup-timeout",
        type=float,
        default=60.0,
        metavar="S",
        help=(
            "kill a forked worker that has not announced readiness "
            "within this many seconds (default: 60)"
        ),
    )
    parser.add_argument(
        "--no-supervise",
        action="store_true",
        help=(
            "disable crash recovery: the first unexpected worker death "
            "drains the pool and exits non-zero (the pre-supervision "
            "fail-fast behavior)"
        ),
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help=(
            "static bearer token clients must send as "
            "'Authorization: Bearer <token>' (401/403 otherwise); "
            "prefer --auth-token-env/--auth-token-file over a literal"
        ),
    )
    parser.add_argument(
        "--auth-token-env",
        default=None,
        metavar="VAR",
        help="read a bearer token from this environment variable",
    )
    parser.add_argument(
        "--auth-token-file",
        default=None,
        metavar="PATH",
        help="read bearer tokens from a file, one per line (# comments)",
    )
    parser.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="R",
        help=(
            "per-client rate limit in requests/second (per worker); an "
            "exhausted client answers 429 + Retry-After while other "
            "clients keep being served (default: unlimited)"
        ),
    )
    parser.add_argument(
        "--rate-burst",
        type=int,
        default=None,
        metavar="B",
        help=(
            "per-client burst ceiling for --rate-limit "
            "(default: ceil(R))"
        ),
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        metavar="W",
        help=(
            "how long a batch may wait for more requests after its first "
            "one arrived (0 = flush immediately; default: 2.0)"
        ),
    )
    parser.add_argument(
        "--max-batch-size",
        type=int,
        default=64,
        metavar="B",
        help="flush as soon as this many requests are waiting (default: 64)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallel fan-out of the per-configuration model calls",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=1024,
        metavar="N",
        help=(
            "admission bound: shed with 429 + Retry-After once this many "
            "requests are queued (0 = unbounded; default: 1024)"
        ),
    )
    parser.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "server-side deadline for requests without their own "
            "deadline_ms; expired requests answer 504 (default: none)"
        ),
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help=(
            "on SIGTERM/SIGINT, how long to wait for in-flight requests "
            "to complete before exiting (default: 10.0)"
        ),
    )
    args = parser.parse_args(argv)
    if args.max_wait_ms < 0 or args.max_batch_size < 1:
        print(
            "error: --max-wait-ms must be >= 0 and --max-batch-size >= 1",
            file=sys.stderr,
        )
        return 2
    if args.queue_depth < 0 or args.drain_timeout < 0 or (
        args.default_deadline_ms is not None and args.default_deadline_ms <= 0
    ):
        print(
            "error: --queue-depth and --drain-timeout must be >= 0 and "
            "--default-deadline-ms > 0",
            file=sys.stderr,
        )
        return 2
    if args.workers < 1 or args.max_models < 1:
        print(
            "error: --workers and --max-models must be >= 1", file=sys.stderr
        )
        return 2
    if args.max_restarts < 0 or args.restart_backoff_ms < 0:
        print(
            "error: --max-restarts and --restart-backoff-ms must be >= 0",
            file=sys.stderr,
        )
        return 2
    if args.startup_timeout <= 0:
        print("error: --startup-timeout must be > 0", file=sys.stderr)
        return 2
    if args.rate_limit is not None and not args.rate_limit > 0:
        print("error: --rate-limit must be > 0", file=sys.stderr)
        return 2
    if args.rate_burst is not None and args.rate_burst < 1:
        print("error: --rate-burst must be >= 1", file=sys.stderr)
        return 2
    if args.rate_burst is not None and args.rate_limit is None:
        print(
            "error: --rate-burst needs --rate-limit", file=sys.stderr
        )
        return 2

    from repro.serving import (
        Authenticator,
        Gateway,
        RateLimiter,
        ResilienceConfig,
    )
    from repro.serving.fleet import format_announce, reuse_port_supported

    if args.workers > 1 and not reuse_port_supported():
        print(
            "error: --workers > 1 needs os.fork and SO_REUSEPORT "
            "(unavailable on this platform)",
            file=sys.stderr,
        )
        return 2
    try:
        auth = Authenticator.from_sources(
            token=args.auth_token,
            env=args.auth_token_env,
            file=args.auth_token_file,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # Resolve model names before touching any file, so name errors are
    # cheap.  A bare PATH takes the default-model name; with named
    # models only, the first one becomes the default unless
    # --default-model picks another.
    try:
        specs = _parse_model_specs(
            args.model, args.default_model or "default"
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.default_model is not None:
        default_name = args.default_model
        if default_name not in specs:
            print(
                f"error: --default-model {default_name!r} is not among the "
                f"--model names {sorted(specs)}",
                file=sys.stderr,
            )
            return 2
    else:
        default_name = (
            "default" if "default" in specs else next(iter(specs))
        )

    models: dict[str, tuple[str, object]] = {}
    for name, path in specs.items():
        try:
            models[name] = (path, api.load_model(path))
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load {path}: {exc}", file=sys.stderr)
            return 2

    def describe(model) -> str:
        try:
            return api.spec_for(model).display_name
        except KeyError:
            return type(model).__name__

    label = ", ".join(
        f"{name}={describe(model)}" for name, (_path, model) in models.items()
    )
    resilience = ResilienceConfig(
        queue_depth=args.queue_depth or None,
        default_deadline_ms=args.default_deadline_ms,
        drain_timeout_s=args.drain_timeout,
    )

    if args.workers > 1:
        # Process-per-core: models are loaded (validated) once here; the
        # forked children each build their own fleet over their own copy.
        from repro.serving.fleet import run_worker_pool

        print(f"serving {label} with {args.workers} workers ...", flush=True)

        def worker_main(announce_fd: int, bound_port: int) -> int:
            return _serve_worker(
                announce_fd,
                bound_port,
                args,
                default_name,
                models,
                resilience,
                auth,
            )

        try:
            return run_worker_pool(
                args.host,
                args.port,
                args.workers,
                worker_main,
                supervise=not args.no_supervise,
                max_restarts=args.max_restarts,
                restart_backoff_ms=args.restart_backoff_ms,
                startup_timeout_s=args.startup_timeout,
            )
        except OSError as exc:  # e.g. the port is already bound
            print(f"error: {exc}", file=sys.stderr)
            return 2

    gateway = Gateway(
        _build_fleet(args, default_name, models, resilience),
        host=args.host,
        port=args.port,
        resilience=resilience,
        auth=auth,
        rate_limiter=RateLimiter(args.rate_limit, args.rate_burst),
    )

    async def run() -> None:
        import signal

        await gateway.start()
        print(format_announce(args.host, gateway.port, workers=1), flush=True)
        print(f"serving {label} on http://{args.host}:{gateway.port}", flush=True)
        print(
            "endpoints: POST /predict, POST /models/<name>/predict, "
            "PUT/DELETE/GET /models/<name>, GET /models, GET /healthz, "
            "GET /stats (SIGTERM/Ctrl-C drains and exits)",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        shutdown = asyncio.Event()
        handled_signals = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, shutdown.set)
            except (NotImplementedError, RuntimeError):
                continue  # platform without loop signal handlers
            handled_signals.append(signum)
        try:
            if handled_signals:
                await shutdown.wait()
            else:
                await gateway.serve_forever()
        finally:
            for signum in handled_signals:
                loop.remove_signal_handler(signum)
            print(
                f"draining (up to {args.drain_timeout:g}s) ...", flush=True
            )
            await gateway.stop(drain=True, drain_timeout=args.drain_timeout)
            print("drained; exiting", flush=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    except OSError as exc:  # e.g. the port is already bound
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_cache(argv: list[str]) -> int:
    """``python -m repro cache {stats|path|clear}``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description=(
            "Inspect or reset the persistent flow-result cache "
            "(repro.dse.cache).  Honors REPRO_FLOW_CACHE_DIR, "
            "REPRO_NO_FLOW_CACHE and REPRO_FLOW_CACHE_MAX_MB."
        ),
    )
    parser.add_argument(
        "action",
        choices=("stats", "path", "clear"),
        help=(
            "stats: entry count / size / bound; path: print the cache "
            "root; clear: remove every cached entry"
        ),
    )
    args = parser.parse_args(argv)

    from repro.dse import cache as flow_cache

    root = flow_cache.flow_cache_root()
    if args.action == "path":
        print(root)
        return 0

    store = flow_cache.FlowDiskCache(root)
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} cached flow result(s) from {root}")
        return 0

    count = store.entry_count()
    size = store.size_bytes()
    enabled = flow_cache.cache_enabled()
    print(f"root:     {root}")
    print(f"enabled:  {'yes' if enabled else 'no (REPRO_NO_FLOW_CACHE)'}")
    print(f"entries:  {count}")
    print(f"size:     {size / (1024 * 1024):.2f} MiB ({size} bytes)")
    print(f"bound:    {store.max_bytes / (1024 * 1024):.0f} MiB")
    print(f"version:  {flow_cache.FLOW_CACHE_VERSION}")
    return 0


def _cmd_lint(argv: list[str]) -> int:
    """``python -m repro lint [--format text|json|github] [paths...]``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "Run the project-invariant static analysis (repro.analysis): "
            "determinism (DET), event-loop discipline (ASYNC), lock "
            "discipline (LOCK), env-registry (ENV) and layering (LAYER) "
            "rules.  Exit 0 when clean, 1 when findings, 2 on usage "
            "errors."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (github = Actions inline annotations)",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="list every rule id and description, then exit",
    )
    args = parser.parse_args(argv)

    from repro import analysis

    if args.rules:
        print(analysis.rule_table())
        return 0
    paths = args.paths or ["src"]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(
            f"error: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    findings = analysis.lint_paths(paths)
    print(analysis.format_findings(findings, args.format))
    return 1 if findings else 0


def _cmd_env(argv: list[str]) -> int:
    """``python -m repro env [--markdown]``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro env",
        description=(
            "Show every REPRO_* environment variable the project reads "
            "(from the repro.env registry): type, default, and effect. "
            "--markdown emits the table embedded in the README."
        ),
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit a GitHub-markdown table instead of plain text",
    )
    args = parser.parse_args(argv)

    from repro import env

    print(env.markdown_table() if args.markdown else env.plain_table())
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "fit":
        return _cmd_fit(argv[1:])
    if argv and argv[0] == "predict":
        return _cmd_predict(argv[1:])
    if argv and argv[0] == "serve":
        return _cmd_serve(argv[1:])
    if argv and argv[0] == "cache":
        return _cmd_cache(argv[1:])
    if argv and argv[0] == "lint":
        return _cmd_lint(argv[1:])
    if argv and argv[0] == "env":
        return _cmd_env(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the AutoPower paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment to run (omit to list experiments and methods)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "parallel workers for flow runs and sub-model fits "
            "(0 or negative = all cores; overrides REPRO_JOBS; "
            "results are identical regardless of worker count)"
        ),
    )
    args = parser.parse_args(argv)

    if args.experiment is None:
        _print_overview()
        return 0

    if args.experiment != "all" and args.experiment not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS) + ["all"])
        print(
            f"error: unknown experiment {args.experiment!r} "
            f"(choose from: {known})",
            file=sys.stderr,
        )
        return 2

    names = sorted(set(EXPERIMENTS) - {"fig5"}) if args.experiment == "all" else [args.experiment]
    previous_jobs = get_default_jobs()
    if args.jobs is not None:
        set_default_jobs(args.jobs)
    try:
        for name in names:
            runner, description = EXPERIMENTS[name]
            print(f"=== {name}: {description} ===")
            start = time.time()
            runner()
            print(f"[{name} finished in {time.time() - start:.1f}s]\n")
    finally:
        if args.jobs is not None:
            set_default_jobs(previous_jobs)
    return 0


if __name__ == "__main__":
    sys.exit(main())
