"""Command-line entry point: ``python -m repro <experiment>``.

Lists and runs the paper's experiments by name, so the whole evaluation
section can be regenerated without touching Python code.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ablation_program_features,
    extension_workload_holdout,
    fig1_breakdown,
    fig45_accuracy,
    fig6_sweep,
    fig7_clock,
    fig8_sram,
    submodels,
    table1_example,
    table4_trace,
)
from repro.parallel import get_default_jobs, set_default_jobs

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS = {
    "fig1": (fig1_breakdown.main, "Observation 1 — power-group breakdown"),
    "fig4": (fig45_accuracy.main, "Figs. 4 & 5 — accuracy with 2 / 3 configs"),
    "fig5": (fig45_accuracy.main, "alias of fig4 (both figures printed)"),
    "fig6": (fig6_sweep.main, "Fig. 6 — accuracy vs training budget"),
    "fig7": (fig7_clock.main, "Fig. 7 — clock group vs AutoPower-"),
    "fig8": (fig8_sram.main, "Fig. 8 — SRAM group vs AutoPower-"),
    "submodels": (submodels.main, "Sec. III-B3/B4 — sub-model accuracy"),
    "table1": (table1_example.main, "Table I — meta scaling-law walk-through"),
    "table4": (table4_trace.main, "Table IV — time-based power traces"),
    "ablation": (
        ablation_program_features.main,
        "Ablation — program features vs simulator error",
    ),
    "holdout": (
        extension_workload_holdout.main,
        "Extension — unseen-workload generalization",
    ),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the AutoPower paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment to run (omit to list)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "parallel workers for flow runs and sub-model fits "
            "(0 or negative = all cores; overrides REPRO_JOBS; "
            "results are identical regardless of worker count)"
        ),
    )
    args = parser.parse_args(argv)

    if args.experiment is None:
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name:10s} {EXPERIMENTS[name][1]}")
        return 0

    if args.experiment != "all" and args.experiment not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS) + ["all"])
        print(
            f"error: unknown experiment {args.experiment!r} "
            f"(choose from: {known})",
            file=sys.stderr,
        )
        return 2

    names = sorted(set(EXPERIMENTS) - {"fig5"}) if args.experiment == "all" else [args.experiment]
    previous_jobs = get_default_jobs()
    if args.jobs is not None:
        set_default_jobs(args.jobs)
    try:
        for name in names:
            runner, description = EXPERIMENTS[name]
            print(f"=== {name}: {description} ===")
            start = time.time()
            runner()
            print(f"[{name} finished in {time.time() - start:.1f}s]\n")
    finally:
        if args.jobs is not None:
            set_default_jobs(previous_jobs)
    return 0


if __name__ == "__main__":
    sys.exit(main())
