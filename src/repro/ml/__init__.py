"""Machine-learning stack used by AutoPower and the baselines.

The paper uses two model families:

* a linear model with L2 regularization (ridge regression) for the
  register-count and gating-rate sub-models, where the correlation with
  hardware parameters is simple and training samples are scarce, and
* XGBoost for the activity-style sub-models, where the correlation with
  hardware *and* event parameters is complex and one sample per workload
  is available.

This environment has no network access, so :mod:`repro.ml.gbm` provides a
from-scratch gradient-boosted regression-tree implementation with the
XGBoost-style regularized objective (squared loss, shrinkage, ``reg_lambda``,
``min_child_weight``, depth limit, feature/row subsampling).
"""

from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import RidgeRegression
from repro.ml.metrics import (
    mape,
    max_error,
    mean_absolute_error,
    pearson_r,
    r2_score,
    rmse,
)
from repro.ml.scaling import StandardScaler
from repro.ml.tree import RegressionTree

__all__ = [
    "GradientBoostingRegressor",
    "RegressionTree",
    "RidgeRegression",
    "StandardScaler",
    "mape",
    "max_error",
    "mean_absolute_error",
    "pearson_r",
    "r2_score",
    "rmse",
]
