"""Machine-learning stack used by AutoPower and the baselines.

The paper uses two model families:

* a linear model with L2 regularization (ridge regression) for the
  register-count and gating-rate sub-models, where the correlation with
  hardware parameters is simple and training samples are scarce, and
* XGBoost for the activity-style sub-models, where the correlation with
  hardware *and* event parameters is complex and one sample per workload
  is available.

This environment has no network access, so :mod:`repro.ml.gbm` provides a
from-scratch gradient-boosted regression-tree implementation with the
XGBoost-style regularized objective (squared loss, shrinkage, ``reg_lambda``,
``min_child_weight``, depth limit, feature/row subsampling).

Vectorized engine (PR 1)
------------------------
The original engine searched splits with a per-candidate Python loop and
traversed trees row by row; profiling the seed put ~21.4s of a 24.7s
``AutoPower.fit`` inside ``_find_best_split`` and 3.1s inside 20
``predict_report`` calls.  :mod:`repro.ml.tree` now does a fully
vectorized split search (per-feature argsort + cumulative G/H arrays, all
candidate gains in one expression, single feature-major argmax) with
per-fit caches shared across boosting rounds (:class:`~repro.ml.tree.
PresortCache`, :class:`~repro.ml.tree.HistogramBinner` for
``tree_method="hist"``, plus per-node-subset sort memoization), flattens
fitted trees into struct-of-arrays form (:class:`~repro.ml.tree.
FlatTree`) and batch-infers by iterative vectorized descent;
:mod:`repro.ml.gbm` fuses the whole ensemble into one node-array set and
advances all rows x all trees in lockstep.  Measured on the repo's
single-core container: ``AutoPower.fit`` (2 configs x 6 workloads)
12.9s -> ~1.4s (~9-10x, run-to-run noise included); ``predict_trace``
with 65 anchors 6.0s -> 63ms (~95x); exact-mode predictions match the
scalar reference to <=1e-9 relative (see
``tests/test_ml_engine_equivalence.py``).
"""

from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import RidgeRegression
from repro.ml.metrics import (
    mape,
    max_error,
    mean_absolute_error,
    pearson_r,
    r2_score,
    rmse,
)
from repro.ml.scaling import StandardScaler
from repro.ml.tree import RegressionTree

__all__ = [
    "GradientBoostingRegressor",
    "RegressionTree",
    "RidgeRegression",
    "StandardScaler",
    "mape",
    "max_error",
    "mean_absolute_error",
    "pearson_r",
    "r2_score",
    "rmse",
]
