"""Machine-learning stack used by AutoPower and the baselines.

The paper uses two model families:

* a linear model with L2 regularization (ridge regression) for the
  register-count and gating-rate sub-models, where the correlation with
  hardware parameters is simple and training samples are scarce, and
* XGBoost for the activity-style sub-models, where the correlation with
  hardware *and* event parameters is complex and one sample per workload
  is available.

This environment has no network access, so :mod:`repro.ml.gbm` provides a
from-scratch gradient-boosted regression-tree implementation with the
XGBoost-style regularized objective (squared loss, shrinkage, ``reg_lambda``,
``min_child_weight``, depth limit, feature/row subsampling).

Level-wise engine (PR 3, vectorized engine in PR 1)
---------------------------------------------------
The original engine searched splits with a per-candidate Python loop and
traversed trees row by row; PR 1 vectorized the per-node search, and PR 3
replaced per-node recursion entirely with **level-wise frontier growth**:
all open nodes of a depth level live as row segments over one shared
presorted workspace (:class:`~repro.ml.tree.TreeWorkspace`), the split
search for every frontier node and feature runs in one batched pass, and
nodes are emitted straight into preorder struct-of-arrays buffers
(:class:`~repro.ml.tree.FlatTree`) — no recursion, no per-node argsorts,
no per-node cache keys.  ``tree_method="hist"`` batches the same way via
one composite-key ``bincount`` per level (:class:`~repro.ml.tree.
HistogramBinner`; ``hist_dtype="float32"`` for a single-precision score
pipeline).  When a C compiler and ``cffi`` are available, the hot GBM fit
(exact mode, full rows/columns) runs the identical algorithm as one
compiled call per fit (:mod:`repro.ml._kernel`; disable with
``REPRO_NO_KERNEL=1``) — results are byte-identical to the numpy engine.
:mod:`repro.ml.gbm` assembles the fused inference ensemble incrementally
during fit and advances all rows x all trees in lockstep at predict time.
Measured on the repo's single-core container (interleaved A/B): few-shot
fit 20.0ms -> 1.7ms (~12x), bulk exact fit 226ms -> 64ms (~3.5x),
``fig6_sweep.run()`` 18.1s -> 4.1s (~4.4x); exact-mode predictions match
the scalar reference to <=1e-9 relative (see
``tests/test_ml_engine_equivalence.py``, ``tests/test_ml_levelwise.py``).
"""

from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import RidgeRegression
from repro.ml.metrics import (
    mape,
    max_error,
    mean_absolute_error,
    pearson_r,
    r2_score,
    rmse,
)
from repro.ml.scaling import StandardScaler
from repro.ml.tree import RegressionTree

__all__ = [
    "GradientBoostingRegressor",
    "RegressionTree",
    "RidgeRegression",
    "StandardScaler",
    "mape",
    "max_error",
    "mean_absolute_error",
    "pearson_r",
    "r2_score",
    "rmse",
]
