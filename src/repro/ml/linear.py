"""Ridge regression — the paper's "linear model with L2 normalization".

AutoPower uses it for the register-count and gating-rate sub-models, which
must be fit from as few as *two* samples (one per known configuration).
With fewer samples than features the closed-form ridge solution degrades
gracefully to the minimum-norm interpolant, which is exactly the behaviour
the few-shot setting needs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RidgeRegression"]


class RidgeRegression:
    """Linear least squares with L2 penalty on the coefficients.

    Minimizes ``||y - Xw - b||² + alpha * ||w||²``.  The intercept is not
    penalized.  Supports optional per-feature standardization, which keeps
    the penalty meaningful when hardware parameters live on very different
    scales (e.g. ``DecodeWidth`` in 1..5 vs ``RobEntry`` in 16..140).

    Parameters
    ----------
    alpha:
        L2 regularization strength (``lambda``). Must be >= 0.
    fit_intercept:
        When ``True`` (default) an unpenalized bias term is fitted.
    normalize:
        When ``True`` features are standardized to zero mean / unit variance
        before fitting; coefficients are reported in the original space.
    nonnegative:
        When ``True``, predictions are clamped at zero.  Physical targets
        such as register counts and rates can never be negative.
    """

    def __init__(
        self,
        alpha: float = 1e-2,
        fit_intercept: bool = True,
        normalize: bool = True,
        nonnegative: bool = False,
    ) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)
        self.fit_intercept = bool(fit_intercept)
        self.normalize = bool(normalize)
        self.nonnegative = bool(nonnegative)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    # ------------------------------------------------------------------
    def fit(self, X, y) -> RidgeRegression:
        """Fit coefficients from a (n_samples, n_features) design matrix."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
            )
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")

        n_features = X.shape[1]
        if self.normalize:
            self._mu = X.mean(axis=0)
            sd = X.std(axis=0)
            # Constant columns carry no information; leave them unscaled so
            # they zero out after centering instead of dividing by zero.
            sd[sd == 0.0] = 1.0
            self._sd = sd
        else:
            self._mu = np.zeros(n_features)
            self._sd = np.ones(n_features)
        Xs = (X - self._mu) / self._sd

        if self.fit_intercept:
            y_mean = float(y.mean())
            x_mean = Xs.mean(axis=0)
        else:
            y_mean = 0.0
            x_mean = np.zeros(n_features)
        Xc = Xs - x_mean
        yc = y - y_mean

        gram = Xc.T @ Xc + self.alpha * np.eye(n_features)
        # lstsq instead of solve: the Gram matrix can be singular when
        # alpha == 0 and n_samples < n_features.
        w, *_ = np.linalg.lstsq(gram, Xc.T @ yc, rcond=None)

        # Report coefficients in the original (unscaled) feature space.
        self.coef_ = w / self._sd
        self.intercept_ = y_mean - float(
            np.dot(self.coef_, self._mu + x_mean * self._sd)
        )
        return self

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        """Predict targets for a (n_samples, n_features) matrix."""
        if self.coef_ is None:
            raise RuntimeError("RidgeRegression.predict called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, model expects {self.coef_.shape[0]}"
            )
        out = X @ self.coef_ + self.intercept_
        if self.nonnegative:
            out = np.maximum(out, 0.0)
        return out

    def fit_predict(self, X, y) -> np.ndarray:
        """Convenience: fit on (X, y) and return in-sample predictions."""
        return self.fit(X, y).predict(X)
