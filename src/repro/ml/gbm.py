"""Gradient-boosted regression trees (XGBoost-style, squared loss).

The paper adopts XGBoost [Chen & Guestrin 2016] for the sub-models whose
correlation with hardware and event parameters is complex (effective active
rate, SRAM read/write frequency, register activity, combinational
variation).  No xgboost wheel is available offline, so this module
implements the regularized tree-boosting algorithm directly:

* squared-error objective with first/second-order statistics,
* shrinkage (``learning_rate``), L2 leaf penalty (``reg_lambda``),
  ``min_child_weight``, ``gamma`` and depth limits,
* optional row subsampling and per-tree feature subsampling,
* base score initialised at the target mean,
* ``tree_method="exact"`` (level-wise batched greedy scan over one shared
  per-fit :class:`~repro.ml.tree.TreeWorkspace`) or ``"hist"``
  (quantile-binned scan with a per-fit bin-index cache shared across all
  boosting rounds, XGBoost-style; ``hist_dtype="float32"`` runs the score
  pipeline in single precision).

The fused inference ensemble is assembled *incrementally during fit* —
each round appends its tree's remapped node arrays — so the first predict
after a fit pays one concatenation instead of a per-tree rebuild.
Inference then accumulates every tree in one lockstep vectorized descent
(all rows x all trees advance one level per step — no per-row or per-tree
Python), which makes batched prediction essentially free.

Like real tree ensembles, the model cannot predict outside the range of
training targets — the very property the paper exploits when arguing that
directly-applied ML models fail in the few-shot regime.
"""

from __future__ import annotations

import numpy as np

from repro.ml._kernel import get_kernel
from repro.ml.tree import (
    FlatTree,
    HistogramBinner,
    RegressionTree,
    TreeWorkspace,
    _SplitSearchConfig,
)

__all__ = ["GradientBoostingRegressor"]


class _FlatEnsemble:
    """All trees of a fitted ensemble concatenated into one node-array set.

    Features are remapped through each tree's column subsample so inference
    reads the full feature matrix directly.  Leaves are encoded as
    self-loops (``left == right == self``, threshold ``+inf``) so the
    lockstep descent needs no leaf masking: a row that reached its leaf
    simply stays there while deeper trees keep routing.

    ``fit`` assembles the arrays incrementally (one append per boosting
    round, concatenated once); this constructor remains for externally
    assembled models (deserialization).
    """

    __slots__ = ("feature", "threshold", "left", "right", "value", "roots", "depth")

    def __init__(self, trees: list[tuple[RegressionTree, np.ndarray]]) -> None:
        features = []
        thresholds = []
        lefts = []
        rights = []
        values = []
        roots = []
        offset = 0
        depth = 0
        for tree, cols in trees:
            flat = tree.ensure_flat()
            n = flat.n_nodes
            leaf = flat.feature < 0
            node_ids = np.arange(n, dtype=np.int32) + offset
            features.append(np.where(leaf, 0, cols[np.where(leaf, 0, flat.feature)]))
            thresholds.append(np.where(leaf, np.inf, flat.threshold))
            lefts.append(np.where(leaf, node_ids, flat.left + offset))
            rights.append(np.where(leaf, node_ids, flat.right + offset))
            values.append(flat.value)
            roots.append(offset)
            offset += n
            depth = max(depth, flat.depth)
        self.feature = np.concatenate(features).astype(np.int32)
        self.threshold = np.concatenate(thresholds)
        self.left = np.concatenate(lefts).astype(np.int32)
        self.right = np.concatenate(rights).astype(np.int32)
        self.value = np.concatenate(values)
        self.roots = np.array(roots, dtype=np.int32)
        self.depth = depth

    @classmethod
    def _from_parts(
        cls,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        roots: np.ndarray,
        depth: int,
    ) -> _FlatEnsemble:
        ens = object.__new__(cls)
        ens.feature = feature
        ens.threshold = threshold
        ens.left = left
        ens.right = right
        ens.value = value
        ens.roots = roots
        ens.depth = depth
        return ens

    def sum_values(self, X: np.ndarray) -> np.ndarray:
        """Sum of every tree's leaf value per row (before shrinkage).

        Single-tree ensembles skip the broadcast copy (the descent only
        reassigns ``node``, never writes into it).  Once every row of
        every tree sits on a leaf self-loop the state stops changing and
        the loop exits early; the equality probe only pays for itself on
        deep ensembles, so shallow ones skip it.
        """
        n = X.shape[0]
        t = self.roots.size
        node = np.broadcast_to(self.roots, (n, t))
        if t > 1:
            node = node.copy()
        rows = np.arange(n)[:, None]
        depth = self.depth
        for level in range(depth):
            go_left = X[rows, self.feature[node]] <= self.threshold[node]
            nxt = np.where(go_left, self.left[node], self.right[node])
            # Probe only when it can still skip >= 2 deeper passes.
            if level >= 3 and depth - level > 1 and np.array_equal(nxt, node):
                break
            node = nxt
        return self.value[node].sum(axis=1)


class GradientBoostingRegressor:
    """Boosted regression-tree ensemble with an XGBoost-like API.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth:
        Depth of each tree.
    reg_lambda:
        L2 penalty on leaf weights.
    min_child_weight:
        Minimum hessian sum per leaf (= samples for squared loss).
    gamma:
        Minimum split gain.
    subsample:
        Row-sampling fraction per boosting round (without replacement).
    colsample_bytree:
        Feature-sampling fraction per tree.
    early_stopping_rounds:
        When set together with a validation fraction, stop when the
        validation loss has not improved for this many rounds.
    tree_method:
        Split-search engine: ``"exact"`` (every distinct threshold) or
        ``"hist"`` (quantile bins, one shared bin-index cache per fit).
    max_bin:
        Bucket budget per feature for ``tree_method="hist"``.
    hist_dtype:
        ``"float64"`` (default) or ``"float32"`` — precision of the
        histogram score pipeline (``"hist"`` only); the fitted model is
        always float64.
    random_state:
        Seed for all stochastic choices; the model is fully deterministic
        for a fixed seed.
    """

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        reg_lambda: float = 1.0,
        min_child_weight: float = 1.0,
        gamma: float = 0.0,
        subsample: float = 1.0,
        colsample_bytree: float = 1.0,
        early_stopping_rounds: int | None = None,
        tree_method: str = "exact",
        max_bin: int = 256,
        hist_dtype: str = "float64",
        random_state: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if not 0.0 < colsample_bytree <= 1.0:
            raise ValueError("colsample_bytree must be in (0, 1]")
        if tree_method not in ("exact", "hist"):
            raise ValueError(f"tree_method must be 'exact' or 'hist', got {tree_method!r}")
        if hist_dtype not in ("float64", "float32"):
            raise ValueError(
                f"hist_dtype must be 'float64' or 'float32', got {hist_dtype!r}"
            )
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.reg_lambda = float(reg_lambda)
        self.min_child_weight = float(min_child_weight)
        self.gamma = float(gamma)
        self.subsample = float(subsample)
        self.colsample_bytree = float(colsample_bytree)
        self.early_stopping_rounds = early_stopping_rounds
        self.tree_method = tree_method
        self.max_bin = int(max_bin)
        self.hist_dtype = hist_dtype
        self.random_state = int(random_state)

        self.trees_: list[tuple[RegressionTree, np.ndarray]] = []
        self.base_score_: float = 0.0
        self.train_losses_: list[float] = []
        self.n_features_: int = 0
        self._fitted = False
        self._ensemble: _FlatEnsemble | None = None

    # ------------------------------------------------------------------
    def fit(self, X, y) -> GradientBoostingRegressor:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on the number of samples")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.random_state)
        n_samples, n_features = X.shape
        self.n_features_ = n_features
        self.trees_ = []
        self.train_losses_ = []
        self._fitted = False
        self._ensemble = None
        self.base_score_ = float(y.mean())
        pred = np.full(n_samples, self.base_score_)

        n_cols = max(1, int(round(self.colsample_bytree * n_features)))
        n_rows = max(1, int(round(self.subsample * n_samples)))
        full_rows = n_rows >= n_samples
        full_cols = n_cols >= n_features
        all_rows = np.arange(n_samples)
        all_cols = np.arange(n_features)
        if self.tree_method == "exact" and full_rows and full_cols:
            # The compiled kernel drives the whole boosting loop in one
            # call (level-wise growth, preorder + fused-ensemble emission);
            # it is equivalent to the numpy engine below and optional.
            kernel = get_kernel()
            if kernel is not None:
                self._fit_kernel(kernel, X, y, all_cols)
                return self
        hess = np.ones(n_samples)
        # Both caches are properties of X alone, so one instance serves
        # every boosting round (subsampled views are cheap slices); the
        # split-search config carries the per-fit frontier-shape and
        # tree-structure caches every round shares.
        binner = (
            HistogramBinner(X, self.max_bin) if self.tree_method == "hist" else None
        )
        workspace = (
            TreeWorkspace(X) if self.tree_method == "exact" and full_rows else None
        )
        cfg = _SplitSearchConfig(
            max_depth=self.max_depth,
            min_samples_split=2,
            min_child_weight=self.min_child_weight,
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
            unit_hess=True,  # squared loss: hessian is identically 1
            hist_dtype=self.hist_dtype,
        )
        grad = np.empty(n_samples)
        update = np.empty(n_samples)
        np.subtract(pred, y, out=grad)  # d/dpred of 0.5*(pred-y)^2
        best_loss = np.inf
        rounds_since_best = 0

        # Incremental fused-ensemble assembly: one append per round, one
        # concatenation at the end — predict never rebuilds per tree.
        ens_feature: list[np.ndarray] = []
        ens_threshold: list[np.ndarray] = []
        ens_left: list[np.ndarray] = []
        ens_right: list[np.ndarray] = []
        ens_value: list[np.ndarray] = []
        ens_roots: list[int] = []
        ens_offset = 0
        ens_depth = 0

        for _ in range(self.n_estimators):
            rows = all_rows if full_rows else rng.choice(
                n_samples, size=n_rows, replace=False
            )
            cols = all_cols if full_cols else np.sort(
                rng.choice(n_features, size=n_cols, replace=False)
            )
            if full_rows and full_cols:
                x_fit = X
                round_binner = binner
                round_workspace = workspace
            else:
                x_fit = X[np.ix_(rows, cols)]
                round_binner = (
                    binner.subset(
                        None if full_rows else rows, None if full_cols else cols
                    )
                    if binner is not None
                    else None
                )
                round_workspace = (
                    workspace.subset_cols(cols) if workspace is not None else None
                )

            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_split=2,
                min_child_weight=self.min_child_weight,
                reg_lambda=self.reg_lambda,
                gamma=self.gamma,
                tree_method=self.tree_method,
                max_bin=self.max_bin,
                hist_dtype=self.hist_dtype,
            )
            if full_rows:
                # The leaf partition already is the training prediction.
                tree._fit_core(
                    x_fit, grad, hess, cfg, round_binner, round_workspace, update
                )
                pred += self.learning_rate * update
            else:
                tree.fit_gradients(
                    x_fit, grad[rows], hess[rows], binner=round_binner
                )
                pred += self.learning_rate * tree.predict(
                    X if full_cols else X[:, cols]
                )
            self.trees_.append((tree, cols))

            flat = tree.flat_
            n_nodes = flat.feature.size
            leaf = flat.feature < 0
            node_ids = np.arange(ens_offset, ens_offset + n_nodes, dtype=np.int32)
            fmax = np.maximum(flat.feature, 0)  # leaves route through col 0
            ens_feature.append(fmax if full_cols else cols[fmax])
            ens_threshold.append(np.where(leaf, np.inf, flat.threshold))
            ens_left.append(np.where(leaf, node_ids, flat.left + ens_offset))
            ens_right.append(np.where(leaf, node_ids, flat.right + ens_offset))
            ens_value.append(flat.value)
            ens_roots.append(ens_offset)
            ens_offset += n_nodes
            if flat.depth > ens_depth:
                ens_depth = flat.depth

            # The post-round residual doubles as the next round's gradient.
            np.subtract(pred, y, out=grad)
            # Sequential (cumsum) accumulation matches the compiled
            # kernel's loss bitwise, so early stopping cannot flip between
            # kernel and no-kernel environments.
            loss = float(np.cumsum(grad * grad)[-1]) / n_samples
            self.train_losses_.append(loss)
            if self.early_stopping_rounds is not None:
                if loss < best_loss - 1e-12:
                    best_loss = loss
                    rounds_since_best = 0
                else:
                    rounds_since_best += 1
                    if rounds_since_best >= self.early_stopping_rounds:
                        break
        self._ensemble = _FlatEnsemble._from_parts(
            np.concatenate(ens_feature).astype(np.int32, copy=False),
            np.concatenate(ens_threshold),
            np.concatenate(ens_left).astype(np.int32, copy=False),
            np.concatenate(ens_right).astype(np.int32, copy=False),
            np.concatenate(ens_value),
            np.array(ens_roots, dtype=np.int32),
            ens_depth,
        )
        self._fitted = True
        return self

    def _fit_kernel(self, kernel, X: np.ndarray, y: np.ndarray, all_cols) -> None:
        """One compiled call for the full boosting loop (exact, full rows/cols).

        The kernel emits every tree's preorder node arrays *and* the
        leaf-self-loop ensemble form into contiguous per-fit buffers, so
        ``trees_`` wraps slices and the fused ensemble needs no assembly.
        """
        ffi, lib = kernel
        n, f = X.shape
        ws = TreeWorkspace(X)
        posof = ws.posof()
        n_est = self.n_estimators
        max_nodes = min(2 ** (self.max_depth + 1) - 1, 2 * n - 1)
        cap = n_est * max_nodes
        pred = np.full(n, self.base_score_)
        losses = np.empty(n_est)
        tree_off = np.empty(n_est + 1, dtype=np.int64)
        feat = np.empty(cap, dtype=np.int32)
        thr = np.empty(cap)
        left = np.empty(cap, dtype=np.int32)
        right = np.empty(cap, dtype=np.int32)
        val = np.empty(cap)
        nsamp = np.empty(cap, dtype=np.int64)
        depths = np.empty(n_est, dtype=np.int32)
        ens_feat = np.empty(cap, dtype=np.int32)
        ens_thr = np.empty(cap)
        ens_left = np.empty(cap, dtype=np.int32)
        ens_right = np.empty(cap, dtype=np.int32)

        def dp(a):
            return ffi.cast("double *", a.ctypes.data)

        def lp(a):
            return ffi.cast("long *", a.ctypes.data)

        def ip(a):
            return ffi.cast("int *", a.ctypes.data)

        yc = np.ascontiguousarray(y, dtype=float)
        rounds = lib.gbm_fit_exact(
            dp(ws.xt), lp(ws.order), lp(posof),
            n, f, dp(yc),
            n_est, self.learning_rate, self.max_depth,
            self.reg_lambda, self.min_child_weight, self.gamma, 2,
            -1 if self.early_stopping_rounds is None else self.early_stopping_rounds,
            self.base_score_,
            dp(pred), dp(losses),
            max_nodes, lp(tree_off),
            ip(feat), dp(thr), ip(left), ip(right),
            dp(val), lp(nsamp), ip(depths),
            ip(ens_feat), dp(ens_thr), ip(ens_left), ip(ens_right),
        )
        if rounds < 0:  # pragma: no cover - allocation failure
            raise MemoryError("GBM kernel could not allocate scratch buffers")
        for t in range(rounds):
            a, b = int(tree_off[t]), int(tree_off[t + 1])
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_split=2,
                min_child_weight=self.min_child_weight,
                reg_lambda=self.reg_lambda,
                gamma=self.gamma,
                tree_method=self.tree_method,
                max_bin=self.max_bin,
                hist_dtype=self.hist_dtype,
            )
            tree.n_features_ = f
            tree.flat_ = FlatTree._from_parts(
                feat[a:b], thr[a:b], left[a:b], right[a:b],
                val[a:b], nsamp[a:b], int(depths[t]),
            )
            self.trees_.append((tree, all_cols))
        end = int(tree_off[rounds])
        self.train_losses_ = losses[:rounds].tolist()
        self._ensemble = _FlatEnsemble._from_parts(
            ens_feat[:end], ens_thr[:end], ens_left[:end], ens_right[:end],
            val[:end], tree_off[:rounds].astype(np.int32),
            int(depths[:rounds].max()),
        )
        self._fitted = True

    # ------------------------------------------------------------------
    def _check_is_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                "GradientBoostingRegressor used before fit"
            )

    def _validated(self, X) -> np.ndarray:
        self._check_is_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, model expects {self.n_features_}"
            )
        return X

    def _flat_ensemble(self) -> _FlatEnsemble:
        if self._ensemble is None:
            self._ensemble = _FlatEnsemble(self.trees_)
        return self._ensemble

    def predict(self, X) -> np.ndarray:
        X = self._validated(X)
        return self.base_score_ + self.learning_rate * self._flat_ensemble().sum_values(X)

    def staged_predict(self, X):
        """Yield predictions after each boosting round (for diagnostics)."""
        X = self._validated(X)
        pred = np.full(X.shape[0], self.base_score_)
        yield pred.copy()
        for tree, cols in self.trees_:
            pred = pred + self.learning_rate * tree.predict(X[:, cols])
            yield pred.copy()

    @property
    def n_trees_(self) -> int:
        """Number of fitted boosting rounds (≤ ``n_estimators``)."""
        return len(self.trees_)

    def mark_fitted(self) -> None:
        """Declare externally-assembled state (deserialization) as fitted."""
        self._fitted = True
        self._ensemble = None
