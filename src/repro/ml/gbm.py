"""Gradient-boosted regression trees (XGBoost-style, squared loss).

The paper adopts XGBoost [Chen & Guestrin 2016] for the sub-models whose
correlation with hardware and event parameters is complex (effective active
rate, SRAM read/write frequency, register activity, combinational
variation).  No xgboost wheel is available offline, so this module
implements the regularized tree-boosting algorithm directly:

* squared-error objective with first/second-order statistics,
* shrinkage (``learning_rate``), L2 leaf penalty (``reg_lambda``),
  ``min_child_weight``, ``gamma`` and depth limits,
* optional row subsampling and per-tree feature subsampling,
* base score initialised at the target mean.

Like real tree ensembles, the model cannot predict outside the range of
training targets — the very property the paper exploits when arguing that
directly-applied ML models fail in the few-shot regime.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import RegressionTree

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor:
    """Boosted regression-tree ensemble with an XGBoost-like API.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth:
        Depth of each tree.
    reg_lambda:
        L2 penalty on leaf weights.
    min_child_weight:
        Minimum hessian sum per leaf (= samples for squared loss).
    gamma:
        Minimum split gain.
    subsample:
        Row-sampling fraction per boosting round (without replacement).
    colsample_bytree:
        Feature-sampling fraction per tree.
    early_stopping_rounds:
        When set together with a validation fraction, stop when the
        validation loss has not improved for this many rounds.
    random_state:
        Seed for all stochastic choices; the model is fully deterministic
        for a fixed seed.
    """

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        reg_lambda: float = 1.0,
        min_child_weight: float = 1.0,
        gamma: float = 0.0,
        subsample: float = 1.0,
        colsample_bytree: float = 1.0,
        early_stopping_rounds: int | None = None,
        random_state: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if not 0.0 < colsample_bytree <= 1.0:
            raise ValueError("colsample_bytree must be in (0, 1]")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.reg_lambda = float(reg_lambda)
        self.min_child_weight = float(min_child_weight)
        self.gamma = float(gamma)
        self.subsample = float(subsample)
        self.colsample_bytree = float(colsample_bytree)
        self.early_stopping_rounds = early_stopping_rounds
        self.random_state = int(random_state)

        self.trees_: list[tuple[RegressionTree, np.ndarray]] = []
        self.base_score_: float = 0.0
        self.train_losses_: list[float] = []
        self.n_features_: int = 0

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "GradientBoostingRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on the number of samples")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.random_state)
        n_samples, n_features = X.shape
        self.n_features_ = n_features
        self.trees_ = []
        self.train_losses_ = []
        self.base_score_ = float(y.mean())
        pred = np.full(n_samples, self.base_score_)

        n_cols = max(1, int(round(self.colsample_bytree * n_features)))
        n_rows = max(1, int(round(self.subsample * n_samples)))
        best_loss = np.inf
        rounds_since_best = 0

        for _ in range(self.n_estimators):
            grad = pred - y  # d/dpred of 0.5*(pred-y)^2
            hess = np.ones(n_samples)

            if n_rows < n_samples:
                rows = rng.choice(n_samples, size=n_rows, replace=False)
            else:
                rows = np.arange(n_samples)
            if n_cols < n_features:
                cols = np.sort(rng.choice(n_features, size=n_cols, replace=False))
            else:
                cols = np.arange(n_features)

            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_split=2,
                min_child_weight=self.min_child_weight,
                reg_lambda=self.reg_lambda,
                gamma=self.gamma,
            )
            tree.fit_gradients(X[np.ix_(rows, cols)], grad[rows], hess[rows])
            update = tree.predict(X[:, cols])
            pred = pred + self.learning_rate * update
            self.trees_.append((tree, cols))

            loss = float(np.mean((pred - y) ** 2))
            self.train_losses_.append(loss)
            if self.early_stopping_rounds is not None:
                if loss < best_loss - 1e-12:
                    best_loss = loss
                    rounds_since_best = 0
                else:
                    rounds_since_best += 1
                    if rounds_since_best >= self.early_stopping_rounds:
                        break
        return self

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        if not self.trees_ and self.base_score_ == 0.0 and self.n_features_ == 0:
            raise RuntimeError("GradientBoostingRegressor.predict called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, model expects {self.n_features_}"
            )
        pred = np.full(X.shape[0], self.base_score_)
        for tree, cols in self.trees_:
            pred = pred + self.learning_rate * tree.predict(X[:, cols])
        return pred

    def staged_predict(self, X):
        """Yield predictions after each boosting round (for diagnostics)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        pred = np.full(X.shape[0], self.base_score_)
        yield pred.copy()
        for tree, cols in self.trees_:
            pred = pred + self.learning_rate * tree.predict(X[:, cols])
            yield pred.copy()

    @property
    def n_trees_(self) -> int:
        """Number of fitted boosting rounds (≤ ``n_estimators``)."""
        return len(self.trees_)
