"""Optional compiled kernel for the level-wise exact GBM fit.

The few-shot regime fits thousands of tiny trees; even the fully batched
numpy engine pays a few microseconds of dispatch per array expression,
which dominates when nodes hold a dozen rows.  This module compiles a
small, dependency-free C implementation of the *same* level-wise frontier
algorithm (one batched scan per depth level over presorted segments,
stable position-cut partition, preorder struct-of-arrays emission) and
drives the whole boosting loop in one call per fit.

Build strategy: the C source below is written to a per-user cache
directory and compiled with the system C compiler into a plain shared
library (no Python headers needed), then loaded through ``cffi``'s ABI
mode.  Everything is best-effort: no compiler, no ``cffi``, a failed
build, or ``REPRO_NO_KERNEL=1`` simply mean :func:`get_kernel` returns
``None`` and callers use the pure-numpy engine — results are equivalent
(see ``tests/test_ml_levelwise.py`` which pins the two paths against each
other).

Floating-point discipline: compiled with ``-ffp-contract=off`` (no FMA
contraction) so candidate scores are the same IEEE double operations the
numpy engine and the scalar reference perform; cumulative sums run in the
same stable feature order, so split decisions — including exact ties —
agree with the reference scan.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import tempfile

from repro.env import get_bool

_CDEF = """
long gbm_fit_exact(
    const double *xt, const long *order, const long *posof,
    long n, long f, const double *y,
    long n_estimators, double learning_rate, long max_depth,
    double lam, double mcw, double gamma, long mss,
    long early_stop, double base_score,
    double *pred, double *losses,
    long max_nodes, long *tree_off,
    int *feat_out, double *thr_out, int *left_out, int *right_out,
    double *val_out, long *nsamp_out, int *depth_out,
    int *ens_feat, double *ens_thr, int *ens_left, int *ens_right);
"""

_SOURCE = r"""
/* Level-wise exact-mode GBM fit (squared loss, unit hessian, full rows
 * and columns).  Mirrors repro.ml.tree._grow_exact: the frontier of each
 * depth level is a set of contiguous row segments over a per-feature
 * presorted order; the split search scans every (node, feature) of the
 * level; accepted splits partition segments by a stable position cut
 * (never re-sorting); nodes are laid out in preorder at emission.
 *
 * Numerical contract: cumulative gradient sums run sequentially in the
 * stable sort order (bitwise-identical to the scalar reference), scores
 * use the exact expression gl*gl/(hl+lam) + gr*gr/(hr+lam), and the
 * best split is the strictly-greater feature-major scan, so ties resolve
 * to the lowest (feature, position) pair.
 */
#include <stdlib.h>
#include <math.h>

typedef struct {
    long start;      /* first column of the segment in part[] */
    long size;
    double g;        /* gradient sum over the segment's rows */
    long bfs;        /* index of this node in the BFS arrays */
} Seg;

long gbm_fit_exact(
    const double *xt, const long *order, const long *posof,
    long n, long f, const double *y,
    long n_estimators, double learning_rate, long max_depth,
    double lam, double mcw, double gamma, long mss,
    long early_stop, double base_score,
    double *pred, double *losses,
    long max_nodes, long *tree_off,
    int *feat_out, double *thr_out, int *left_out, int *right_out,
    double *val_out, long *nsamp_out, int *depth_out,
    int *ens_feat, double *ens_thr, int *ens_left, int *ens_right)
{
    (void)base_score; /* pred arrives prefilled */
    long *part = malloc((size_t)f * n * sizeof(long));
    long *part2 = malloc((size_t)f * n * sizeof(long));
    double *grad = malloc((size_t)n * sizeof(double));
    Seg *segs = malloc((size_t)(n + 1) * sizeof(Seg));
    Seg *segs2 = malloc((size_t)(n + 1) * sizeof(Seg));
    /* BFS-order scratch for one tree */
    double *b_val = malloc((size_t)max_nodes * sizeof(double));
    double *b_thr = malloc((size_t)max_nodes * sizeof(double));
    double *b_g = malloc((size_t)max_nodes * sizeof(double));
    long *b_n = malloc((size_t)max_nodes * sizeof(long));
    long *b_feat = malloc((size_t)max_nodes * sizeof(long));
    long *b_child = malloc((size_t)max_nodes * sizeof(long));
    long *b_sz = malloc((size_t)max_nodes * sizeof(long));
    long *b_pos = malloc((size_t)max_nodes * sizeof(long));
    if (!part || !part2 || !grad || !segs || !segs2 || !b_val || !b_thr ||
        !b_g || !b_n || !b_feat || !b_child || !b_sz || !b_pos) {
        free(part); free(part2); free(grad); free(segs); free(segs2);
        free(b_val); free(b_thr); free(b_g); free(b_n); free(b_feat);
        free(b_child); free(b_sz); free(b_pos);
        return -1;
    }

    for (long i = 0; i < n; i++) grad[i] = pred[i] - y[i];

    double best_loss = INFINITY;
    long rounds_since_best = 0;
    long rounds = 0;
    tree_off[0] = 0;

    for (long t = 0; t < n_estimators; t++) {
        /* ---- grow one tree, level by level ---- */
        for (long j = 0; j < f; j++)
            for (long i = 0; i < n; i++) part[j * n + i] = order[j * n + i];
        double g_root = 0.0;
        for (long i = 0; i < n; i++) g_root += grad[i];

        long nseg = 1;
        segs[0].start = 0; segs[0].size = n; segs[0].g = g_root; segs[0].bfs = 0;
        long n_bfs = 1;
        b_g[0] = g_root; b_n[0] = n; b_feat[0] = -1; b_child[0] = -1;
        long tree_depth = 0;

        for (long depth = 0; nseg > 0; depth++) {
            long nseg2 = 0;
            long o2 = 0; /* next level's write cursor into part2 */
            for (long s = 0; s < nseg; s++) {
                long st = segs[s].start, sz = segs[s].size;
                double gsum = segs[s].g;
                long bi = segs[s].bfs;
                double value = -gsum / ((double)sz + lam);
                b_val[bi] = value;
                long bf = -1, bj = -1;
                double best = -INFINITY, bcum = 0.0;
                if (depth < max_depth && sz >= mss) {
                    for (long feat = 0; feat < f; feat++) {
                        const long *rows = part + feat * n + st;
                        const double *xv = xt + feat * n;
                        double cum = 0.0;
                        for (long j = 0; j < sz - 1; j++) {
                            cum += grad[rows[j]];
                            if (xv[rows[j]] == xv[rows[j + 1]]) continue;
                            double hl = (double)(j + 1);
                            double hr = (double)(sz - j - 1);
                            if (hl < mcw || hr < mcw) continue;
                            double gr = gsum - cum;
                            double sc = cum * cum / (hl + lam)
                                      + gr * gr / (hr + lam);
                            if (sc > best) { best = sc; bf = feat; bj = j; bcum = cum; }
                        }
                    }
                }
                int split = 0;
                if (bf >= 0) {
                    double parent = gsum * gsum / ((double)sz + lam);
                    double gain = 0.5 * (best - parent) - gamma;
                    if (gain > 1e-12) split = 1;
                }
                if (!split) {
                    /* leaf: fold its contribution into pred immediately */
                    const long *rows = part + 0 * n + st;
                    for (long j = 0; j < sz; j++)
                        pred[rows[j]] += learning_rate * value;
                    continue;
                }
                const long *rows_bf = part + bf * n + st;
                double va = xt[bf * n + rows_bf[bj]];
                double vb = xt[bf * n + rows_bf[bj + 1]];
                b_feat[bi] = bf;
                b_thr[bi] = 0.5 * (va + vb);
                b_child[bi] = n_bfs;
                long nl = bj + 1, nr = sz - nl;
                /* stable two-way partition of every feature's order by the
                 * winning feature's position cut (no re-sort below root) */
                long cut = posof[bf * n + rows_bf[bj]];
                const long *pcut = posof + bf * n;
                for (long feat = 0; feat < f; feat++) {
                    const long *src = part + feat * n + st;
                    long *dl = part2 + feat * n + o2;
                    long *dr = dl + nl;
                    for (long j = 0; j < sz; j++) {
                        long r = src[j];
                        if (pcut[r] <= cut) *dl++ = r; else *dr++ = r;
                    }
                }
                segs2[nseg2].start = o2; segs2[nseg2].size = nl;
                segs2[nseg2].g = bcum; segs2[nseg2].bfs = n_bfs;
                nseg2++;
                segs2[nseg2].start = o2 + nl; segs2[nseg2].size = nr;
                segs2[nseg2].g = gsum - bcum; segs2[nseg2].bfs = n_bfs + 1;
                nseg2++;
                b_g[n_bfs] = bcum; b_n[n_bfs] = nl;
                b_feat[n_bfs] = -1; b_child[n_bfs] = -1;
                b_g[n_bfs + 1] = gsum - bcum; b_n[n_bfs + 1] = nr;
                b_feat[n_bfs + 1] = -1; b_child[n_bfs + 1] = -1;
                n_bfs += 2;
                o2 += sz;
                tree_depth = depth + 1;
            }
            { long *tmp = part; part = part2; part2 = tmp; }
            { Seg *tmp = segs; segs = segs2; segs2 = tmp; }
            nseg = nseg2;
        }

        /* ---- preorder layout: subtree sizes bottom-up (children always
         * have larger BFS indices), then positions top-down ---- */
        for (long i = n_bfs - 1; i >= 0; i--) {
            b_sz[i] = 1;
            if (b_feat[i] >= 0)
                b_sz[i] += b_sz[b_child[i]] + b_sz[b_child[i] + 1];
        }
        b_pos[0] = 0;
        for (long i = 0; i < n_bfs; i++) {
            if (b_feat[i] >= 0) {
                long lc = b_child[i];
                b_pos[lc] = b_pos[i] + 1;
                b_pos[lc + 1] = b_pos[i] + 1 + b_sz[lc];
            }
        }
        long base = tree_off[t];
        for (long i = 0; i < n_bfs; i++) {
            long p = base + b_pos[i];
            val_out[p] = b_val[i];
            nsamp_out[p] = b_n[i];
            if (b_feat[i] >= 0) {
                long lc = b_child[i];
                feat_out[p] = (int)b_feat[i];
                thr_out[p] = b_thr[i];
                left_out[p] = (int)b_pos[lc];
                right_out[p] = (int)b_pos[lc + 1];
                ens_feat[p] = (int)b_feat[i];
                ens_thr[p] = b_thr[i];
                ens_left[p] = (int)(base + b_pos[lc]);
                ens_right[p] = (int)(base + b_pos[lc + 1]);
            } else {
                feat_out[p] = -1;
                thr_out[p] = 0.0;
                left_out[p] = -1;
                right_out[p] = -1;
                ens_feat[p] = 0;           /* leaves route through col 0 */
                ens_thr[p] = INFINITY;     /* ... and always go left */
                ens_left[p] = (int)p;      /* self-loop */
                ens_right[p] = (int)p;
            }
        }
        tree_off[t + 1] = base + n_bfs;
        depth_out[t] = (int)tree_depth;

        /* ---- post-round residual doubles as the next gradient ---- */
        double loss = 0.0;
        for (long i = 0; i < n; i++) {
            double gi = pred[i] - y[i];
            grad[i] = gi;
            loss += gi * gi;
        }
        loss /= (double)n;
        losses[t] = loss;
        rounds = t + 1;
        if (early_stop >= 0) {  /* negative = disabled (None in Python) */
            if (loss < best_loss - 1e-12) {
                best_loss = loss;
                rounds_since_best = 0;
            } else {
                rounds_since_best++;
                if (rounds_since_best >= early_stop) break;
            }
        }
    }

    free(part); free(part2); free(grad); free(segs); free(segs2);
    free(b_val); free(b_thr); free(b_g); free(b_n); free(b_feat);
    free(b_child); free(b_sz); free(b_pos);
    return rounds;
}
"""

_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math"]

_kernel = None
_kernel_tried = False


def _cache_dir() -> str:
    root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(root, "repro-ml-kernel")


def _build(tag: str) -> str | None:
    """Compile the kernel into the cache dir; return the .so path."""
    cache = _cache_dir()
    so_path = os.path.join(cache, f"kernel-{tag}.so")
    if os.path.exists(so_path):
        return so_path
    compiler = os.environ.get("CC", "cc")
    try:
        os.makedirs(cache, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache) as tmp:
            src = os.path.join(tmp, "kernel.c")
            out = os.path.join(tmp, "kernel.so")
            with open(src, "w") as fh:
                fh.write(_SOURCE)
            subprocess.run(
                [compiler, *_CFLAGS, "-o", out, src],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(out, so_path)  # atomic: concurrent builders race safely
        return so_path
    except Exception:
        return None


def get_kernel():
    """The (ffi, lib) pair, or ``None`` when unavailable.

    Best-effort and cached: the first call may compile the C source; any
    failure (no cffi, no compiler, sandboxed filesystem) permanently
    falls back to ``None`` for this process.
    """
    global _kernel, _kernel_tried
    if _kernel_tried:
        return _kernel
    _kernel_tried = True
    if get_bool("REPRO_NO_KERNEL"):
        return None
    if not sys.platform.startswith(("linux", "darwin")):
        return None
    try:
        import cffi
    except Exception:
        return None
    try:
        ffi = cffi.FFI()
        # The ABI passes numpy int64 buffers as C ``long``; on an ILP32
        # platform that would be a silent stride mismatch, so fall back.
        if ffi.sizeof("long") != 8:
            return None
        ffi.cdef(_CDEF)
    except Exception:
        return None
    tag = hashlib.sha256((_SOURCE + str(_CFLAGS)).encode()).hexdigest()[:16]
    so_path = _build(tag)
    if so_path is None:
        return None
    try:
        lib = ffi.dlopen(so_path)
    except Exception:
        return None
    _kernel = (ffi, lib)
    return _kernel
