"""Feature standardization helper shared by the ML models."""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Zero-mean / unit-variance feature scaling.

    Constant features are centered but not scaled (their std is treated as
    one) so transforming never divides by zero.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> StandardScaler:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler.transform called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler expects {self.mean_.shape[0]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler.inverse_transform called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return X * self.scale_ + self.mean_
