"""JSON-serializable state for the ML models.

A fitted AutoPower instance embeds dozens of small models; persisting it
lets a team train once against the (slow, licensed) EDA flow and ship the
fitted model to architects who only have the performance simulator.  All
formats are plain dicts of JSON types — no pickle.

Trees serialize in their flattened struct-of-arrays form (``feature[]``,
``threshold[]``, ``left[]``, ``right[]``, ``value[]`` — the exact arrays
the vectorized inference engine runs on); the legacy nested ``root``
format from earlier releases is still accepted on load.
"""

from __future__ import annotations

import numpy as np

from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import RidgeRegression
from repro.ml.tree import FlatTree, RegressionTree, TreeNode

__all__ = [
    "gbm_from_dict",
    "gbm_to_dict",
    "ridge_from_dict",
    "ridge_to_dict",
    "tree_from_dict",
    "tree_to_dict",
]


# -- ridge ------------------------------------------------------------------
def ridge_to_dict(model: RidgeRegression) -> dict:
    if model.coef_ is None:
        raise ValueError("cannot serialize an unfitted RidgeRegression")
    return {
        "kind": "ridge",
        "alpha": model.alpha,
        "fit_intercept": model.fit_intercept,
        "normalize": model.normalize,
        "nonnegative": model.nonnegative,
        "coef": model.coef_.tolist(),
        "intercept": model.intercept_,
    }


def ridge_from_dict(state: dict) -> RidgeRegression:
    if state.get("kind") != "ridge":
        raise ValueError(f"not a ridge state: {state.get('kind')!r}")
    model = RidgeRegression(
        alpha=state["alpha"],
        fit_intercept=state["fit_intercept"],
        normalize=state["normalize"],
        nonnegative=state["nonnegative"],
    )
    model.coef_ = np.asarray(state["coef"], dtype=float)
    model.intercept_ = float(state["intercept"])
    return model


# -- tree -------------------------------------------------------------------
def _node_from_dict(state: dict, depth: int = 0) -> TreeNode:
    """Legacy nested-``root`` reader (pre-flattened format)."""
    node = TreeNode(
        value=float(state["value"]),
        n_samples=int(state.get("n_samples", 0)),
        depth=depth,
    )
    if "left" in state:
        node.feature = int(state["feature"])
        node.threshold = float(state["threshold"])
        node.left = _node_from_dict(state["left"], depth + 1)
        node.right = _node_from_dict(state["right"], depth + 1)
    return node


def tree_to_dict(tree: RegressionTree) -> dict:
    if tree.flat_ is None and tree._root is None:
        raise ValueError("cannot serialize an unfitted RegressionTree")
    flat = tree.ensure_flat()
    return {
        "kind": "tree",
        "n_features": tree.n_features_,
        "max_depth": tree.max_depth,
        "reg_lambda": tree.reg_lambda,
        "tree_method": tree.tree_method,
        "nodes": {
            "feature": flat.feature.tolist(),
            "threshold": flat.threshold.tolist(),
            "left": flat.left.tolist(),
            "right": flat.right.tolist(),
            "value": flat.value.tolist(),
            "n_samples": flat.n_samples.tolist(),
        },
    }


def tree_from_dict(state: dict) -> RegressionTree:
    if state.get("kind") != "tree":
        raise ValueError(f"not a tree state: {state.get('kind')!r}")
    tree = RegressionTree(
        max_depth=int(state["max_depth"]),
        reg_lambda=float(state["reg_lambda"]),
        tree_method=str(state.get("tree_method", "exact")),
    )
    tree.n_features_ = int(state["n_features"])
    if "nodes" in state:
        nodes = state["nodes"]
        tree.flat_ = FlatTree(
            np.asarray(nodes["feature"], dtype=np.int32),
            np.asarray(nodes["threshold"], dtype=float),
            np.asarray(nodes["left"], dtype=np.int32),
            np.asarray(nodes["right"], dtype=np.int32),
            np.asarray(nodes["value"], dtype=float),
            np.asarray(nodes["n_samples"], dtype=np.int64),
        )
        # root_ materializes lazily from flat_ on first introspection.
    else:  # legacy nested format
        tree.root_ = _node_from_dict(state["root"])
        tree.flat_ = FlatTree.from_node(tree.root_)
    return tree


# -- gradient boosting --------------------------------------------------------
def gbm_to_dict(model: GradientBoostingRegressor) -> dict:
    params = {
        "n_estimators": model.n_estimators,
        "max_depth": model.max_depth,
        "reg_lambda": model.reg_lambda,
        "min_child_weight": model.min_child_weight,
        "gamma": model.gamma,
        "subsample": model.subsample,
        "colsample_bytree": model.colsample_bytree,
        "tree_method": model.tree_method,
        "max_bin": model.max_bin,
        "random_state": model.random_state,
    }
    if model.hist_dtype != "float64":
        # Emitted only when non-default so existing serialized models stay
        # byte-identical on the wire.
        params["hist_dtype"] = model.hist_dtype
    return {
        "kind": "gbm",
        "learning_rate": model.learning_rate,
        "base_score": model.base_score_,
        "n_features": model.n_features_,
        "params": params,
        "trees": [
            {"tree": tree_to_dict(tree), "columns": cols.tolist()}
            for tree, cols in model.trees_
        ],
    }


def gbm_from_dict(state: dict) -> GradientBoostingRegressor:
    if state.get("kind") != "gbm":
        raise ValueError(f"not a gbm state: {state.get('kind')!r}")
    params = state["params"]
    model = GradientBoostingRegressor(
        n_estimators=params["n_estimators"],
        learning_rate=state["learning_rate"],
        max_depth=params["max_depth"],
        reg_lambda=params["reg_lambda"],
        min_child_weight=params["min_child_weight"],
        gamma=params["gamma"],
        subsample=params["subsample"],
        colsample_bytree=params["colsample_bytree"],
        tree_method=params.get("tree_method", "exact"),
        max_bin=params.get("max_bin", 256),
        hist_dtype=params.get("hist_dtype", "float64"),
        random_state=params["random_state"],
    )
    model.base_score_ = float(state["base_score"])
    model.n_features_ = int(state["n_features"])
    model.trees_ = [
        (tree_from_dict(entry["tree"]), np.asarray(entry["columns"], dtype=int))
        for entry in state["trees"]
    ]
    model.mark_fitted()
    return model
