"""CART-style regression tree with an XGBoost-flavoured split objective.

The tree minimizes the regularized squared-loss objective used by XGBoost:
for a leaf with gradient sum ``G`` and hessian sum ``H`` (hessian is the
sample count for squared loss), the optimal weight is ``-G / (H + lambda)``
and the split gain is the standard

    gain = 0.5 * (GL²/(HL+λ) + GR²/(HR+λ) - G²/(H+λ)) - γ

A standalone tree (``RegressionTree.fit(X, y)``) simply boosts a single
round from a zero prediction, which reduces to ordinary variance-minimizing
CART with L2 leaf shrinkage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RegressionTree", "TreeNode"]


@dataclass
class TreeNode:
    """A node in the fitted tree.

    Internal nodes carry ``feature``/``threshold`` and two children; leaves
    carry only ``value``.  The structure is deliberately simple so tests can
    introspect fitted trees.
    """

    value: float = 0.0
    feature: int = -1
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    n_samples: int = 0
    depth: int = 0
    gain: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def count_leaves(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return self.left.count_leaves() + self.right.count_leaves()


@dataclass
class _SplitSearchConfig:
    max_depth: int
    min_samples_split: int
    min_child_weight: float
    reg_lambda: float
    gamma: float


class RegressionTree:
    """Single regression tree on (gradient, hessian) statistics.

    Parameters mirror the XGBoost naming so :class:`~repro.ml.gbm.
    GradientBoostingRegressor` can forward its hyper-parameters directly.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; depth 0 is a single leaf.
    min_samples_split:
        Do not split nodes with fewer samples than this.
    min_child_weight:
        Minimum hessian sum (= sample count for squared loss) per child.
    reg_lambda:
        L2 penalty on leaf weights.
    gamma:
        Minimum gain required to make a split.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_split: int = 2,
        min_child_weight: float = 1.0,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
    ) -> None:
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_child_weight = float(min_child_weight)
        self.reg_lambda = float(reg_lambda)
        self.gamma = float(gamma)
        self.root_: TreeNode | None = None
        self.n_features_: int = 0

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "RegressionTree":
        """Fit as a plain regression tree (single boosting round from 0)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on the number of samples")
        grad = -y  # residual of a zero prediction under squared loss
        hess = np.ones_like(y)
        return self.fit_gradients(X, grad, hess)

    def fit_gradients(self, X, grad, hess) -> "RegressionTree":
        """Fit on explicit first/second-order statistics (boosting path)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        grad = np.asarray(grad, dtype=float).ravel()
        hess = np.asarray(hess, dtype=float).ravel()
        if not (X.shape[0] == grad.shape[0] == hess.shape[0]):
            raise ValueError("X, grad, hess disagree on the number of samples")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self.n_features_ = X.shape[1]
        cfg = _SplitSearchConfig(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_child_weight=self.min_child_weight,
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
        )
        idx = np.arange(X.shape[0])
        self.root_ = _build_node(X, grad, hess, idx, depth=0, cfg=cfg)
        return self

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        if self.root_ is None:
            raise RuntimeError("RegressionTree.predict called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, tree expects {self.n_features_}"
            )
        out = np.empty(X.shape[0], dtype=float)
        for i, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                assert node.left is not None and node.right is not None
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    @property
    def depth_(self) -> int:
        """Depth of the fitted tree (0 for a stump leaf)."""
        if self.root_ is None:
            raise RuntimeError("tree is not fitted")
        return _max_depth(self.root_)


def _max_depth(node: TreeNode) -> int:
    if node.is_leaf:
        return 0
    assert node.left is not None and node.right is not None
    return 1 + max(_max_depth(node.left), _max_depth(node.right))


def _leaf_value(gsum: float, hsum: float, reg_lambda: float) -> float:
    return -gsum / (hsum + reg_lambda)


def _build_node(
    X: np.ndarray,
    grad: np.ndarray,
    hess: np.ndarray,
    idx: np.ndarray,
    depth: int,
    cfg: _SplitSearchConfig,
) -> TreeNode:
    gsum = float(grad[idx].sum())
    hsum = float(hess[idx].sum())
    node = TreeNode(
        value=_leaf_value(gsum, hsum, cfg.reg_lambda),
        n_samples=int(idx.size),
        depth=depth,
    )
    if depth >= cfg.max_depth or idx.size < cfg.min_samples_split:
        return node

    best = _find_best_split(X, grad, hess, idx, gsum, hsum, cfg)
    if best is None:
        return node

    feature, threshold, gain, left_idx, right_idx = best
    node.feature = feature
    node.threshold = threshold
    node.gain = gain
    node.left = _build_node(X, grad, hess, left_idx, depth + 1, cfg)
    node.right = _build_node(X, grad, hess, right_idx, depth + 1, cfg)
    return node


def _find_best_split(
    X: np.ndarray,
    grad: np.ndarray,
    hess: np.ndarray,
    idx: np.ndarray,
    gsum: float,
    hsum: float,
    cfg: _SplitSearchConfig,
):
    """Exact greedy split search over every feature and threshold."""
    parent_score = gsum * gsum / (hsum + cfg.reg_lambda)
    best_gain = 0.0
    best = None
    for feature in range(X.shape[1]):
        values = X[idx, feature]
        order = np.argsort(values, kind="stable")
        sv = values[order]
        sg = grad[idx][order]
        sh = hess[idx][order]
        gl = np.cumsum(sg)
        hl = np.cumsum(sh)
        # Candidate split after position i (0-based); skip ties where the
        # next value equals the current one (no threshold separates them).
        for i in range(idx.size - 1):
            if sv[i + 1] == sv[i]:
                continue
            hl_i = float(hl[i])
            hr_i = hsum - hl_i
            if hl_i < cfg.min_child_weight or hr_i < cfg.min_child_weight:
                continue
            gl_i = float(gl[i])
            gr_i = gsum - gl_i
            score = (
                gl_i * gl_i / (hl_i + cfg.reg_lambda)
                + gr_i * gr_i / (hr_i + cfg.reg_lambda)
            )
            gain = 0.5 * (score - parent_score) - cfg.gamma
            if gain > best_gain + 1e-12:
                best_gain = gain
                threshold = 0.5 * (sv[i] + sv[i + 1])
                best = (feature, float(threshold), float(gain), i, order)
    if best is None:
        return None
    feature, threshold, gain, pos, order = best
    left_idx = idx[order[: pos + 1]]
    right_idx = idx[order[pos + 1 :]]
    return feature, threshold, gain, left_idx, right_idx
