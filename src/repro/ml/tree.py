"""CART-style regression tree with an XGBoost-flavoured split objective.

The tree minimizes the regularized squared-loss objective used by XGBoost:
for a leaf with gradient sum ``G`` and hessian sum ``H`` (hessian is the
sample count for squared loss), the optimal weight is ``-G / (H + lambda)``
and the split gain is the standard

    gain = 0.5 * (GL²/(HL+λ) + GR²/(HR+λ) - G²/(H+λ)) - γ

A standalone tree (``RegressionTree.fit(X, y)``) simply boosts a single
round from a zero prediction, which reduces to ordinary variance-minimizing
CART with L2 leaf shrinkage.

Level-wise frontier engine
--------------------------
Trees grow breadth-first: all open nodes of a depth level form a *frontier*
held as contiguous row segments of one shared, presorted workspace
(:class:`TreeWorkspace` — feature-major stable sort order of ``X``, computed
once per fit).  The split search for **every frontier node and every
feature** runs in a single batched pass: segments are gathered into a
padded ``(n_features, n_nodes, width)`` block, cumulative gradient/hessian
sums restart per segment (bitwise-identical to a per-node scan), every
candidate threshold is scored in one array expression, and one fused
feature-major argmax per node picks the winner — ties resolve to the lowest
(feature, position) pair, matching the historical scalar scan order.

There is no recursion and no per-node bookkeeping: accepted splits
partition each segment in place (a stable two-way partition driven by the
root sort order, so **no argsort ever runs below the root** — see
``SORT_COUNTERS``), children become the next frontier, and the per-level
node records are scattered into preorder struct-of-arrays buffers at the
end.  Candidate windows, regularized denominators, column grids and the
preorder layout depend only on the frontier *shape*, which repeats
endlessly across boosting rounds, so they are cached per fit keyed by the
segment-size signature.

``tree_method="hist"`` grows level-wise too: one flattened ``bincount``
over a composite (node, feature, bin) key builds every node's histograms at
once (at most ``max_bin`` quantile buckets per feature, XGBoost-style, via
:class:`HistogramBinner`).  ``hist_dtype="float32"`` runs the histogram
score pipeline in single precision — cheaper on wide (nodes × features ×
bins) grids — while thresholds, leaf values and the fitted model stay
float64.

Fitted trees are flattened into struct-of-arrays form (:class:`FlatTree`:
``feature[]``, ``threshold[]``, ``left[]``, ``right[]``, ``value[]``) and
inference is an iterative vectorized descent over all rows at once — no
per-row Python.  The :class:`TreeNode` object graph is kept for
introspection and serialization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FlatTree",
    "HistogramBinner",
    "RegressionTree",
    "SORT_COUNTERS",
    "TreeNode",
    "TreeWorkspace",
]

_TREE_METHODS = ("exact", "hist")
_HIST_DTYPES = ("float64", "float32")

# Minimum gain (beyond zero) for a split to be kept; also the tolerance the
# historical scalar engine used when comparing candidate gains.
_GAIN_EPS = 1e-12

# Instrumentation: the level-wise engine sorts each feature exactly once per
# workspace (the root presort).  ``node_argsorts`` has no increment site by
# design — tests assert it stays zero to pin the no-per-node-sort invariant.
SORT_COUNTERS = {"workspace_builds": 0, "node_argsorts": 0}

# (f, 1) / (f, 1, 1) index columns for gathers, and arange vectors, cached
# per size — the few-shot regime creates these endlessly.
_ROW_INDEX_CACHE: dict[int, np.ndarray] = {}
_ROW_INDEX3_CACHE: dict[int, np.ndarray] = {}
_ARANGE_CACHE: dict[int, np.ndarray] = {}


def _row_index(f: int) -> np.ndarray:
    rows = _ROW_INDEX_CACHE.get(f)
    if rows is None:
        rows = np.arange(f)[:, None]
        _ROW_INDEX_CACHE[f] = rows
    return rows


def _row_index3(f: int) -> np.ndarray:
    rows = _ROW_INDEX3_CACHE.get(f)
    if rows is None:
        rows = np.arange(f)[:, None, None]
        _ROW_INDEX3_CACHE[f] = rows
    return rows


def _arange(n: int) -> np.ndarray:
    a = _ARANGE_CACHE.get(n)
    if a is None:
        a = np.arange(n)
        _ARANGE_CACHE[n] = a
    return a


@dataclass(slots=True)
class TreeNode:
    """A node in the fitted tree.

    Internal nodes carry ``feature``/``threshold`` and two children; leaves
    carry only ``value``.  The structure is deliberately simple so tests can
    introspect fitted trees.
    """

    value: float = 0.0
    feature: int = -1
    threshold: float = 0.0
    left: TreeNode | None = None
    right: TreeNode | None = None
    n_samples: int = 0
    depth: int = 0
    gain: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def count_leaves(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return self.left.count_leaves() + self.right.count_leaves()


class FlatTree:
    """Struct-of-arrays form of a fitted tree for vectorized inference.

    ``feature[i] == -1`` marks node ``i`` as a leaf (its ``left``/``right``
    are ``-1`` and its ``threshold`` is ``0.0``); internal nodes route row
    ``x`` to ``left[i]`` when ``x[feature[i]] <= threshold[i]`` and to
    ``right[i]`` otherwise.  Nodes are stored in preorder, so node 0 is the
    root.
    """

    __slots__ = ("feature", "threshold", "left", "right", "value", "n_samples", "depth")

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        n_samples: np.ndarray,
    ) -> None:
        self.feature = np.asarray(feature, dtype=np.int32)
        self.threshold = np.asarray(threshold, dtype=float)
        self.left = np.asarray(left, dtype=np.int32)
        self.right = np.asarray(right, dtype=np.int32)
        self.value = np.asarray(value, dtype=float)
        self.n_samples = np.asarray(n_samples, dtype=np.int64)
        self.depth = _flat_depth(self.feature, self.left, self.right)

    @classmethod
    def _from_parts(
        cls,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        n_samples: np.ndarray,
        depth: int,
    ) -> FlatTree:
        """Wrap already-typed arrays with a known depth (builder hot path).

        Structure arrays (``left``/``right``/``n_samples``) may be shared
        between trees of identical shape; they are treated as immutable.
        """
        tree = object.__new__(cls)
        tree.feature = feature
        tree.threshold = threshold
        tree.left = left
        tree.right = right
        tree.value = value
        tree.n_samples = n_samples
        tree.depth = depth
        return tree

    @property
    def n_nodes(self) -> int:
        return int(self.feature.size)

    # ------------------------------------------------------------------
    @classmethod
    def from_node(cls, root: TreeNode) -> FlatTree:
        """Flatten a :class:`TreeNode` graph (preorder)."""
        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []
        n_samples: list[int] = []

        def visit(node: TreeNode) -> int:
            i = len(feature)
            feature.append(node.feature if not node.is_leaf else -1)
            threshold.append(node.threshold if not node.is_leaf else 0.0)
            left.append(-1)
            right.append(-1)
            value.append(node.value)
            n_samples.append(node.n_samples)
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                left[i] = visit(node.left)
                right[i] = visit(node.right)
            return i

        visit(root)
        return cls(
            np.array(feature, dtype=np.int32),
            np.array(threshold, dtype=float),
            np.array(left, dtype=np.int32),
            np.array(right, dtype=np.int32),
            np.array(value, dtype=float),
            np.array(n_samples, dtype=np.int64),
        )

    def to_node(self) -> TreeNode:
        """Rebuild the :class:`TreeNode` graph (for introspection)."""

        def build(i: int, depth: int) -> TreeNode:
            node = TreeNode(
                value=float(self.value[i]),
                n_samples=int(self.n_samples[i]),
                depth=depth,
            )
            if self.feature[i] >= 0:
                node.feature = int(self.feature[i])
                node.threshold = float(self.threshold[i])
                node.left = build(int(self.left[i]), depth + 1)
                node.right = build(int(self.right[i]), depth + 1)
            return node

        return build(0, 0)

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf values for every row — iterative vectorized descent."""
        node = np.zeros(X.shape[0], dtype=np.int32)
        for _ in range(self.depth):
            feat = self.feature[node]
            active = feat >= 0
            if not active.any():
                break
            rows = np.nonzero(active)[0]
            sub = node[rows]
            go_left = X[rows, feat[rows]] <= self.threshold[sub]
            node[rows] = np.where(go_left, self.left[sub], self.right[sub])
        return self.value[node]


def _flat_depth(feature: np.ndarray, left: np.ndarray, right: np.ndarray) -> int:
    """Depth of a flattened tree (0 for a stump leaf)."""
    depth = np.zeros(feature.size, dtype=np.int64)
    best = 0
    # Preorder guarantees children have larger indices than their parent,
    # so one forward pass settles every node's depth.
    for i in range(feature.size):
        if feature[i] >= 0:
            child = depth[i] + 1
            depth[left[i]] = child
            depth[right[i]] = child
            if child > best:
                best = int(child)
    return best


class TreeWorkspace:
    """Per-fit workspace for level-wise exact growth.

    Everything here depends on ``X`` alone, so a boosting loop builds one
    instance and shares it across all rounds.  Arrays are stored transposed
    — ``(n_features, n_samples)`` — so the feature-major batched split
    search runs on contiguous memory:

    ``xt``
        the transposed feature matrix,
    ``order``
        stable argsort of every feature (the *only* argsort the exact
        engine ever performs — frontier partitions below the root are
        maintained by stable two-way splits of this order),
    ``sv`` / ``root_good``
        sorted values and the untied-gap mask of the root segment,
    ``posof``
        the inverse permutation of ``order`` (row -> sorted position),
        used to partition child segments without re-sorting.

    Column subsampling slices the workspace (row subsampling invalidates it
    — the caller must build a fresh one then).
    """

    __slots__ = ("xt", "order", "sv", "root_good", "_posof")

    def __init__(self, X: np.ndarray) -> None:
        XT = np.ascontiguousarray(np.atleast_2d(np.asarray(X, dtype=float)).T)
        SORT_COUNTERS["workspace_builds"] += 1
        self.xt = XT
        # intp indices: fancy gathers then skip numpy's index-cast pass,
        # and the compiled kernel reads them directly.
        self.order = np.ascontiguousarray(XT.argsort(axis=1, kind="stable"), dtype=np.intp)
        self.sv = XT[_row_index(XT.shape[0]), self.order]
        self.root_good = self.sv[:, 1:] != self.sv[:, :-1]
        self._posof: np.ndarray | None = None

    def posof(self) -> np.ndarray:
        """Row -> sorted-position per feature (built on first split)."""
        if self._posof is None:
            f, n = self.order.shape
            posof = np.empty((f, n), dtype=np.intp)
            posof[_row_index(f), self.order] = np.arange(n, dtype=np.intp)
            self._posof = posof
        return self._posof

    def subset_cols(self, cols: np.ndarray) -> TreeWorkspace:
        sub = object.__new__(TreeWorkspace)
        sub.xt = self.xt[cols]
        sub.order = self.order[cols]
        sub.sv = self.sv[cols]
        sub.root_good = self.root_good[cols]
        sub._posof = self._posof[cols] if self._posof is not None else None
        return sub


class HistogramBinner:
    """Per-fit quantile-bin index cache for ``tree_method="hist"``.

    Each feature gets at most ``max_bin`` buckets.  When a feature has few
    distinct values the bucket boundaries are the midpoints between
    consecutive unique values — in that regime the histogram search is
    exactly the exact greedy search.  Otherwise boundaries are quantile cut
    points of the training distribution.  The binned index matrix is
    computed once and shared by every boosting round (the GBM fits dozens
    of trees on the same ``X``), which is the main point of the cache.
    """

    __slots__ = ("binned", "edges", "n_edges", "max_bin", "n_features", "_flat_base", "_cand")

    def __init__(self, X: np.ndarray, max_bin: int = 256) -> None:
        if max_bin < 2:
            raise ValueError("max_bin must be >= 2")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n, f = X.shape
        self.max_bin = int(max_bin)
        self.n_features = f
        edge_list: list[np.ndarray] = []
        for j in range(f):
            col = X[:, j]
            uniq = np.unique(col)
            if uniq.size <= 1:
                edges = np.empty(0, dtype=float)
            elif uniq.size <= max_bin:
                edges = 0.5 * (uniq[:-1] + uniq[1:])
            else:
                qs = np.quantile(col, np.linspace(0.0, 1.0, max_bin + 1)[1:-1])
                edges = np.unique(qs)
            edge_list.append(edges)
        self.n_edges = np.array([e.size for e in edge_list], dtype=np.int64)
        width = max(int(self.n_edges.max(initial=0)), 1)
        self.edges = np.full((f, width), np.inf)
        binned = np.empty((n, f), dtype=np.int32)
        for j, edges in enumerate(edge_list):
            self.edges[j, : edges.size] = edges
            # bin b holds values <= edges[b]; the last bin holds the rest.
            binned[:, j] = np.searchsorted(edges, X[:, j], side="left")
        self.binned = binned
        self._flat_base: np.ndarray | None = None
        self._cand: np.ndarray | None = None

    def flat_base(self) -> np.ndarray:
        """``binned`` offset per feature — composite-key base for the
        level-wise flattened histogram ``bincount``."""
        if self._flat_base is None:
            width = self.edges.shape[1] + 1
            offsets = (np.arange(self.n_features, dtype=np.int64) * width)[None, :]
            self._flat_base = self.binned + offsets
        return self._flat_base

    def cand_mask(self) -> np.ndarray:
        """(f, width-1) mask of real bin boundaries (edges vary per feature)."""
        if self._cand is None:
            width = self.edges.shape[1] + 1
            self._cand = np.arange(width - 1)[None, :] < self.n_edges[:, None]
        return self._cand

    def subset(self, rows: np.ndarray | None, cols: np.ndarray | None) -> HistogramBinner:
        """A view of the cache restricted to a row/column subsample."""
        sub = object.__new__(HistogramBinner)
        binned = self.binned
        edges = self.edges
        n_edges = self.n_edges
        if cols is not None:
            binned = binned[:, cols]
            edges = edges[cols]
            n_edges = n_edges[cols]
        if rows is not None:
            binned = binned[rows]
        sub.binned = binned
        sub.edges = edges
        sub.n_edges = n_edges
        sub.max_bin = self.max_bin
        sub.n_features = binned.shape[1]
        sub._flat_base = None
        sub._cand = None
        return sub


@dataclass
class _SplitSearchConfig:
    """Hyper-parameters plus per-fit caches for the level-wise growers.

    Frontier shapes (segment-size signatures) repeat endlessly across
    boosting rounds, so the candidate windows / denominators / column grids
    (``shape_cache``) and the preorder layout of finished trees
    (``struct_cache``) are shared for the whole fit.  Both depend on the
    hyper-parameters below, so a config must not be reused across models.
    """

    max_depth: int
    min_samples_split: int
    min_child_weight: float
    reg_lambda: float
    gamma: float
    unit_hess: bool = False
    hist_dtype: str = "float64"
    shape_cache: dict = field(default_factory=dict)
    struct_cache: dict = field(default_factory=dict)


class RegressionTree:
    """Single regression tree on (gradient, hessian) statistics.

    Parameters mirror the XGBoost naming so :class:`~repro.ml.gbm.
    GradientBoostingRegressor` can forward its hyper-parameters directly.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; depth 0 is a single leaf.
    min_samples_split:
        Do not split nodes with fewer samples than this.
    min_child_weight:
        Minimum hessian sum (= sample count for squared loss) per child.
    reg_lambda:
        L2 penalty on leaf weights.
    gamma:
        Minimum gain required to make a split.
    tree_method:
        ``"exact"`` scans every distinct threshold; ``"hist"`` scans at
        most ``max_bin`` quantile-bin boundaries per feature.
    max_bin:
        Bucket budget per feature for ``tree_method="hist"``.
    hist_dtype:
        ``"float64"`` (default) or ``"float32"`` — precision of the
        histogram score pipeline (``"hist"`` only; the fitted tree is
        always float64).
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_split: int = 2,
        min_child_weight: float = 1.0,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        tree_method: str = "exact",
        max_bin: int = 256,
        hist_dtype: str = "float64",
    ) -> None:
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if tree_method not in _TREE_METHODS:
            raise ValueError(
                f"tree_method must be one of {_TREE_METHODS}, got {tree_method!r}"
            )
        if max_bin < 2:
            raise ValueError("max_bin must be >= 2")
        if hist_dtype not in _HIST_DTYPES:
            raise ValueError(
                f"hist_dtype must be one of {_HIST_DTYPES}, got {hist_dtype!r}"
            )
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_child_weight = float(min_child_weight)
        self.reg_lambda = float(reg_lambda)
        self.gamma = float(gamma)
        self.tree_method = tree_method
        self.max_bin = int(max_bin)
        self.hist_dtype = hist_dtype
        self._root: TreeNode | None = None
        self.flat_: FlatTree | None = None
        self.n_features_: int = 0

    @property
    def root_(self) -> TreeNode | None:
        """The introspectable node graph (materialized lazily from the
        flattened arrays; ``None`` when unfitted)."""
        if self._root is None and self.flat_ is not None:
            self._root = self.flat_.to_node()
        return self._root

    @root_.setter
    def root_(self, node: TreeNode | None) -> None:
        self._root = node

    # ------------------------------------------------------------------
    def fit(self, X, y) -> RegressionTree:
        """Fit as a plain regression tree (single boosting round from 0)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on the number of samples")
        grad = -y  # residual of a zero prediction under squared loss
        hess = np.ones_like(y)
        return self.fit_gradients(X, grad, hess)

    def fit_gradients(
        self,
        X,
        grad,
        hess,
        binner: HistogramBinner | None = None,
        workspace: TreeWorkspace | None = None,
        train_pred: np.ndarray | None = None,
    ) -> RegressionTree:
        """Fit on explicit first/second-order statistics (boosting path).

        ``binner``/``workspace`` supply precomputed per-``X`` caches (a
        boosting loop shares one across rounds); when omitted they are
        built on demand.  ``train_pred``, when given, is filled in place
        with the tree's predictions on the training rows — a free
        by-product of the leaf partition that saves the boosting loop a
        full ``predict`` pass.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        grad = np.asarray(grad, dtype=float).ravel()
        hess = np.asarray(hess, dtype=float).ravel()
        if not (X.shape[0] == grad.shape[0] == hess.shape[0]):
            raise ValueError("X, grad, hess disagree on the number of samples")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero samples")
        cfg = _SplitSearchConfig(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_child_weight=self.min_child_weight,
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
            unit_hess=bool(np.all(hess == 1.0)),
            hist_dtype=self.hist_dtype,
        )
        if self.tree_method == "hist":
            if binner is None:
                binner = HistogramBinner(X, self.max_bin)
            elif binner.n_features != X.shape[1]:
                raise ValueError("binner does not match the feature count of X")
        else:
            binner = None
        return self._fit_core(X, grad, hess, cfg, binner, workspace, train_pred)

    def _fit_core(
        self,
        X: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        cfg: _SplitSearchConfig,
        binner: HistogramBinner | None,
        workspace: TreeWorkspace | None,
        train_pred: np.ndarray | None,
    ) -> RegressionTree:
        """Validation-free fit used by the boosting loop (caches prebuilt)."""
        self.n_features_ = X.shape[1]
        if binner is not None:
            parts = _grow_hist(binner, grad, hess, cfg, train_pred)
        else:
            if workspace is None:
                workspace = TreeWorkspace(X)
            parts = _grow_exact(workspace, grad, hess, cfg, train_pred)
        self.flat_ = FlatTree._from_parts(*parts)
        self._root = None
        return self

    def ensure_flat(self) -> FlatTree:
        """The struct-of-arrays form of the fitted tree."""
        if self.flat_ is None:
            if self._root is None:
                raise RuntimeError("tree is not fitted")
            self.flat_ = FlatTree.from_node(self._root)
        return self.flat_

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        if self.flat_ is None and self._root is None:
            raise RuntimeError("RegressionTree.predict called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, tree expects {self.n_features_}"
            )
        return self.ensure_flat().predict(X)

    @property
    def depth_(self) -> int:
        """Depth of the fitted tree (0 for a stump leaf)."""
        if self.flat_ is not None:
            return self.flat_.depth
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return _max_depth(self._root)


def _max_depth(node: TreeNode) -> int:
    if node.is_leaf:
        return 0
    assert node.left is not None and node.right is not None
    return 1 + max(_max_depth(node.left), _max_depth(node.right))


class _LevelShapes:
    """Frontier-shape constants for one segment-size signature (cached).

    Everything here is a function of the segment sizes and the fit
    hyper-parameters alone — candidate windows from ``min_child_weight``,
    unit-hessian denominators, the padded column grid — so one instance
    serves every boosting round whose frontier has this shape.
    """

    __slots__ = (
        "np_sizes",
        "neg_vden",
        "starts_l",
        "m",
        "elig_l",
        "E",
        "ne",
        "W",
        "C",
        "root_like",
        "colgrid",
        "window",
        "den_l",
        "den_r",
        "hpl",
        "dead",
    )

    def __init__(self, sizes: tuple, cfg: _SplitSearchConfig) -> None:
        K = len(sizes)
        lam = cfg.reg_lambda
        self.np_sizes = np.array(sizes, dtype=np.int64)
        self.neg_vden = -(self.np_sizes + lam) if cfg.unit_hess else None
        starts = [0] * K
        for k in range(1, K):
            starts[k] = starts[k - 1] + sizes[k - 1]
        self.starts_l = starts
        self.m = starts[-1] + sizes[-1]
        mss = cfg.min_samples_split
        elig = [k for k in range(K) if sizes[k] >= mss]
        self.elig_l = elig
        self.dead = not elig
        self.E = None if len(elig) == K else np.array(elig, dtype=np.int64)
        self.colgrid = None
        self.window = None
        self.den_l = None
        self.den_r = None
        self.hpl = None
        self.root_like = False
        if self.dead:
            self.ne = None
            self.W = 0
            self.C = 0
            return
        ne = np.array([sizes[k] for k in elig], dtype=np.int64)
        self.ne = ne
        W = int(ne.max())
        self.W = W
        C = W - 1
        self.C = C
        # One node spanning the whole workspace: the root — its gathers are
        # free reshapes of the presorted arrays.
        self.root_like = K == 1 and sizes[0] == self.m
        mcw = cfg.min_child_weight
        # Candidate positions j split after sorted index j (left size j+1).
        j = _arange(C)
        if cfg.unit_hess:
            # Hessian == sample count: min_child_weight is a position bound.
            lo = max(math.ceil(mcw) - 1, 0)
            hi = np.minimum(np.floor(ne - 1 - mcw).astype(np.int64) + 1, ne - 1)
            window = (j >= lo) & (j[None, :] < hi[:, None])
        else:
            # General hessians: the weight bound is data-dependent and is
            # applied against the cumulative hessian in the search itself.
            window = j[None, :] < (ne - 1)[:, None]
        self.window = window
        if not window.any():
            self.dead = True
            return
        if not self.root_like:
            se = np.array([starts[k] for k in elig], dtype=np.int64)
            self.colgrid = np.minimum(se[:, None] + _arange(W), self.m - 1)
        if cfg.unit_hess:
            hl = np.arange(1.0, W)
            self.den_l = hl + lam
            # Out-of-window denominators are never read through a valid
            # candidate, but keep them positive so the division never warns.
            self.den_r = np.where(window, (ne[:, None] - hl) + lam, 1.0)
            self.hpl = ne + lam


def _grow_exact(
    ws: TreeWorkspace,
    grad: np.ndarray,
    hess: np.ndarray,
    cfg: _SplitSearchConfig,
    train_pred: np.ndarray | None,
):
    """Level-wise exact growth: one batched split search per depth level.

    The frontier is a list of row segments over ``part`` — a per-feature
    copy of the workspace sort order, partitioned so each node's rows are
    contiguous and feature-sorted.  Cumulative sums restart per segment
    (the padded gather), keeping candidate scores bitwise-identical to a
    per-node scan, and the fused argmax resolves ties to the lowest
    (feature, position) pair exactly like the scalar reference.
    """
    xt = ws.xt
    f = xt.shape[0]
    unit = cfg.unit_hess
    lam = cfg.reg_lambda
    mcw = cfg.min_child_weight
    shape_cache = cfg.shape_cache

    part = ws.order
    sizes: tuple = (xt.shape[1],)
    # Sequential (cumsum) root sums: child sums chain off per-candidate
    # cumulative values, so this keeps every G/H bitwise identical to the
    # compiled kernel's accumulation order.
    g_node = np.cumsum(grad)[-1:]
    h_node = None if unit else np.cumsum(hess)[-1:]
    levels: list[tuple] = []
    sig: list[tuple] = []
    depth = 0
    rix3 = _row_index3(f)

    while True:
        sh = shape_cache.get(sizes)
        if sh is None:
            sh = _LevelShapes(sizes, cfg)
            shape_cache[sizes] = sh
        if unit:
            value = g_node / sh.neg_vden
        else:
            value = g_node / -(h_node + lam)

        if depth >= cfg.max_depth or sh.dead:
            levels.append((value, sh.np_sizes, None, None, None))
            sig.append((sizes, ()))
            if train_pred is not None:
                _fill_exact_leaves(train_pred, part, sh, sizes, value, None)
            break

        # -- batched split search over every eligible frontier node -----
        E = sh.E
        C = sh.C
        if sh.root_like:
            n = sizes[0]
            ridx = part.reshape(f, 1, n)
            g = grad[part].reshape(f, 1, n)
            vals = None
            good = ws.root_good.reshape(f, 1, C)
        else:
            # (f, Ke, W) padded gather.  Pad columns are clipped into later
            # segments; the garbage never reaches a valid candidate because
            # cumulative sums are prefixes and every window stops before the
            # segment end.
            ridx = part[:, sh.colgrid]
            g = grad[ridx]
            vals = xt[rix3, ridx]
            good = vals[:, :, 1:] != vals[:, :, :C]
        glc = np.cumsum(g, axis=2)[:, :, :C]
        gE = g_node if E is None else g_node[E]
        gr = gE[None, :, None] - glc
        if unit:
            score = glc * glc / sh.den_l + gr * gr / sh.den_r
            scm = np.where(good & sh.window, score, -np.inf)
        else:
            hE = h_node if E is None else h_node[E]
            h = hess[ridx] if not sh.root_like else hess[part].reshape(f, 1, -1)
            hlc = np.cumsum(h, axis=2)[:, :, :C]
            hr = hE[None, :, None] - hlc
            with np.errstate(divide="ignore", invalid="ignore"):
                score = glc * glc / (hlc + lam) + gr * gr / (hr + lam)
            ok = (
                (good & sh.window)
                & (hlc >= mcw)
                & (hr >= mcw)
                & ~np.isnan(score)
            )
            scm = np.where(ok, score, -np.inf)

        # Feature-major flatten per node: ties resolve to the lowest
        # (feature, position) pair — the historical scalar scan order.
        Ke = scm.shape[1]
        sct = np.ascontiguousarray(scm.transpose(1, 0, 2)).reshape(Ke, f * C)
        best = sct.argmax(axis=1)
        best_sc = sct[_arange(Ke), best]
        bf = best // C
        bp = best - bf * C
        hpl = sh.hpl if unit else hE + lam
        gain = 0.5 * (best_sc - gE * gE / hpl) - cfg.gamma
        ai = np.nonzero(gain > _GAIN_EPS)[0]
        A = ai.size
        if A == 0:
            levels.append((value, sh.np_sizes, None, None, None))
            sig.append((sizes, ()))
            if train_pred is not None:
                _fill_exact_leaves(train_pred, part, sh, sizes, value, None)
            break

        acc_nodes = ai if E is None else E[ai]
        bfa = bf[ai]
        bpa = bp[ai]
        n_left = bpa + 1
        gla = glc[bfa, ai, bpa]
        if vals is None:
            thr = 0.5 * (ws.sv[bfa, bpa] + ws.sv[bfa, bpa + 1])
        else:
            thr = 0.5 * (vals[bfa, ai, bpa] + vals[bfa, ai, bpa + 1])
        acc_t = tuple(acc_nodes.tolist())
        levels.append((value, sh.np_sizes, acc_nodes, bfa, thr))
        sig.append((sizes, acc_t))
        if train_pred is not None and A < len(sizes):
            _fill_exact_leaves(train_pred, part, sh, sizes, value, set(acc_t))

        # -- stable partition of accepted segments (no re-sort: a child's
        # rows keep the root order, filtered by the split's position cut).
        posof = ws.posof()
        starts_l = sh.starts_l
        bfa_l = bfa.tolist()
        bpa_l = bpa.tolist()
        ai_l = ai.tolist()
        nl_l = n_left.tolist()
        m2 = sum(sizes[k] for k in acc_t)
        npart = np.empty((f, m2), dtype=np.intp)
        new_sizes = []
        o = 0
        for a in range(A):
            k = acc_t[a]
            s = starts_l[k]
            nk = sizes[k]
            nl = nl_l[a]
            bfk = bfa_l[a]
            Pk = part[:, s : s + nk]
            cut = posof[bfk, ridx[bfk, ai_l[a], bpa_l[a]]]
            Lk = posof[bfk, Pk] <= cut
            npart[:, o : o + nl] = Pk[Lk].reshape(f, nl)
            npart[:, o + nl : o + nk] = Pk[~Lk].reshape(f, nk - nl)
            o += nk
            new_sizes.append(nl)
            new_sizes.append(nk - nl)
        g2 = np.empty(2 * A)
        g2[0::2] = gla
        g2[1::2] = g_node[acc_nodes] - gla
        if not unit:
            hla = hlc[bfa, ai, bpa]
            h2 = np.empty(2 * A)
            h2[0::2] = hla
            h2[1::2] = h_node[acc_nodes] - hla
            h_node = h2
        part = npart
        sizes = tuple(new_sizes)
        g_node = g2
        depth += 1

    return _assemble(levels, sig, cfg)


def _fill_exact_leaves(
    train_pred: np.ndarray,
    part: np.ndarray,
    sh: _LevelShapes,
    sizes: tuple,
    value: np.ndarray,
    acc: set | None,
) -> None:
    """Scatter leaf values to training rows (segments that stop here)."""
    row0 = part[0]
    starts_l = sh.starts_l
    for k in range(len(sizes)):
        if acc is None or k not in acc:
            s = starts_l[k]
            train_pred[row0[s : s + sizes[k]]] = value[k]


def _assemble(levels: list[tuple], sig: list[tuple], cfg: _SplitSearchConfig):
    """Scatter per-level (BFS) records into preorder struct-of-arrays.

    The preorder permutation, child links and sample counts are functions
    of the structure signature alone, which repeats across boosting rounds
    — they are cached per fit and shared between same-shaped trees (the
    arrays are treated as immutable).
    """
    key = tuple(sig)
    tmpl = cfg.struct_cache.get(key)
    if tmpl is None:
        tmpl = _build_struct_template(levels, sig)
        cfg.struct_cache[key] = tmpl
    total, depth, perm, pacc, left, right, nsamp = tmpl
    L = len(levels)
    if L == 1:
        value = levels[0][0]
    else:
        value = np.empty(total)
        value[perm] = np.concatenate([lv[0] for lv in levels])
    feature = np.full(total, -1, dtype=np.int32)
    threshold = np.zeros(total)
    if pacc is not None:
        feats = [lv[3] for lv in levels if lv[2] is not None]
        thrs = [lv[4] for lv in levels if lv[2] is not None]
        if len(feats) == 1:
            feature[pacc] = feats[0]
            threshold[pacc] = thrs[0]
        else:
            feature[pacc] = np.concatenate(feats)
            threshold[pacc] = np.concatenate(thrs)
    return feature, threshold, left, right, value, nsamp, depth


def _build_struct_template(levels: list[tuple], sig: list[tuple]):
    """Preorder layout for one structure signature (cold path)."""
    L = len(levels)
    counts = [lv[1].size for lv in levels]
    total = sum(counts)
    # Subtree sizes bottom-up: children of the a-th accepted node sit at
    # positions 2a / 2a+1 of the next level.
    sub = [np.ones(c, dtype=np.int64) for c in counts]
    for d in range(L - 2, -1, -1):
        acc = levels[d][2]
        if acc is not None:
            cs = sub[d + 1]
            sub[d][acc] = 1 + cs[0::2] + cs[1::2]
    # Preorder positions top-down: left child right after the parent, right
    # child after the whole left subtree.
    pos = [np.zeros(1, dtype=np.int64)] + [None] * (L - 1)
    for d in range(L - 1):
        acc = levels[d][2]
        nxt = np.empty(counts[d + 1], dtype=np.int64)
        lp = pos[d][acc] + 1
        nxt[0::2] = lp
        nxt[1::2] = lp + sub[d + 1][0::2]
        pos[d + 1] = nxt
    left = np.full(total, -1, dtype=np.int32)
    right = np.full(total, -1, dtype=np.int32)
    nsamp = np.empty(total, dtype=np.int64)
    pacc_parts = []
    for d in range(L):
        p = pos[d]
        nsamp[p] = levels[d][1]
        acc = levels[d][2]
        if acc is not None:
            pa = p[acc]
            pacc_parts.append(pa)
            cp = pos[d + 1]
            left[pa] = cp[0::2]
            right[pa] = cp[1::2]
    perm = pos[0] if L == 1 else np.concatenate(pos)
    pacc = np.concatenate(pacc_parts) if pacc_parts else None
    return total, L - 1, perm, pacc, left, right, nsamp


def _grow_hist(
    binner: HistogramBinner,
    grad: np.ndarray,
    hess: np.ndarray,
    cfg: _SplitSearchConfig,
    train_pred: np.ndarray | None,
):
    """Level-wise histogram growth over precomputed quantile bins.

    Every frontier node's gradient/count histograms come from one flattened
    ``bincount`` over a composite (node, feature, bin) key; candidate
    boundaries are bin upper edges.  With ``hist_dtype="float32"`` the
    cumulative/score pipeline runs in single precision (the fitted tree and
    node statistics stay float64).
    """
    binned = binner.binned
    n, f = binned.shape
    width = binner.edges.shape[1] + 1
    fw = f * width
    unit = cfg.unit_hess
    lam = cfg.reg_lambda
    mcw = cfg.min_child_weight
    mss = cfg.min_samples_split
    f32 = cfg.hist_dtype == "float32"
    flat_base = binner.flat_base()
    cand = binner.cand_mask()

    rows: np.ndarray | None = None  # None = all rows, all in node 0
    lbl: np.ndarray | None = None
    sizes: tuple = (n,)
    g_node = np.array([grad.sum()])
    h_node = None if unit else np.array([hess.sum()])
    levels: list[tuple] = []
    sig: list[tuple] = []
    depth = 0

    while True:
        K = len(sizes)
        np_sizes = np.array(sizes, dtype=np.int64)
        if unit:
            value = g_node / -(np_sizes + lam)
        else:
            value = g_node / -(h_node + lam)
        elig = np_sizes >= mss
        if depth >= cfg.max_depth or not elig.any():
            levels.append((value, np_sizes, None, None, None))
            sig.append((sizes, ()))
            if train_pred is not None:
                if rows is None:
                    train_pred[:] = value[0]
                else:
                    train_pred[rows] = value[lbl]
            break

        # -- one flattened bincount builds every node's histograms -------
        if rows is None:
            comp = flat_base.ravel()
            gw = np.repeat(grad, f)
            hw = None if unit else np.repeat(hess, f)
        else:
            comp = (flat_base[rows] + (lbl.astype(np.int64) * fw)[:, None]).ravel()
            gw = np.repeat(grad[rows], f)
            hw = None if unit else np.repeat(hess[rows], f)
        ghist = np.bincount(comp, weights=gw, minlength=K * fw).reshape(K, f, width)
        chist = np.bincount(comp, minlength=K * fw).reshape(K, f, width)
        glc = np.cumsum(ghist, axis=2)[:, :, : width - 1]
        nl = np.cumsum(chist, axis=2)[:, :, : width - 1]
        if unit:
            hlc = nl  # hessian == sample count; arithmetic upcasts exactly
            hsum = np_sizes
        else:
            hhist = np.bincount(comp, weights=hw, minlength=K * fw).reshape(K, f, width)
            hlc = np.cumsum(hhist, axis=2)[:, :, : width - 1]
            hsum = h_node
        if f32:
            gl_s = glc.astype(np.float32)
            hl_s = hlc.astype(np.float32)
            gr_s = g_node.astype(np.float32)[:, None, None] - gl_s
            hr_s = hsum.astype(np.float32)[:, None, None] - hl_s
            lam_s = np.float32(lam)
        else:
            gl_s, hl_s = glc, hlc
            gr_s = g_node[:, None, None] - glc
            hr_s = hsum[:, None, None] - hlc
            lam_s = lam
        with np.errstate(divide="ignore", invalid="ignore"):
            score = gl_s * gl_s / (hl_s + lam_s) + gr_s * gr_s / (hr_s + lam_s)
        if unit:
            # Counts double as hessians: both the never-empty-children rule
            # and min_child_weight collapse into one count window per node.
            lo = max(1, math.ceil(mcw))
            hi = (np_sizes - lo)[:, None, None]
            valid = cand[None] & (nl >= lo) & (nl <= hi)
        else:
            valid = (
                cand[None]
                & (nl >= 1)  # a node may occupy few bins: never empty children
                & (nl <= (np_sizes - 1)[:, None, None])
                & (hlc >= mcw)
                & ((hsum[:, None, None] - hlc) >= mcw)
                & ~np.isnan(score)
            )
        scm = np.where(valid, score, -np.inf)
        sct = scm.reshape(K, f * (width - 1))  # C-order: feature-major ties
        best = sct.argmax(axis=1)
        best_sc = sct[_arange(K), best].astype(float)
        bf = best // (width - 1)
        bp = best - bf * (width - 1)
        gain = 0.5 * (best_sc - g_node * g_node / (hsum + lam)) - cfg.gamma
        ai = np.nonzero((gain > _GAIN_EPS) & elig)[0]
        A = ai.size
        if A == 0:
            levels.append((value, np_sizes, None, None, None))
            sig.append((sizes, ()))
            if train_pred is not None:
                if rows is None:
                    train_pred[:] = value[0]
                else:
                    train_pred[rows] = value[lbl]
            break

        bfa = bf[ai]
        bpa = bp[ai]
        thr = binner.edges[bfa, bpa]
        n_left = nl[ai, bfa, bpa]
        if f32:
            # Node statistics stay float64: re-reduce the winners' prefix
            # bins from the double-precision histograms (A is small).
            gla = np.array(
                [ghist[k, bfa[a], : bpa[a] + 1].sum() for a, k in enumerate(ai)]
            )
        else:
            gla = glc[ai, bfa, bpa]
        acc_t = tuple(ai.tolist())
        levels.append((value, np_sizes, ai, bfa.astype(np.int64), thr))
        sig.append((sizes, acc_t))

        # -- reassign rows to children / settle leaves -------------------
        if rows is None:
            rows = np.arange(n)
            lbl = np.zeros(n, dtype=np.int64)
        bf_full = np.full(K, -1, dtype=np.int64)
        bf_full[ai] = bfa
        bp_full = np.zeros(K, dtype=np.int64)
        bp_full[ai] = bpa
        childbase = np.zeros(K, dtype=np.int64)
        childbase[ai] = 2 * np.arange(A)
        rbf = bf_full[lbl]
        act = rbf >= 0
        if train_pred is not None and A < K:
            leaf_rows = rows[~act]
            train_pred[leaf_rows] = value[lbl[~act]]
        rows = rows[act]
        lsub = lbl[act]
        go_right = binned[rows, rbf[act]] > bp_full[lsub]
        lbl = childbase[lsub] + go_right
        new_sizes = []
        for a in range(A):
            k = int(ai[a])
            nlk = int(n_left[a])
            new_sizes.append(nlk)
            new_sizes.append(sizes[k] - nlk)
        g2 = np.empty(2 * A)
        g2[0::2] = gla
        g2[1::2] = g_node[ai] - gla
        g_node = g2
        if not unit:
            hla = hlc[ai, bfa, bpa]
            h2 = np.empty(2 * A)
            h2[0::2] = hla
            h2[1::2] = h_node[ai] - hla
            h_node = h2
        sizes = tuple(new_sizes)
        depth += 1

    return _assemble(levels, sig, cfg)
