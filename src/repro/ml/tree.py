"""CART-style regression tree with an XGBoost-flavoured split objective.

The tree minimizes the regularized squared-loss objective used by XGBoost:
for a leaf with gradient sum ``G`` and hessian sum ``H`` (hessian is the
sample count for squared loss), the optimal weight is ``-G / (H + lambda)``
and the split gain is the standard

    gain = 0.5 * (GL²/(HL+λ) + GR²/(HR+λ) - G²/(H+λ)) - γ

A standalone tree (``RegressionTree.fit(X, y)``) simply boosts a single
round from a zero prediction, which reduces to ordinary variance-minimizing
CART with L2 leaf shrinkage.

Vectorized engine
-----------------
Split search is fully vectorized: each node sorts its rows for *all*
features at once (one 2-D argsort), builds cumulative gradient/hessian
arrays, evaluates every candidate threshold in one array expression (tie
candidates masked, ``min_child_weight`` bounds applied as a slice in the
unit-hessian case), and picks the winner with a single feature-major
argmax.  Because the split gain is a monotone affine function of the
left/right score sum, the argmax runs on the raw score and the gain is
materialized once, for the winner only.

Two per-fit caches let a boosting loop amortize work that depends on ``X``
alone across all rounds: :class:`PresortCache` (feature-sorted root order,
used by ``tree_method="exact"``) and :class:`HistogramBinner`
(quantile-bin indices, used by ``tree_method="hist"`` — at most
``max_bin`` buckets per feature, XGBoost-style).  Child G/H sums are read
off the parent's cumulative arrays instead of being re-reduced, and the
few-shot regime (dozens of tiny nodes per tree, thousands of trees per
AutoPower fit) is dominated by numpy dispatch, so the hot path also caches
per-node-size denominator vectors in the search config.

Fitted trees are flattened into struct-of-arrays form (:class:`FlatTree`:
``feature[]``, ``threshold[]``, ``left[]``, ``right[]``, ``value[]``) and
inference is an iterative vectorized descent over all rows at once — no
per-row Python.  The :class:`TreeNode` object graph is kept for
introspection and serialization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["FlatTree", "HistogramBinner", "PresortCache", "RegressionTree", "TreeNode"]

_TREE_METHODS = ("exact", "hist")

# Minimum gain (beyond zero) for a split to be kept; also the tolerance the
# historical scalar engine used when comparing candidate gains.
_GAIN_EPS = 1e-12

# (f, 1) index columns for take-along-axis-style gathers, cached per width.
_ROW_INDEX_CACHE: dict[int, np.ndarray] = {}


def _row_index(f: int) -> np.ndarray:
    rows = _ROW_INDEX_CACHE.get(f)
    if rows is None:
        rows = np.arange(f)[:, None]
        _ROW_INDEX_CACHE[f] = rows
    return rows


@dataclass(slots=True)
class TreeNode:
    """A node in the fitted tree.

    Internal nodes carry ``feature``/``threshold`` and two children; leaves
    carry only ``value``.  The structure is deliberately simple so tests can
    introspect fitted trees.
    """

    value: float = 0.0
    feature: int = -1
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    n_samples: int = 0
    depth: int = 0
    gain: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def count_leaves(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return self.left.count_leaves() + self.right.count_leaves()


class FlatTree:
    """Struct-of-arrays form of a fitted tree for vectorized inference.

    ``feature[i] == -1`` marks node ``i`` as a leaf (its ``left``/``right``
    are ``-1`` and its ``threshold`` is ``0.0``); internal nodes route row
    ``x`` to ``left[i]`` when ``x[feature[i]] <= threshold[i]`` and to
    ``right[i]`` otherwise.  Nodes are stored in preorder, so node 0 is the
    root.
    """

    __slots__ = ("feature", "threshold", "left", "right", "value", "n_samples", "depth")

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        n_samples: np.ndarray,
    ) -> None:
        self.feature = np.asarray(feature, dtype=np.int32)
        self.threshold = np.asarray(threshold, dtype=float)
        self.left = np.asarray(left, dtype=np.int32)
        self.right = np.asarray(right, dtype=np.int32)
        self.value = np.asarray(value, dtype=float)
        self.n_samples = np.asarray(n_samples, dtype=np.int64)
        self.depth = _flat_depth(self.feature, self.left, self.right)

    @property
    def n_nodes(self) -> int:
        return int(self.feature.size)

    # ------------------------------------------------------------------
    @classmethod
    def from_node(cls, root: TreeNode) -> "FlatTree":
        """Flatten a :class:`TreeNode` graph (preorder)."""
        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []
        n_samples: list[int] = []

        def visit(node: TreeNode) -> int:
            i = len(feature)
            feature.append(node.feature if not node.is_leaf else -1)
            threshold.append(node.threshold if not node.is_leaf else 0.0)
            left.append(-1)
            right.append(-1)
            value.append(node.value)
            n_samples.append(node.n_samples)
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                left[i] = visit(node.left)
                right[i] = visit(node.right)
            return i

        visit(root)
        return cls(
            np.array(feature, dtype=np.int32),
            np.array(threshold, dtype=float),
            np.array(left, dtype=np.int32),
            np.array(right, dtype=np.int32),
            np.array(value, dtype=float),
            np.array(n_samples, dtype=np.int64),
        )

    def to_node(self) -> TreeNode:
        """Rebuild the :class:`TreeNode` graph (for introspection)."""

        def build(i: int, depth: int) -> TreeNode:
            node = TreeNode(
                value=float(self.value[i]),
                n_samples=int(self.n_samples[i]),
                depth=depth,
            )
            if self.feature[i] >= 0:
                node.feature = int(self.feature[i])
                node.threshold = float(self.threshold[i])
                node.left = build(int(self.left[i]), depth + 1)
                node.right = build(int(self.right[i]), depth + 1)
            return node

        return build(0, 0)

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf values for every row — iterative vectorized descent."""
        node = np.zeros(X.shape[0], dtype=np.int32)
        for _ in range(self.depth):
            feat = self.feature[node]
            active = feat >= 0
            if not active.any():
                break
            rows = np.nonzero(active)[0]
            sub = node[rows]
            go_left = X[rows, feat[rows]] <= self.threshold[sub]
            node[rows] = np.where(go_left, self.left[sub], self.right[sub])
        return self.value[node]


def _flat_depth(feature: np.ndarray, left: np.ndarray, right: np.ndarray) -> int:
    """Depth of a flattened tree (0 for a stump leaf)."""
    depth = np.zeros(feature.size, dtype=np.int64)
    best = 0
    # Preorder guarantees children have larger indices than their parent,
    # so one forward pass settles every node's depth.
    for i in range(feature.size):
        if feature[i] >= 0:
            child = depth[i] + 1
            depth[left[i]] = child
            depth[right[i]] = child
            if child > best:
                best = int(child)
    return best


class PresortCache:
    """Per-fit cache of the feature-sorted root order (exact mode).

    The sort order, sorted values, and tie mask of the *root* node depend
    on ``X`` alone, so a boosting loop computes them once and reuses them
    for the root split of every round; child nodes re-sort their (smaller)
    subsets.  Arrays are stored transposed — ``(n_features, n_samples)`` —
    so the feature-major argmax of the split search runs on contiguous
    memory.  Column subsampling slices the cache (row subsampling
    invalidates it — the caller must drop it then).
    """

    __slots__ = ("xt", "order", "sv", "untie")

    def __init__(self, X: np.ndarray) -> None:
        XT = np.ascontiguousarray(np.atleast_2d(np.asarray(X, dtype=float)).T)
        self.xt = XT  # child nodes gather their columns from this
        self.order = XT.argsort(axis=1, kind="stable")
        self.sv = XT[_row_index(XT.shape[0]), self.order]
        self.untie = self.sv[:, 1:] == self.sv[:, :-1]

    def subset_cols(self, cols: np.ndarray) -> "PresortCache":
        sub = object.__new__(PresortCache)
        sub.xt = self.xt[cols]
        sub.order = self.order[cols]
        sub.sv = self.sv[cols]
        sub.untie = self.untie[cols]
        return sub


class HistogramBinner:
    """Per-fit quantile-bin index cache for ``tree_method="hist"``.

    Each feature gets at most ``max_bin`` buckets.  When a feature has few
    distinct values the bucket boundaries are the midpoints between
    consecutive unique values — in that regime the histogram search is
    exactly the exact greedy search.  Otherwise boundaries are quantile cut
    points of the training distribution.  The binned index matrix is
    computed once and shared by every boosting round (the GBM fits dozens
    of trees on the same ``X``), which is the main point of the cache.
    """

    __slots__ = ("binned", "edges", "n_edges", "max_bin", "n_features")

    def __init__(self, X: np.ndarray, max_bin: int = 256) -> None:
        if max_bin < 2:
            raise ValueError("max_bin must be >= 2")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n, f = X.shape
        self.max_bin = int(max_bin)
        self.n_features = f
        edge_list: list[np.ndarray] = []
        for j in range(f):
            col = X[:, j]
            uniq = np.unique(col)
            if uniq.size <= 1:
                edges = np.empty(0, dtype=float)
            elif uniq.size <= max_bin:
                edges = 0.5 * (uniq[:-1] + uniq[1:])
            else:
                qs = np.quantile(col, np.linspace(0.0, 1.0, max_bin + 1)[1:-1])
                edges = np.unique(qs)
            edge_list.append(edges)
        self.n_edges = np.array([e.size for e in edge_list], dtype=np.int64)
        width = max(int(self.n_edges.max(initial=0)), 1)
        self.edges = np.full((f, width), np.inf)
        binned = np.empty((n, f), dtype=np.int32)
        for j, edges in enumerate(edge_list):
            self.edges[j, : edges.size] = edges
            # bin b holds values <= edges[b]; the last bin holds the rest.
            binned[:, j] = np.searchsorted(edges, X[:, j], side="left")
        self.binned = binned

    def subset(self, rows: np.ndarray | None, cols: np.ndarray | None) -> "HistogramBinner":
        """A view of the cache restricted to a row/column subsample."""
        sub = object.__new__(HistogramBinner)
        binned = self.binned
        edges = self.edges
        n_edges = self.n_edges
        if cols is not None:
            binned = binned[:, cols]
            edges = edges[cols]
            n_edges = n_edges[cols]
        if rows is not None:
            binned = binned[rows]
        sub.binned = binned
        sub.edges = edges
        sub.n_edges = n_edges
        sub.max_bin = self.max_bin
        sub.n_features = binned.shape[1]
        return sub


@dataclass
class _SplitSearchConfig:
    """Hyper-parameters plus per-fit scratch caches for the split search.

    ``size_cache`` maps a node size ``n`` to its candidate bounds and
    regularized denominator vectors (unit-hessian case) — node sizes repeat
    endlessly across boosting rounds, so these tiny arrays are shared.
    """

    max_depth: int
    min_samples_split: int
    min_child_weight: float
    reg_lambda: float
    gamma: float
    unit_hess: bool = False
    size_cache: dict = field(default_factory=dict)
    # idx.tobytes() -> (sorted_rows, sv, untie); sort structures depend on X
    # alone, and the same node subsets recur across boosting rounds.  Only
    # valid while X (rows *and* columns) is fixed; None disables.
    sort_cache: dict | None = None
    # node size -> scratch arrays for the allocation-free score pipeline.
    buffers: dict = field(default_factory=dict)
    # Tie-masked denominators of the root node (valid with sort_cache).
    root_dens: tuple | None = None

    def bounds_for(self, n: int):
        entry = self.size_cache.get(n)
        if entry is None:
            lo = max(math.ceil(self.min_child_weight) - 1, 0)
            # Candidates sit between sorted positions, so cap at n-1 even
            # when min_child_weight imposes no bound of its own (mcw <= 1).
            hi = min(math.floor(n - 1 - self.min_child_weight) + 1, n - 1)
            if hi > lo:
                hl = np.arange(lo + 1.0, hi + 1.0)
                den_l = hl + self.reg_lambda
                den_r = (n - hl) + self.reg_lambda
            else:
                den_l = den_r = None
            entry = (lo, hi, den_l, den_r)
            self.size_cache[n] = entry
        return entry


class RegressionTree:
    """Single regression tree on (gradient, hessian) statistics.

    Parameters mirror the XGBoost naming so :class:`~repro.ml.gbm.
    GradientBoostingRegressor` can forward its hyper-parameters directly.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; depth 0 is a single leaf.
    min_samples_split:
        Do not split nodes with fewer samples than this.
    min_child_weight:
        Minimum hessian sum (= sample count for squared loss) per child.
    reg_lambda:
        L2 penalty on leaf weights.
    gamma:
        Minimum gain required to make a split.
    tree_method:
        ``"exact"`` scans every distinct threshold; ``"hist"`` scans at
        most ``max_bin`` quantile-bin boundaries per feature.
    max_bin:
        Bucket budget per feature for ``tree_method="hist"``.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_split: int = 2,
        min_child_weight: float = 1.0,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        tree_method: str = "exact",
        max_bin: int = 256,
    ) -> None:
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if tree_method not in _TREE_METHODS:
            raise ValueError(
                f"tree_method must be one of {_TREE_METHODS}, got {tree_method!r}"
            )
        if max_bin < 2:
            raise ValueError("max_bin must be >= 2")
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_child_weight = float(min_child_weight)
        self.reg_lambda = float(reg_lambda)
        self.gamma = float(gamma)
        self.tree_method = tree_method
        self.max_bin = int(max_bin)
        self._root: TreeNode | None = None
        self.flat_: FlatTree | None = None
        self.n_features_: int = 0

    @property
    def root_(self) -> TreeNode | None:
        """The introspectable node graph (materialized lazily from the
        flattened arrays; ``None`` when unfitted)."""
        if self._root is None and self.flat_ is not None:
            self._root = self.flat_.to_node()
        return self._root

    @root_.setter
    def root_(self, node: TreeNode | None) -> None:
        self._root = node

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "RegressionTree":
        """Fit as a plain regression tree (single boosting round from 0)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on the number of samples")
        grad = -y  # residual of a zero prediction under squared loss
        hess = np.ones_like(y)
        return self.fit_gradients(X, grad, hess)

    def fit_gradients(
        self,
        X,
        grad,
        hess,
        binner: HistogramBinner | None = None,
        presort: PresortCache | None = None,
        train_pred: np.ndarray | None = None,
    ) -> "RegressionTree":
        """Fit on explicit first/second-order statistics (boosting path).

        ``binner``/``presort`` supply precomputed per-``X`` caches (a
        boosting loop shares one across rounds); when omitted they are
        built on demand.  ``train_pred``, when given, is filled in place
        with the tree's predictions on the training rows — a free
        by-product of the leaf partition that saves the boosting loop a
        full ``predict`` pass.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        grad = np.asarray(grad, dtype=float).ravel()
        hess = np.asarray(hess, dtype=float).ravel()
        if not (X.shape[0] == grad.shape[0] == hess.shape[0]):
            raise ValueError("X, grad, hess disagree on the number of samples")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero samples")
        cfg = _SplitSearchConfig(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_child_weight=self.min_child_weight,
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
            unit_hess=bool(np.all(hess == 1.0)),
        )
        if self.tree_method == "hist":
            if binner is None:
                binner = HistogramBinner(X, self.max_bin)
            elif binner.n_features != X.shape[1]:
                raise ValueError("binner does not match the feature count of X")
        else:
            binner = None
        return self._fit_core(X, grad, hess, cfg, binner, presort, train_pred)

    def _fit_core(
        self,
        X: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        cfg: _SplitSearchConfig,
        binner: HistogramBinner | None,
        presort: PresortCache | None,
        train_pred: np.ndarray | None,
    ) -> "RegressionTree":
        """Validation-free fit used by the boosting loop (caches prebuilt)."""
        self.n_features_ = X.shape[1]
        gsum = float(grad.sum())
        hsum = float(grad.size) if cfg.unit_hess else float(hess.sum())
        # Nodes are appended straight into struct-of-arrays buffers; the
        # TreeNode graph is only materialized on introspection.
        out: tuple[list, ...] = ([], [], [], [], [], [])
        _build_flat(
            X, grad, hess, None, 0, cfg, binner, gsum, hsum, train_pred, presort, out
        )
        self.flat_ = FlatTree(
            np.array(out[0], dtype=np.int32),
            np.array(out[1], dtype=float),
            np.array(out[2], dtype=np.int32),
            np.array(out[3], dtype=np.int32),
            np.array(out[4], dtype=float),
            np.array(out[5], dtype=np.int64),
        )
        self._root = None
        return self

    def ensure_flat(self) -> FlatTree:
        """The struct-of-arrays form of the fitted tree."""
        if self.flat_ is None:
            if self._root is None:
                raise RuntimeError("tree is not fitted")
            self.flat_ = FlatTree.from_node(self._root)
        return self.flat_

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        if self.flat_ is None and self._root is None:
            raise RuntimeError("RegressionTree.predict called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, tree expects {self.n_features_}"
            )
        return self.ensure_flat().predict(X)

    @property
    def depth_(self) -> int:
        """Depth of the fitted tree (0 for a stump leaf)."""
        if self.flat_ is not None:
            return self.flat_.depth
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        return _max_depth(self._root)


def _max_depth(node: TreeNode) -> int:
    if node.is_leaf:
        return 0
    assert node.left is not None and node.right is not None
    return 1 + max(_max_depth(node.left), _max_depth(node.right))


def _build_flat(
    X: np.ndarray,
    grad: np.ndarray,
    hess: np.ndarray,
    idx: np.ndarray | None,
    depth: int,
    cfg: _SplitSearchConfig,
    binner: HistogramBinner | None,
    gsum: float,
    hsum: float,
    train_pred: np.ndarray | None,
    presort: PresortCache | None,
    out: tuple[list, ...],
) -> int:
    """Recursive builder appending preorder struct-of-arrays rows.

    ``idx is None`` denotes the root (all rows).  Returns the node index.
    """
    features, thresholds, lefts, rights, values, n_samples = out
    size = X.shape[0] if idx is None else idx.size
    value = -gsum / (hsum + cfg.reg_lambda)
    best = None
    if depth < cfg.max_depth and size >= cfg.min_samples_split:
        if binner is not None:
            best = _find_best_split_hist(binner, grad, hess, idx, gsum, hsum, cfg)
        else:
            best = _find_best_split_exact(X, grad, hess, idx, gsum, hsum, cfg, presort)
    i = len(features)
    if best is None:
        features.append(-1)
        thresholds.append(0.0)
        lefts.append(-1)
        rights.append(-1)
        values.append(value)
        n_samples.append(size)
        if train_pred is not None:
            if idx is None:
                train_pred[:] = value
            else:
                train_pred[idx] = value
        return i

    feature, threshold, _gain, left_idx, right_idx, gl, hl = best
    features.append(feature)
    thresholds.append(threshold)
    lefts.append(-1)
    rights.append(-1)
    values.append(value)
    n_samples.append(size)
    lefts[i] = _build_flat(
        X, grad, hess, left_idx, depth + 1, cfg, binner, gl, hl, train_pred, presort, out
    )
    rights[i] = _build_flat(
        X,
        grad,
        hess,
        right_idx,
        depth + 1,
        cfg,
        binner,
        gsum - gl,
        hsum - hl,
        train_pred,
        presort,
        out,
    )
    return i


def _masked_dens(cfg: _SplitSearchConfig, n: int, untie: np.ndarray):
    """Per-subset denominators with ``+inf`` at tie candidates.

    A tie candidate then scores ``0``; since scores are non-negative and a
    zero-score winner implies non-positive gain, the gain check rejects it
    — no per-round masking pass is needed.
    """
    lo, hi, den_l, den_r = cfg.bounds_for(n)
    if hi <= lo:
        return (None, None)
    u = untie[:, lo:hi]
    return (np.where(u, np.inf, den_l), np.where(u, np.inf, den_r))


def _find_best_split_exact(
    X: np.ndarray,
    grad: np.ndarray,
    hess: np.ndarray,
    idx: np.ndarray | None,
    gsum: float,
    hsum: float,
    cfg: _SplitSearchConfig,
    presort: PresortCache | None,
):
    """Exact greedy split search, vectorized over features and thresholds.

    Works in transposed ``(n_features, n_candidates)`` layout so the final
    feature-major argmax scans contiguous memory.  Ties resolve to the
    lowest (feature, position) pair, matching the historical scalar scan
    order.
    """
    n = X.shape[0] if idx is None else idx.size
    if n < 2:
        return None
    lam = cfg.reg_lambda
    untie = None
    if presort is not None and idx is None:
        # sorted_rows carries *original* row indices per feature, so one
        # gather sorts the gradients and partition slices are free views.
        sorted_rows, sv, untie = presort.order, presort.sv, presort.untie
        dens = cfg.root_dens if cfg.sort_cache is not None else None
    else:
        cache = cfg.sort_cache if idx is not None else None
        key = idx.tobytes() if cache is not None else None
        entry = cache.get(key) if cache is not None else None
        if entry is None:
            if presort is not None and idx is not None:
                XnT = presort.xt[:, idx]  # contiguous (f, n) gather
            else:
                XnT = (X if idx is None else X[idx]).T
            # No stability needed: equal values never straddle a threshold.
            order = XnT.argsort(axis=1)
            sv = XnT[_row_index(XnT.shape[0]), order]
            untie = sv[:, 1:] == sv[:, :-1]
            sorted_rows = order if idx is None else idx[order]
            dens = None
            if cache is not None:
                dens = _masked_dens(cfg, n, untie)
                cache[key] = (sorted_rows, sv, dens)
        else:
            sorted_rows, sv, dens = entry

    if cfg.unit_hess:
        # Hessian == sample count: min_child_weight is a candidate slice
        # and the denominators depend on the node size alone (cached).
        lo, hi, den_l, den_r = cfg.bounds_for(n)
        if hi <= lo:
            return None
        if dens is not None:
            # Tie candidates carry +inf denominators, so they score 0 and
            # are rejected by the gain check — no separate masking pass.
            den_l, den_r = dens
            untie = None
        elif presort is not None and idx is None and cfg.sort_cache is not None:
            dens = cfg.root_dens = _masked_dens(cfg, n, untie)
            den_l, den_r = dens
            untie = None
        if den_l is None:
            return None
        # Scratch buffers per node size: the score pipeline allocates
        # nothing, which matters when thousands of tiny nodes stream by.
        f = sorted_rows.shape[0]
        bufs = cfg.buffers.get(n)
        if bufs is None or bufs[0].shape[0] != f:
            bufs = (
                np.empty((f, n)),
                np.empty((f, n)),
                np.empty((f, hi - lo)),
                np.empty((f, hi - lo)),
            )
            cfg.buffers[n] = bufs
        g_buf, cs_buf, gr_buf, sq_buf = bufs
        np.take(grad, sorted_rows, out=g_buf)
        np.cumsum(g_buf, axis=1, out=cs_buf)
        gl = cs_buf[:, lo:hi]
        np.subtract(gsum, gl, out=gr_buf)
        np.multiply(gr_buf, gr_buf, out=gr_buf)
        np.divide(gr_buf, den_r, out=gr_buf)
        np.multiply(gl, gl, out=sq_buf)
        np.divide(sq_buf, den_l, out=sq_buf)
        score = np.add(sq_buf, gr_buf, out=sq_buf)
        if untie is not None:
            np.copyto(score, -np.inf, where=untie[:, lo:hi])
    else:
        lo = 0
        hi = n - 1
        gl = grad[sorted_rows].cumsum(axis=1)[:, :-1]
        hl = hess[sorted_rows].cumsum(axis=1)[:, :-1]
        gr = gsum - gl
        hr = hsum - hl
        with np.errstate(divide="ignore", invalid="ignore"):
            score = gl * gl / (hl + lam) + gr * gr / (hr + lam)
        score[
            untie
            | (hl < cfg.min_child_weight)
            | (hr < cfg.min_child_weight)
            | np.isnan(score)
        ] = -np.inf

    best = int(score.argmax())
    feature, pos_rel = divmod(best, hi - lo)
    best_score = score[feature, pos_rel]
    if best_score == -np.inf:
        return None
    parent_score = gsum * gsum / (hsum + lam)
    gain = 0.5 * (float(best_score) - parent_score) - cfg.gamma
    if not gain > _GAIN_EPS:
        return None
    pos = lo + pos_rel
    threshold = 0.5 * (sv[feature, pos] + sv[feature, pos + 1])
    rows_f = sorted_rows[feature]
    left_idx = rows_f[: pos + 1]
    right_idx = rows_f[pos + 1 :]
    left_gsum = float(gl[feature, pos_rel])
    left_hsum = float(pos + 1) if cfg.unit_hess else float(hl[feature, pos_rel])
    return (
        int(feature),
        float(threshold),
        gain,
        left_idx,
        right_idx,
        left_gsum,
        left_hsum,
    )


def _find_best_split_hist(
    binner: HistogramBinner,
    grad: np.ndarray,
    hess: np.ndarray,
    idx: np.ndarray | None,
    gsum: float,
    hsum: float,
    cfg: _SplitSearchConfig,
):
    """Histogram split search over precomputed quantile bins.

    Gradient/hessian/count histograms for every feature come from one
    flattened ``bincount`` triple; candidate boundaries are bin upper
    edges.
    """
    b = binner.binned if idx is None else binner.binned[idx]  # (n, f)
    n = b.shape[0]
    f = b.shape[1]
    width = binner.edges.shape[1] + 1  # bins per feature, padded
    flat_bins = (b + np.arange(f, dtype=np.int32) * width).ravel()
    g_node = grad if idx is None else grad[idx]
    gw = np.repeat(g_node, f)
    ghist = np.bincount(flat_bins, weights=gw, minlength=f * width).reshape(f, width)
    chist = np.bincount(flat_bins, minlength=f * width).reshape(f, width)
    nl = chist.cumsum(axis=1)[:, :-1]
    gl = ghist.cumsum(axis=1)[:, :-1]
    if cfg.unit_hess:
        hl = nl.astype(float)
    else:
        h_node = hess if idx is None else hess[idx]
        hw = np.repeat(h_node, f)
        hhist = np.bincount(flat_bins, weights=hw, minlength=f * width).reshape(
            f, width
        )
        hl = hhist.cumsum(axis=1)[:, :-1]
    gr = gsum - gl
    hr = hsum - hl
    lam = cfg.reg_lambda
    cand = np.arange(width - 1)[None, :] < binner.n_edges[:, None]
    valid = (
        cand
        & (nl >= 1)  # a node may occupy few bins: never produce empty children
        & (nl <= n - 1)
        & (hl >= cfg.min_child_weight)
        & (hr >= cfg.min_child_weight)
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        score = gl * gl / (hl + lam) + gr * gr / (hr + lam)
    masked = np.where(valid & ~np.isnan(score), score, -np.inf)
    best = int(np.argmax(masked))  # (f, width-1) C-order is feature-major
    feature, k = divmod(best, width - 1)
    best_score = masked[feature, k]
    if best_score == -np.inf:
        return None
    parent_score = gsum * gsum / (hsum + lam)
    gain = 0.5 * (float(best_score) - parent_score) - cfg.gamma
    if not gain > _GAIN_EPS:
        return None
    threshold = float(binner.edges[feature, k])
    left_mask = b[:, feature] <= k
    if idx is None:
        left_idx = np.nonzero(left_mask)[0]
        right_idx = np.nonzero(~left_mask)[0]
    else:
        left_idx = idx[left_mask]
        right_idx = idx[~left_mask]
    left_gsum = float(gl[feature, k])
    left_hsum = float(hl[feature, k])
    return (
        int(feature),
        threshold,
        gain,
        left_idx,
        right_idx,
        left_gsum,
        left_hsum,
    )
