"""Accuracy metrics used throughout the paper's evaluation.

The paper reports MAPE (mean absolute percentage error), the coefficient of
determination R², and the Pearson correlation coefficient R.  All metrics
accept array-likes and validate shapes; they are deliberately strict about
degenerate inputs so that experiment code fails loudly instead of reporting
meaningless accuracy.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mape",
    "max_error",
    "mean_absolute_error",
    "pearson_r",
    "r2_score",
    "rmse",
]


def _as_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    """Coerce both inputs to float arrays and check they line up."""
    t = np.asarray(y_true, dtype=float).ravel()
    p = np.asarray(y_pred, dtype=float).ravel()
    if t.shape != p.shape:
        raise ValueError(f"shape mismatch: y_true {t.shape} vs y_pred {p.shape}")
    if t.size == 0:
        raise ValueError("metrics require at least one sample")
    if not (np.isfinite(t).all() and np.isfinite(p).all()):
        raise ValueError("metrics require finite inputs")
    return t, p


def mape(y_true, y_pred) -> float:
    """Mean absolute percentage error, in percent (paper's headline metric).

    ``mape([100], [104.36]) == 4.36``.  Zero entries in ``y_true`` are
    rejected because the percentage error is undefined there.
    """
    t, p = _as_pair(y_true, y_pred)
    if np.any(t == 0.0):
        raise ValueError("MAPE is undefined for zero ground-truth values")
    return float(np.mean(np.abs((p - t) / t)) * 100.0)


def mean_absolute_error(y_true, y_pred) -> float:
    """Plain mean absolute error in the units of the inputs."""
    t, p = _as_pair(y_true, y_pred)
    return float(np.mean(np.abs(p - t)))


def rmse(y_true, y_pred) -> float:
    """Root-mean-square error in the units of the inputs."""
    t, p = _as_pair(y_true, y_pred)
    return float(np.sqrt(np.mean((p - t) ** 2)))


def max_error(y_true, y_pred) -> float:
    """Largest absolute error — used for power-trace peak analysis."""
    t, p = _as_pair(y_true, y_pred)
    return float(np.max(np.abs(p - t)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination R² (1 is perfect, can be negative).

    Matches the scikit-learn definition: ``1 - SS_res / SS_tot``.
    """
    t, p = _as_pair(y_true, y_pred)
    ss_tot = float(np.sum((t - t.mean()) ** 2))
    ss_res = float(np.sum((t - p) ** 2))
    if ss_tot == 0.0:
        # Constant ground truth: perfect iff predictions are also exact.
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def pearson_r(y_true, y_pred) -> float:
    """Pearson correlation coefficient R (paper's per-group metric)."""
    t, p = _as_pair(y_true, y_pred)
    if t.size < 2:
        raise ValueError("pearson_r requires at least two samples")
    st = float(np.std(t))
    sp = float(np.std(p))
    if st == 0.0 or sp == 0.0:
        return 0.0
    return float(np.mean((t - t.mean()) * (p - p.mean())) / (st * sp))
