"""Simulation substrate: performance events and golden activity.

Three layers:

* :mod:`repro.sim.uarch` — the *true* microarchitectural execution model:
  deterministic physics of a workload on a configuration (miss rates,
  misprediction rates, a bottleneck CPI model, true event counts).
* :mod:`repro.sim.perf` — the gem5-like performance simulator.  It reports
  the true events distorted by systematic per-event bias and small noise,
  reproducing the paper's observation that performance-simulator
  inaccuracy is a root cause of ML power-model error.
* :mod:`repro.sim.activity` — the VCS-like activity extraction: golden
  per-component register activity and SRAM read/write frequencies derived
  from the true execution (what the paper extracts from RTL simulation).

:mod:`repro.sim.trace` adds the 50-cycle windowed view of the two large
workloads used for time-based power-trace prediction.
"""

from repro.sim.activity import (
    ActivitySimulator,
    ComponentActivity,
    DesignActivity,
    PositionActivity,
)
from repro.sim.perf import PerfSimulator
from repro.sim.trace import WindowTrace, WindowTraceGenerator
from repro.sim.uarch import TrueExecution, execute

__all__ = [
    "ActivitySimulator",
    "ComponentActivity",
    "DesignActivity",
    "PerfSimulator",
    "PositionActivity",
    "TrueExecution",
    "WindowTrace",
    "WindowTraceGenerator",
    "execute",
]
