"""Windowed execution traces for time-based power prediction (Table IV).

The two large workloads (GEMM, SPMM) run for millions of cycles; the paper
predicts the power trace at a 50-cycle step.  The trace generator turns a
workload's phase structure into a per-window *activity scale* sequence:
window ``i``'s true event rates are the workload's average rates times
``scale[i]``.  Scales are normalized to mean 1 so the trace is consistent
with the average-power view the models were trained on.

Everything is seeded and deterministic per (config, workload).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.arch.config import BoomConfig
from repro.arch.workloads import Workload
from repro.sim.perf import stable_seed
from repro.sim.uarch import TrueExecution, execute

__all__ = ["WindowTrace", "WindowTraceGenerator"]

_SCALE_MIN = 0.35
_SCALE_MAX = 1.80


@dataclass(frozen=True)
class WindowTrace:
    """Per-window activity scales of one large-workload run."""

    config_name: str
    workload_name: str
    window_cycles: int
    scales: np.ndarray
    total_cycles: float

    @property
    def n_windows(self) -> int:
        return int(self.scales.shape[0])

    def __post_init__(self) -> None:
        if self.window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        if self.scales.ndim != 1 or self.scales.size == 0:
            raise ValueError("scales must be a non-empty 1-D array")


class WindowTraceGenerator:
    """Generate the 50-cycle activity-scale trace of a large workload."""

    def __init__(self, window_cycles: int = 50) -> None:
        if window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        self.window_cycles = window_cycles

    def generate(
        self,
        config: BoomConfig,
        workload: Workload,
        true: TrueExecution | None = None,
        max_windows: int | None = None,
    ) -> WindowTrace:
        """Build the trace; ``max_windows`` subsamples for fast tests."""
        if not workload.is_large:
            raise ValueError(
                f"workload {workload.name!r} has no phase structure; "
                "traces are defined for large workloads only"
            )
        if true is None:
            true = execute(config, workload)
        n_windows = max(int(math.ceil(true.cycles / self.window_cycles)), 1)
        if max_windows is not None and n_windows > max_windows:
            n_windows = max_windows

        scales = np.empty(n_windows, dtype=float)
        rng = np.random.default_rng(
            stable_seed("trace", config.name, workload.name)
        )
        start = 0
        for phase in workload.phases:
            count = int(round(phase.weight * n_windows))
            end = min(start + count, n_windows)
            if phase is workload.phases[-1]:
                end = n_windows
            idx = np.arange(start, end)
            if idx.size:
                ripple = phase.ripple_amplitude * np.sin(
                    2.0 * np.pi * (idx - start) / phase.ripple_period
                )
                noise = rng.normal(0.0, phase.noise, size=idx.size)
                scales[idx] = phase.activity_scale * (1.0 + ripple + noise)
            start = end
        scales = np.clip(scales, _SCALE_MIN, _SCALE_MAX)
        scales /= scales.mean()
        return WindowTrace(
            config_name=config.name,
            workload_name=workload.name,
            window_cycles=self.window_cycles,
            scales=scales,
            total_cycles=true.cycles,
        )
