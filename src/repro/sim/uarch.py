"""True microarchitectural execution model.

This is the substrate's ground truth for *behaviour*: given a configuration
and a workload profile it deterministically computes miss rates, branch
misprediction rates, a bottleneck CPI and the true event counts.  Both the
gem5-like performance simulator (which distorts these events) and the
golden activity simulator (which consumes them exactly) sit on top of it —
mirroring how, in reality, gem5 approximates and RTL simulation defines the
same underlying execution.

The model is interval-analysis style: a peak IPC from the narrowest
pipeline bound, plus stall CPI adders for mispredictions, cache misses and
TLB walks.  It is intentionally simple but *responds to every Table II
parameter* so that configuration changes propagate into events, activity
and finally power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import BoomConfig
from repro.arch.events import EVENT_NAMES
from repro.arch.workloads import Workload

__all__ = ["TrueExecution", "execute"]

_EPS = 1e-9

# Bytes of cache capacity per way (4 KiB ways, BOOM-like).
_BYTES_PER_WAY = 4096
_PAGE_BYTES = 4096


@dataclass(frozen=True)
class TrueExecution:
    """Ground-truth execution of one workload on one configuration."""

    config_name: str
    workload_name: str
    cycles: float
    events: dict[str, float]
    mispredict_rate: float
    icache_miss_rate: float
    dcache_miss_rate: float
    itlb_miss_rate: float
    dtlb_miss_rate: float

    @property
    def ipc(self) -> float:
        return self.events["instructions"] / self.cycles

    def rate(self, name: str) -> float:
        """True events per cycle."""
        return self.events[name] / self.cycles

    def scaled_rates(self, scale: float) -> dict[str, float]:
        """Per-cycle rates with overall activity scaled (trace windows)."""
        return {name: self.rate(name) * scale for name in self.events}


def _clip(value: float, lo: float, hi: float) -> float:
    return min(max(value, lo), hi)


def mispredict_probability(config: BoomConfig, workload: Workload) -> float:
    """Per-branch misprediction probability.

    Grows with branch entropy, shrinks as the predictor budget
    (``BranchCount`` scales the TAGE/BTB tables) grows.
    """
    budget = config["BranchCount"]
    raw = 0.012 + 0.16 * workload.branch_entropy ** 1.5 * 14.0 / (budget + 8.0)
    return _clip(raw, 0.002, 0.30)


def icache_miss_ratio(config: BoomConfig, workload: Workload) -> float:
    """I-cache misses per access."""
    capacity = config["ICacheWay"] * _BYTES_PER_WAY
    pressure = max(0.0, 1.0 - capacity / workload.icache_footprint)
    hostility = 0.3 + 0.7 * (1.0 - workload.locality)
    return _clip(0.0015 + 0.10 * hostility * pressure, 0.0005, 0.25)


def dcache_miss_ratio(config: BoomConfig, workload: Workload) -> float:
    """D-cache misses per access."""
    capacity = config["DCacheWay"] * _BYTES_PER_WAY
    pressure = max(0.0, 1.0 - capacity / workload.dcache_footprint)
    hostility = 1.0 - workload.locality
    raw = 0.004 + 0.28 * hostility * pressure ** 0.8 + 0.012 * pressure
    return _clip(raw, 0.001, 0.45)


def itlb_miss_ratio(config: BoomConfig, workload: Workload) -> float:
    pages = max(workload.icache_footprint / _PAGE_BYTES, 1.0)
    return _clip(0.0005 + 0.05 * max(0.0, 1.0 - config["ITLBEntry"] / pages), 0.0002, 0.08)


def dtlb_miss_ratio(config: BoomConfig, workload: Workload) -> float:
    pages = max(workload.dcache_footprint / _PAGE_BYTES, 1.0)
    hostility = 1.0 - 0.5 * workload.locality
    raw = 0.001 + 0.06 * hostility * max(0.0, 1.0 - config["DTLBEntry"] / pages)
    return _clip(raw, 0.0003, 0.12)


def _cpi(config: BoomConfig, workload: Workload, rates: dict[str, float]) -> float:
    """Bottleneck CPI: 1 / peak-IPC plus stall adders."""
    dw = config["DecodeWidth"]
    fw = config["FetchWidth"]
    frac_mem = workload.frac_load + workload.frac_store
    frac_int = workload.frac_int_alu + workload.frac_int_mul + workload.frac_branch

    bounds = [
        float(dw),
        workload.ilp,
        0.9 * fw,
        config["IntIssueWidth"] / max(frac_int, _EPS),
        config["MemIssueWidth"] / max(frac_mem, _EPS),
    ]
    if workload.frac_fp > 0.0:
        bounds.append(config["FpIssueWidth"] / max(workload.frac_fp, _EPS))
    rob_per_lane = config["RobEntry"] / max(dw, 1)
    peak_ipc = min(bounds)

    cpi = 1.0 / max(peak_ipc, 0.1)
    # A small ROB adds dispatch stalls (mild, additive — narrow machines
    # with small ROBs are still well utilized per lane).
    cpi += 2.0 / config["RobEntry"]
    # Branch redirect penalty grows slightly with machine width (deeper
    # frontends take longer to refill).
    cpi += workload.frac_branch * rates["p_mp"] * (8.0 + 2.0 * math.log2(dw + 1))
    fetch_per_inst = 1.0 / (fw * 0.75)
    cpi += fetch_per_inst * rates["m_ic"] * 14.0
    # L2-class miss penalty; MSHRs and a big ROB overlap miss latency.
    mshr = config["MSHREntry"]
    miss_penalty = 16.0 / (1.0 + 0.35 * (mshr - 1)) / (1.0 + 0.2 * rob_per_lane / 24.0)
    cpi += frac_mem * rates["m_dc"] * max(miss_penalty, 4.0)
    cpi += frac_mem * rates["m_dtlb"] * 18.0
    cpi += fetch_per_inst * rates["m_itlb"] * 16.0
    return cpi


def execute(config: BoomConfig, workload: Workload) -> TrueExecution:
    """Run the true execution model for one (config, workload) pair."""
    n = float(workload.instructions)
    fw = config["FetchWidth"]
    dw = config["DecodeWidth"]

    p_mp = mispredict_probability(config, workload)
    m_ic = icache_miss_ratio(config, workload)
    m_dc = dcache_miss_ratio(config, workload)
    m_itlb = itlb_miss_ratio(config, workload)
    m_dtlb = dtlb_miss_ratio(config, workload)
    rates = {"p_mp": p_mp, "m_ic": m_ic, "m_dc": m_dc, "m_itlb": m_itlb, "m_dtlb": m_dtlb}

    cpi = _cpi(config, workload, rates)
    cycles = n * cpi

    # Wrong-path (speculative) inflation: wider machines waste more work
    # per misprediction.
    spec = 1.0 + 1.8 * p_mp * workload.frac_branch * (1.0 + 0.12 * dw) * 10.0
    spec_mem = 1.0 + 0.8 * p_mp * workload.frac_branch * 10.0

    uop_expansion = 1.12
    fetch_packets = min(
        n / (fw * 0.72) * (1.0 + 1.3 * p_mp * workload.frac_branch * fw),
        0.98 * cycles,
    )
    # Physical capacity clamps: no unit can exceed its per-cycle bandwidth.
    decode_uops = min(n * uop_expansion * spec, 0.98 * dw * cycles)
    dcache_accesses = min(
        n * (workload.frac_load + workload.frac_store) * spec_mem,
        0.96 * config["MemIssueWidth"] * cycles,
    )
    dcache_misses = dcache_accesses * m_dc
    icache_accesses = fetch_packets
    icache_misses = icache_accesses * m_ic
    branch_lookups = fetch_packets
    branch_mispredicts = n * workload.frac_branch * p_mp
    int_issues = min(
        n
        * (workload.frac_int_alu + workload.frac_int_mul + workload.frac_branch)
        * spec,
        0.98 * config["IntIssueWidth"] * cycles,
    )
    fp_issues = min(
        n * workload.frac_fp * (1.0 + 0.3 * (spec - 1.0)),
        0.98 * config["FpIssueWidth"] * cycles,
    )
    mem_issues = min(dcache_accesses * 1.06, 0.98 * config["MemIssueWidth"] * cycles)
    ldq_allocations = n * workload.frac_load * spec_mem
    stq_allocations = n * workload.frac_store * (1.0 + 0.4 * (spec_mem - 1.0))
    store_share = workload.frac_store / max(workload.frac_load + workload.frac_store, _EPS)

    events: dict[str, float] = {
        "cycles": cycles,
        "instructions": n,
        "fetch_packets": fetch_packets,
        "fetch_bubbles": max(cycles - fetch_packets, 0.0),
        "decode_uops": decode_uops,
        "rename_uops": decode_uops,
        "branch_lookups": branch_lookups,
        "branch_mispredicts": branch_mispredicts,
        "btb_hits": branch_lookups * _clip(0.95 - 0.35 * workload.branch_entropy, 0.3, 0.98),
        "icache_accesses": icache_accesses,
        "icache_misses": icache_misses,
        "dcache_accesses": dcache_accesses,
        "dcache_misses": dcache_misses,
        "dcache_writebacks": dcache_misses * (0.25 + 0.5 * store_share),
        "mshr_allocations": dcache_misses * 0.95,
        "itlb_accesses": icache_accesses,
        "itlb_misses": icache_accesses * m_itlb,
        "dtlb_accesses": dcache_accesses,
        "dtlb_misses": dcache_accesses * m_dtlb,
        "rob_allocations": decode_uops,
        "rob_commits": n * uop_expansion,
        "rob_flushes": branch_mispredicts * 1.05 + n * 1e-4,
        "int_issues": int_issues,
        "fp_issues": fp_issues,
        "mem_issues": mem_issues,
        "regfile_int_reads": int_issues * 1.7 + mem_issues * 1.0,
        "regfile_int_writes": int_issues * 0.85 + ldq_allocations * 0.7,
        "regfile_fp_reads": fp_issues * 1.9,
        "regfile_fp_writes": fp_issues * 0.95 + ldq_allocations * 0.3,
        "ldq_allocations": ldq_allocations,
        "stq_allocations": stq_allocations,
        "fu_int_ops": max(int_issues - n * workload.frac_int_mul * spec, 0.0),
        "fu_mul_ops": n * workload.frac_int_mul * spec,
        "fu_fp_ops": fp_issues,
        "fu_mem_ops": mem_issues,
    }
    missing = set(EVENT_NAMES) - set(events)
    if missing:
        raise AssertionError(f"true execution missing events: {sorted(missing)}")

    return TrueExecution(
        config_name=config.name,
        workload_name=workload.name,
        cycles=cycles,
        events=events,
        mispredict_rate=p_mp,
        icache_miss_rate=m_ic,
        dcache_miss_rate=m_dc,
        itlb_miss_rate=m_itlb,
        dtlb_miss_rate=m_dtlb,
    )
