"""gem5-like performance simulator: true events + systematic error.

The paper observes that "the inaccurate performance simulator is one of
the root causes of the low accuracy of the ML-based power model" and adds
microarchitecture-independent program features to compensate.  Our perf
simulator therefore does *not* report the true execution: every event is
distorted by

* a per-(workload, event) systematic bias — gem5 consistently over- or
  under-counts certain statistics on certain programs,
* a width-dependent bias on pipeline events — abstract CPU models drift
  more on wider out-of-order machines,
* small reproducible noise.

All distortions are seeded from stable string hashes, so a given
(config, workload) pair always yields the same event report.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.arch.config import BoomConfig
from repro.arch.events import EVENT_NAMES, EventParams
from repro.arch.workloads import Workload
from repro.sim.uarch import TrueExecution, execute

__all__ = ["PerfSimulator", "stable_seed"]

# Events tied to out-of-order pipeline behaviour, which abstract simulators
# mis-model more as the machine gets wider.
_PIPELINE_EVENTS = frozenset(
    {
        "decode_uops",
        "rename_uops",
        "rob_allocations",
        "rob_flushes",
        "int_issues",
        "fp_issues",
        "mem_issues",
        "fetch_bubbles",
        "regfile_int_reads",
        "regfile_int_writes",
        "regfile_fp_reads",
        "regfile_fp_writes",
    }
)


def stable_seed(*parts: str) -> int:
    """Deterministic 32-bit seed from string parts (process-independent)."""
    return zlib.crc32("|".join(parts).encode())


class PerfSimulator:
    """Architecture-level performance simulator (the paper's gem5 stage).

    Parameters
    ----------
    bias_magnitude:
        Half-width of the uniform systematic per-(workload, event) bias.
        The default of 7 % matches the well-documented gem5-vs-RTL drift
        on BOOM-class cores.
    noise_magnitude:
        Standard deviation of the reproducible per-sample noise.
    width_drift:
        Extra relative bias on pipeline events per unit of DecodeWidth
        beyond 3.
    """

    def __init__(
        self,
        bias_magnitude: float = 0.07,
        noise_magnitude: float = 0.015,
        width_drift: float = 0.012,
    ) -> None:
        if bias_magnitude < 0 or noise_magnitude < 0 or width_drift < 0:
            raise ValueError("error magnitudes must be non-negative")
        self.bias_magnitude = bias_magnitude
        self.noise_magnitude = noise_magnitude
        self.width_drift = width_drift

    # ------------------------------------------------------------------
    def run(self, config: BoomConfig, workload: Workload) -> EventParams:
        """Simulate one workload and report (distorted) event parameters."""
        true = execute(config, workload)
        return self.distort(true, config)

    def distort(self, true: TrueExecution, config: BoomConfig) -> EventParams:
        """Apply the simulator's systematic error to a true execution."""
        counts: dict[str, float] = {}
        dw = config["DecodeWidth"]
        for name in EVENT_NAMES:
            value = true.events[name]
            bias_rng = np.random.default_rng(
                stable_seed("gem5-bias", true.workload_name, name)
            )
            bias = bias_rng.uniform(-self.bias_magnitude, self.bias_magnitude)
            if name in _PIPELINE_EVENTS:
                drift_rng = np.random.default_rng(
                    stable_seed("gem5-drift", true.workload_name, name)
                )
                direction = 1.0 if drift_rng.random() < 0.5 else -1.0
                bias += direction * self.width_drift * max(dw - 3, 0)
            noise_rng = np.random.default_rng(
                stable_seed("gem5-noise", true.config_name, true.workload_name, name)
            )
            noise = noise_rng.normal(0.0, self.noise_magnitude)
            counts[name] = max(value * (1.0 + bias + noise), 0.0)
        # Cycles must stay positive; re-clamp to at least 1.
        counts["cycles"] = max(counts["cycles"], 1.0)
        return EventParams(counts)
