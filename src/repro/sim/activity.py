"""Golden activity extraction (the paper's RTL-simulation stage).

From the true execution, derive per component:

* the average active rate of gated registers (the true ``alpha``),
* the register data-toggle rate (logic-group register power),
* the combinational switching rate,
* per SRAM position: block-level read/write frequencies, with writes
  weighted by write-mask validity — the paper's "one write = a write with
  all masks valid" convention.

A small seeded per-(config, workload, component) idiosyncrasy keeps the
labels from being an exact closed-form function of the event rates —
real RTL activity always has program-specific structure that
architecture-level features cannot fully explain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import BoomConfig
from repro.arch.workloads import Workload
from repro.rtl.design import RtlDesign
from repro.sim.perf import stable_seed
from repro.sim.uarch import TrueExecution, execute

__all__ = [
    "ActivitySimulator",
    "ComponentActivity",
    "DesignActivity",
    "PositionActivity",
]


def _clip(value: float, lo: float, hi: float) -> float:
    return min(max(value, lo), hi)


@dataclass(frozen=True)
class PositionActivity:
    """Block-level activity of one SRAM position.

    ``read_per_block_cycle`` / ``write_per_block_cycle`` are the average
    per-block access frequencies (accesses per cycle); the write frequency
    is already mask-weighted.  ``mask_valid_fraction`` is kept for
    diagnostics (fraction of mask sectors valid on an average write).
    """

    name: str
    read_per_block_cycle: float
    write_per_block_cycle: float
    mask_valid_fraction: float

    def __post_init__(self) -> None:
        if self.read_per_block_cycle < 0 or self.write_per_block_cycle < 0:
            raise ValueError(f"{self.name}: negative SRAM access frequency")
        if not 0.0 <= self.mask_valid_fraction <= 1.0:
            raise ValueError(f"{self.name}: mask_valid_fraction outside [0, 1]")


@dataclass(frozen=True)
class ComponentActivity:
    """Golden activity of one component."""

    name: str
    gated_active_rate: float
    data_toggle_rate: float
    comb_switch_rate: float
    positions: dict[str, PositionActivity] = field(hash=False)

    def __post_init__(self) -> None:
        for attr in ("gated_active_rate", "data_toggle_rate", "comb_switch_rate"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {attr}={value} outside [0, 1]")


@dataclass(frozen=True)
class DesignActivity:
    """Golden activity for a whole design under one workload."""

    config_name: str
    workload_name: str
    scale: float
    components: dict[str, ComponentActivity] = field(hash=False)

    def component(self, name: str) -> ComponentActivity:
        try:
            return self.components[name]
        except KeyError:
            raise KeyError(f"no activity for component {name!r}") from None


class ActivitySimulator:
    """Golden activity extraction from the true execution model.

    Parameters
    ----------
    idiosyncrasy:
        Relative magnitude of the seeded per-(config, workload, component)
        activity quirk.  Zero disables it (useful in unit tests).
    """

    def __init__(self, idiosyncrasy: float = 0.02) -> None:
        if idiosyncrasy < 0:
            raise ValueError("idiosyncrasy must be non-negative")
        self.idiosyncrasy = idiosyncrasy

    # ------------------------------------------------------------------
    def simulate(
        self,
        design: RtlDesign,
        config: BoomConfig,
        workload: Workload,
        true: TrueExecution | None = None,
        scale: float = 1.0,
    ) -> DesignActivity:
        """Extract golden activity (optionally activity-scaled for windows)."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        if true is None:
            true = execute(config, workload)
        components: dict[str, ComponentActivity] = {}
        for comp in design.components:
            util = _clip(_utilization(comp.name, true, config) * scale, 0.0, 1.0)
            quirk = self._quirk(config.name, workload.name, comp.name)
            # Gated banks re-enable for speculation, replays and control
            # even when not doing useful work: a substantial base activity
            # plus a utilization-driven part.
            alpha = _clip((0.18 + 0.62 * util) * quirk, 0.02, 0.98)
            toggle = _clip(alpha * (0.16 + 0.10 * (1.0 - workload.locality)), 0.0, 1.0)
            switch = _clip((0.09 + 0.27 * util) * quirk, 0.01, 1.0)
            positions = {
                pos.name: self._position_activity(
                    pos.name, pos.block.count, pos.block.mask_sectors,
                    true, config, workload, scale,
                )
                for pos in comp.sram_positions
            }
            components[comp.name] = ComponentActivity(
                name=comp.name,
                gated_active_rate=alpha,
                data_toggle_rate=toggle,
                comb_switch_rate=switch,
                positions=positions,
            )
        return DesignActivity(
            config_name=config.name,
            workload_name=workload.name,
            scale=scale,
            components=components,
        )

    # ------------------------------------------------------------------
    def _quirk(self, config_name: str, workload_name: str, component: str) -> float:
        if self.idiosyncrasy == 0.0:
            return 1.0
        rng = np.random.default_rng(
            stable_seed("rtl-activity", config_name, workload_name, component)
        )
        return float(1.0 + rng.normal(0.0, self.idiosyncrasy))

    def _position_activity(
        self,
        position: str,
        block_count: int,
        mask_sectors: int,
        true: TrueExecution,
        config: BoomConfig,
        workload: Workload,
        scale: float,
    ) -> PositionActivity:
        reads, writes, mask_fraction = _position_rates(position, true, config, workload)
        quirk = self._quirk(true.config_name, true.workload_name, f"pos:{position}")
        per_block_reads = _clip(reads / block_count * scale * quirk, 0.0, 1.0)
        # Mask weighting: a write with only k of m sectors valid counts as
        # k/m writes (paper Sec. II-B).  mask_sectors == 1 means full writes.
        effective_mask = mask_fraction if mask_sectors > 1 else 1.0
        per_block_writes = _clip(
            writes / block_count * effective_mask * scale * quirk, 0.0, 1.0
        )
        return PositionActivity(
            name=position,
            read_per_block_cycle=per_block_reads,
            write_per_block_cycle=per_block_writes,
            mask_valid_fraction=effective_mask,
        )


# ---------------------------------------------------------------------------
# Component utilization: how busy each component is per cycle, in [0, ~1].
# ---------------------------------------------------------------------------
def _utilization(name: str, true: TrueExecution, config: BoomConfig) -> float:
    cycles = true.cycles
    dw = config["DecodeWidth"]
    ev = true.events
    if name in ("BPTAGE", "BPBTB", "BPOthers"):
        return ev["branch_lookups"] / cycles
    if name in ("ICacheTagArray", "ICacheDataArray", "ICacheOthers"):
        return ev["icache_accesses"] / cycles
    if name == "IFU":
        return ev["fetch_packets"] / cycles
    if name in ("RNU", "ROB"):
        return ev["decode_uops"] / (cycles * dw)
    if name == "Regfile":
        reads = ev["regfile_int_reads"] + ev["regfile_fp_reads"]
        writes = ev["regfile_int_writes"] + ev["regfile_fp_writes"]
        return (reads + writes) / (cycles * 4.0 * dw)
    if name == "FP-ISU":
        return ev["fp_issues"] / (cycles * config["FpIssueWidth"])
    if name == "Int-ISU":
        return ev["int_issues"] / (cycles * config["IntIssueWidth"])
    if name == "Mem-ISU":
        return ev["mem_issues"] / (cycles * config["MemIssueWidth"])
    if name == "I-TLB":
        return ev["itlb_accesses"] / cycles
    if name == "D-TLB":
        return ev["dtlb_accesses"] / cycles
    if name == "FU Pool":
        ops = ev["fu_int_ops"] + ev["fu_mul_ops"] + ev["fu_fp_ops"] + ev["fu_mem_ops"]
        width = config["IntIssueWidth"] + config["FpIssueWidth"] + config["MemIssueWidth"]
        return ops / (cycles * width)
    if name == "Other Logic":
        return ev["instructions"] / (cycles * dw)
    if name == "DCacheMSHR":
        return min(ev["mshr_allocations"] * 8.0 / cycles, 1.0)
    if name in ("LSU", "DCacheTagArray", "DCacheDataArray", "DCacheOthers"):
        return ev["dcache_accesses"] / (cycles * config["MemIssueWidth"])
    raise KeyError(f"no utilization model for component {name!r}")


# ---------------------------------------------------------------------------
# SRAM position access rates (position-level, per cycle) and write-mask
# validity fractions.  Returns (reads, writes, mask_valid_fraction).
# ---------------------------------------------------------------------------
def _position_rates(
    position: str, true: TrueExecution, config: BoomConfig, workload: Workload
) -> tuple[float, float, float]:
    c = true.cycles
    ev = true.events
    dw = config["DecodeWidth"]
    if position == "tage_table":
        return ev["branch_lookups"] / c, ev["instructions"] * workload.frac_branch / c, 1.0
    if position == "btb":
        return ev["branch_lookups"] / c, ev["branch_mispredicts"] * 1.2 / c, 1.0
    if position == "icache_tags":
        return ev["icache_accesses"] / c, ev["icache_misses"] / c, 1.0
    if position == "icache_data":
        # Way-predicted banks: mostly one bank per access plus re-probes.
        reads = ev["icache_accesses"] * 1.25 / c
        return reads, ev["icache_misses"] / c, 1.0
    if position == "rob_payload":
        return ev["rob_commits"] / (c * dw), ev["rob_allocations"] / (c * dw), 1.0
    if position == "dcache_tags":
        return ev["dcache_accesses"] / c, ev["dcache_misses"] / c, 1.0
    if position == "dcache_data":
        loads = ev["dcache_accesses"] - ev["stq_allocations"]
        reads = max(loads, 0.0) * 1.15 / c + ev["dcache_writebacks"] / c
        writes = (ev["stq_allocations"] + ev["dcache_misses"]) / c
        # Streaming stores write whole words; scattered stores hit few
        # byte lanes.
        mask = _clip(0.35 + 0.60 * workload.locality, 0.0, 1.0)
        return reads, writes, mask
    if position == "itlb_entries":
        return ev["itlb_accesses"] / c, ev["itlb_misses"] / c, 1.0
    if position == "dtlb_entries":
        return ev["dtlb_accesses"] / c, ev["dtlb_misses"] / c, 1.0
    if position == "ldq":
        return ev["ldq_allocations"] * 1.4 / c, ev["ldq_allocations"] / c, 1.0
    if position == "stq":
        mask = _clip(0.45 + 0.50 * workload.locality, 0.0, 1.0)
        return ev["stq_allocations"] * 1.7 / c, ev["stq_allocations"] / c, mask
    if position == "meta":
        mask = _clip(0.55 + 0.35 * workload.locality, 0.0, 1.0)
        return ev["fetch_packets"] * 0.95 / c, ev["fetch_packets"] * 0.85 / c, mask
    if position == "ghist":
        return ev["fetch_packets"] * 0.9 / c, ev["branch_lookups"] * 0.8 / c, 1.0
    if position == "fb_data":
        return ev["decode_uops"] / (c * dw), ev["fetch_packets"] * 0.95 / c, 1.0
    raise KeyError(f"no activity model for SRAM position {position!r}")
