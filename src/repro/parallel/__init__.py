"""Deterministic parallel execution for fits, flows and sweeps."""

from repro.parallel.executor import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    cpu_count,
    get_default_jobs,
    get_executor,
    parse_jobs_spec,
    resolve_jobs,
    set_default_jobs,
)

__all__ = [
    "BACKENDS",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "cpu_count",
    "get_default_jobs",
    "get_executor",
    "parse_jobs_spec",
    "resolve_jobs",
    "set_default_jobs",
]
