"""Pluggable execution backends for the embarrassingly parallel fan-outs.

AutoPower's training decomposes into ~90 independent sub-model fits (three
power groups x ~30 components/positions), and label generation decomposes
into independent (configuration, workload) flow runs.  This module gives
those fan-outs a single, deterministic execution surface:

* :class:`SerialExecutor` — plain in-process loop (the reference),
* :class:`ThreadExecutor` — a thread pool; useful when tasks release the
  GIL (large numpy kernels) or to exercise the parallel paths cheaply,
* :class:`ProcessExecutor` — a process pool for true multi-core fitting;
  requires picklable task functions and results and transparently falls
  back to the serial loop when they are not.

Determinism contract: ``Executor.map`` submits tasks in iteration order
and returns results in that same order, and every task payload carries its
own seeds (``random_state`` fields), so the fitted state is numerically
identical regardless of backend or worker count.

Worker-count resolution (first match wins):

1. an explicit ``n_jobs`` argument,
2. the session default installed by ``python -m repro --jobs N``
   (:func:`set_default_jobs`),
3. the ``REPRO_JOBS`` environment variable — either a worker count
   (``REPRO_JOBS=4``) or a ``backend:count`` spec (``REPRO_JOBS=thread:4``),
4. serial (one worker).

``n_jobs <= 0`` means "all cores".  The ``auto`` backend picks a process
pool when more than one worker is requested and the machine actually has
more than one core; on a single-core machine it falls back to serial
(the pools would only add overhead).  Explicitly requested ``thread`` /
``process`` backends are honoured even on one core, which is what the
backend-equivalence tests rely on.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.env import get_str

__all__ = [
    "BACKENDS",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "cpu_count",
    "get_default_jobs",
    "get_executor",
    "parse_jobs_spec",
    "resolve_jobs",
    "set_default_jobs",
]

BACKENDS = ("auto", "serial", "thread", "process")

ENV_JOBS = "REPRO_JOBS"

# Session-wide default installed by the CLI's --jobs flag; None = unset.
_default_jobs: int | None = None


def cpu_count() -> int:
    """Usable core count (always >= 1)."""
    return os.cpu_count() or 1


def set_default_jobs(n_jobs: int | None) -> None:
    """Install (or clear, with ``None``) the session-wide worker default."""
    global _default_jobs
    _default_jobs = None if n_jobs is None else int(n_jobs)


def get_default_jobs() -> int | None:
    """The session-wide worker default, or ``None`` when unset."""
    return _default_jobs


def parse_jobs_spec(spec: str) -> tuple[int, str | None]:
    """Parse a ``REPRO_JOBS`` value into ``(n_jobs, backend_or_None)``.

    Accepts a bare count (``"4"``), a bare backend (``"serial"``), or a
    ``backend:count`` pair (``"thread:4"``).
    """
    text = spec.strip().lower()
    backend: str | None = None
    if ":" in text:
        backend, _, text = text.partition(":")
        backend = backend.strip()
        text = text.strip()
    elif text in BACKENDS:
        backend, text = text, ""
    if backend is not None and backend not in BACKENDS:
        raise ValueError(
            f"unknown executor backend {backend!r} in {ENV_JOBS}={spec!r}; "
            f"expected one of {BACKENDS}"
        )
    if not text:
        n_jobs = 1 if backend in (None, "serial") else 0
    else:
        try:
            n_jobs = int(text)
        except ValueError:
            raise ValueError(
                f"invalid worker count {text!r} in {ENV_JOBS}={spec!r}"
            ) from None
    return n_jobs, backend


def resolve_jobs(n_jobs: int | None = None) -> tuple[int, str | None]:
    """Resolve the effective worker count and optional backend hint.

    Count precedence: explicit argument > session default (CLI
    ``--jobs``) > ``REPRO_JOBS`` > serial.  Non-positive counts mean
    "all cores".  A backend named in ``REPRO_JOBS`` (``thread:4``) is
    returned as the hint even when the *count* comes from a higher-
    precedence source, so the env var keeps forcing the backend unless a
    caller passes one explicitly.
    """
    env_backend: str | None = None
    env_jobs: int | None = None
    spec = get_str(ENV_JOBS)
    if spec:
        env_jobs, env_backend = parse_jobs_spec(spec)
    if n_jobs is None:
        if _default_jobs is not None:
            n_jobs = _default_jobs
        elif env_jobs is not None:
            n_jobs = env_jobs
        else:
            n_jobs = 1
    n_jobs = int(n_jobs)
    if n_jobs <= 0:
        n_jobs = cpu_count()
    return n_jobs, env_backend


class Executor:
    """Ordered task execution over ``n_jobs`` workers.

    ``map`` consumes the iterable eagerly, submits tasks in order and
    returns their results in submission order — the contract every caller
    relies on for backend-independent determinism.

    Pooled backends keep their worker pool alive *across* ``map``
    calls, so chunked fan-outs (``VlsiFlow.run_many`` batches, the DSE
    job loop) pay the pool spin-up once, not per chunk.  The pool's
    lifetime is tied to the executor: ``close()`` (or use as a context
    manager) releases it deterministically, and dropping the last
    reference releases it via ``__del__``.
    """

    backend = "serial"

    def __init__(self, n_jobs: int = 1) -> None:
        self.n_jobs = max(int(n_jobs), 1)
        #: Human-readable reason when a parallel backend degraded to the
        #: serial loop (unpicklable tasks, broken pool); ``None`` otherwise.
        self.fallback_reason: str | None = None

    @property
    def is_serial(self) -> bool:
        return self.backend == "serial"

    def map(self, fn, iterable) -> list:
        raise NotImplementedError

    def close(self) -> None:
        """Release the worker pool (no-op for the serial backend)."""

    def __enter__(self) -> Executor:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n_jobs={self.n_jobs})"


class SerialExecutor(Executor):
    """The reference backend: a plain in-process loop."""

    backend = "serial"

    def __init__(self, n_jobs: int = 1) -> None:
        super().__init__(1)

    def map(self, fn, iterable) -> list:
        return [fn(item) for item in iterable]


class _PooledExecutor(Executor):
    """Shared pool lifecycle for the thread and process backends."""

    _pool_factory = ThreadPoolExecutor

    def __init__(self, n_jobs: int = 1) -> None:
        super().__init__(n_jobs)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._pool_factory(max_workers=self.n_jobs)
        return self._pool

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _discard_pool(self) -> None:
        """Drop a (possibly broken) pool without waiting on it."""
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False)
            except Exception:  # pragma: no cover - interpreter teardown
                pass

    def __del__(self) -> None:  # pragma: no cover - gc timing
        self._discard_pool()


class ThreadExecutor(_PooledExecutor):
    """Thread-pool backend (shared memory, no pickling requirements)."""

    backend = "thread"
    _pool_factory = ThreadPoolExecutor

    def map(self, fn, iterable) -> list:
        items = list(iterable)
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))


class ProcessExecutor(_PooledExecutor):
    """Process-pool backend for true multi-core execution.

    Task functions, payloads and results must be picklable; when the
    function or payloads are not, the whole map degrades to the serial
    loop (recorded in :attr:`Executor.fallback_reason`) instead of
    raising, so callers never have to special-case exotic tasks.
    """

    backend = "process"
    _pool_factory = ProcessPoolExecutor

    def map(self, fn, iterable) -> list:
        items = list(iterable)
        if len(items) <= 1:
            return [fn(item) for item in items]
        # Cheap probe — the function and one representative payload — so
        # the common unpicklable cases (lambdas, closures) degrade before
        # a pool is forked, without serializing every payload twice.
        try:
            pickle.dumps(fn)
            pickle.dumps(items[0])
        except Exception as exc:
            self.fallback_reason = f"tasks not picklable ({exc!r}); ran serially"
            return [fn(item) for item in items]
        # Tasks are pure functions of their payloads, so rerunning the
        # whole map serially after a mid-pool failure is safe — a genuine
        # task error reproduces identically on the serial rerun.  CPython
        # raises TypeError/AttributeError (not just PicklingError) for
        # most unpicklable payloads and results.  Either way the pool is
        # discarded: a fresh one is forked on the next map.
        try:
            return list(self._ensure_pool().map(fn, items))
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            self._discard_pool()
            self.fallback_reason = f"tasks not picklable ({exc!r}); ran serially"
            return [fn(item) for item in items]
        except BrokenProcessPool as exc:
            self._discard_pool()
            self.fallback_reason = f"process pool broke ({exc!r}); ran serially"
            return [fn(item) for item in items]


def get_executor(
    n_jobs: int | None = None, backend: str | None = None
) -> Executor:
    """Build the executor for a worker request.

    ``backend=None``/``"auto"`` resolves to serial for one worker or on a
    single-core machine, and to a process pool otherwise.  An explicit
    ``"thread"``/``"process"`` backend is honoured whenever more than one
    worker is requested, even on one core.
    """
    jobs, hint = resolve_jobs(n_jobs)
    if backend is None:
        backend = hint or "auto"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown executor backend {backend!r}; expected one of {BACKENDS}"
        )
    if jobs <= 1 or backend == "serial":
        return SerialExecutor()
    if backend == "auto":
        if cpu_count() <= 1:
            return SerialExecutor()
        return ProcessExecutor(jobs)
    if backend == "thread":
        return ThreadExecutor(jobs)
    return ProcessExecutor(jobs)
