"""SRAM block -> SRAM macro mapping rule (the BOOM VLSI flow script).

The paper treats this rule as a fixed, deterministic part of the VLSI flow
"available and unchanged for all processors implemented with the same
flow": given an SRAM block shape, it decides which legal macro to use and
how many rows (width direction) and columns (depth direction) of that
macro build the block.  Both the golden power analyzer *and* AutoPower's
SRAM model call this same rule — exactly as in the paper, where the rule
is shared between label generation and prediction.

Mapping policy:

* depth: the shallowest legal macro depth that covers the block depth
  (one column); if the block is deeper than any legal macro, stack
  ``ceil(depth / max_depth)`` columns of the deepest macro,
* width: the narrowest legal macro width that covers the block width
  (one row); if wider than any legal macro, tile ``ceil(width /
  max_width)`` rows of the widest macro.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.library.sram_compiler import MacroSpec, SramCompiler

__all__ = ["MacroMapper", "MacroMapping"]


@dataclass(frozen=True)
class MacroMapping:
    """How one SRAM block is built from macros.

    ``n_row`` macros side by side cover the width; ``n_col`` macro groups
    stacked cover the depth.  A block access activates one row of macros
    (``n_row`` of them); each macro therefore sees ``1 / n_col`` of the
    block's access frequency (paper Eq. 9).
    """

    macro: MacroSpec
    n_row: int
    n_col: int

    def __post_init__(self) -> None:
        if self.n_row < 1 or self.n_col < 1:
            raise ValueError("macro grid dimensions must be >= 1")

    @property
    def n_macros(self) -> int:
        return self.n_row * self.n_col

    @property
    def bits(self) -> int:
        """Total macro bits (>= block bits because of shape rounding)."""
        return self.n_macros * self.macro.bits


class MacroMapper:
    """The flow's deterministic block-to-macro mapping rule."""

    def __init__(self, compiler: SramCompiler) -> None:
        self.compiler = compiler

    def map(self, width: int, depth: int) -> MacroMapping:
        """Map one SRAM block shape onto a legal macro grid."""
        if width < 1 or depth < 1:
            raise ValueError(f"invalid block shape {width}x{depth}")
        macro_depth = self.compiler.smallest_depth_at_least(depth)
        if macro_depth is None:
            macro_depth = self.compiler.max_depth
        n_col = math.ceil(depth / macro_depth)

        macro_width = self.compiler.smallest_width_at_least(width)
        if macro_width is None:
            macro_width = self.compiler.max_width
        n_row = math.ceil(width / macro_width)

        return MacroMapping(
            macro=self.compiler.macro(macro_width, macro_depth),
            n_row=n_row,
            n_col=n_col,
        )
