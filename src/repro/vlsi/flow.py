"""End-to-end VLSI flow orchestration with caching.

One call runs the full label-generation pipeline for a (configuration,
workload) pair:

    RTL generation -> synthesis -> true execution -> perf simulation
    (gem5-like events) -> activity extraction (golden) -> power analysis

Designs and netlists are per-configuration and cached; runs are cached per
(configuration, workload).  Everything downstream (dataset building, the
experiment harness, benchmarks) goes through this class, the way the
paper's scripts go through their EDA flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.arch.config import BoomConfig
from repro.arch.events import EventParams
from repro.arch.workloads import Workload
from repro.library.stdcell import TechLibrary, default_library
from repro.parallel import Executor, get_executor
from repro.power.analysis import PowerAnalyzer
from repro.power.report import PowerReport
from repro.rtl.design import RtlDesign
from repro.rtl.generator import RtlGenerator
from repro.sim.activity import ActivitySimulator, DesignActivity
from repro.sim.perf import PerfSimulator
from repro.sim.uarch import TrueExecution, execute
from repro.synthesis.netlist import Netlist
from repro.synthesis.synthesizer import Synthesizer
from repro.vlsi.macro_mapping import MacroMapper

__all__ = ["FlowResult", "VlsiFlow"]


@dataclass(frozen=True)
class FlowResult:
    """Everything the flow produces for one (config, workload) pair."""

    config: BoomConfig
    workload: Workload
    design: RtlDesign
    netlist: Netlist
    true: TrueExecution
    events: EventParams
    activity: DesignActivity
    power: PowerReport


def _run_config_task(
    flow: "VlsiFlow", task: tuple[BoomConfig, tuple[Workload, ...]]
) -> list["FlowResult"]:
    """One configuration's flow runs over its missing workloads.

    The parallel unit of :meth:`VlsiFlow.run_many`: per-config grouping
    means each worker elaborates and synthesizes the design exactly once,
    and every stage is a deterministic function of its inputs, so the
    results are identical to the serial path.
    """
    config, workloads = task
    return [flow.run(config, workload) for workload in workloads]


class VlsiFlow:
    """The full synthetic EDA flow, with per-stage caching.

    Parameters
    ----------
    library:
        Technology library; defaults to the repository-wide synthetic
        40 nm-class library.
    perf:
        Performance simulator; replaceable to study simulator-error
        sensitivity (e.g. a zero-error simulator for ablations).
    activity:
        Golden activity simulator.
    """

    def __init__(
        self,
        library: TechLibrary | None = None,
        perf: PerfSimulator | None = None,
        activity: ActivitySimulator | None = None,
    ) -> None:
        self.library = library if library is not None else default_library()
        self.mapper = MacroMapper(self.library.sram)
        self.generator = RtlGenerator()
        self.synthesizer = Synthesizer(self.library)
        self.perf = perf if perf is not None else PerfSimulator()
        self.activity_sim = activity if activity is not None else ActivitySimulator()
        self.analyzer = PowerAnalyzer(self.library, self.mapper)
        self._designs: dict[str, RtlDesign] = {}
        self._netlists: dict[str, Netlist] = {}
        self._runs: dict[tuple[str, str], FlowResult] = {}
        self._executions: dict[tuple[str, str], TrueExecution] = {}

    # ------------------------------------------------------------------
    def design(self, config: BoomConfig) -> RtlDesign:
        """Elaborated RTL for a configuration (cached)."""
        if config.name not in self._designs:
            self._designs[config.name] = self.generator.generate(config)
        return self._designs[config.name]

    def netlist(self, config: BoomConfig) -> Netlist:
        """Synthesized netlist for a configuration (cached)."""
        if config.name not in self._netlists:
            self._netlists[config.name] = self.synthesizer.synthesize(
                self.design(config)
            )
        return self._netlists[config.name]

    def true_execution(self, config: BoomConfig, workload: Workload) -> TrueExecution:
        """True execution for a (config, workload) pair (cached).

        ``execute`` is deterministic in its inputs, so one run serves both
        the full flow and every scale point of a windowed-trace sweep.
        """
        key = (config.name, workload.name)
        if key not in self._executions:
            self._executions[key] = execute(config, workload)
        return self._executions[key]

    def run(self, config: BoomConfig, workload: Workload) -> FlowResult:
        """Full flow for one (config, workload) pair (cached)."""
        key = (config.name, workload.name)
        if key not in self._runs:
            design = self.design(config)
            netlist = self.netlist(config)
            true = self.true_execution(config, workload)
            events = self.perf.distort(true, config)
            activity = self.activity_sim.simulate(design, config, workload, true=true)
            power = self.analyzer.analyze(netlist, activity)
            self._runs[key] = FlowResult(
                config=config,
                workload=workload,
                design=design,
                netlist=netlist,
                true=true,
                events=events,
                activity=activity,
                power=power,
            )
        return self._runs[key]

    def run_many(
        self,
        configs: list[BoomConfig],
        workloads: list[Workload],
        n_jobs: int | None = None,
        backend: str | None = None,
        executor: Executor | None = None,
    ) -> list[FlowResult]:
        """Cross product of configurations and workloads.

        With more than one worker, ground-truth generation fans out one
        task per *configuration* (each runs all workloads, so designs and
        netlists are elaborated once per worker) and the results are
        merged back into this flow's caches in deterministic (config,
        workload) order — byte-for-byte what the serial loop produces.
        Configurations whose runs are already fully cached never leave
        this process.
        """
        if executor is None:
            executor = get_executor(n_jobs, backend)
        workloads = list(workloads)
        if not executor.is_serial:
            # Ship only the (config, workload) pairs missing from the
            # cache, still grouped per config so each worker elaborates
            # and synthesizes a design at most once.
            pending: list[tuple[BoomConfig, tuple[Workload, ...]]] = []
            seen: set[str] = set()
            for c in configs:
                if c.name in seen:
                    continue
                seen.add(c.name)
                missing = tuple(
                    w for w in workloads if (c.name, w.name) not in self._runs
                )
                if missing:
                    pending.append((c, missing))
            if len(pending) > 1:
                worker = self.worker_copy()
                per_config = executor.map(
                    partial(_run_config_task, worker), pending
                )
                for (config, missing), results in zip(pending, per_config):
                    for workload, res in zip(missing, results):
                        self._merge_result(config, workload, res)
        return [self.run(c, w) for c in configs for w in workloads]

    def worker_copy(self) -> "VlsiFlow":
        """A fresh flow sharing this one's simulators but not its caches.

        What ``run_many`` ships to worker processes: pickling the caches
        would ship every previously computed run along with each task.
        """
        return VlsiFlow(
            library=self.library, perf=self.perf, activity=self.activity_sim
        )

    def _merge_result(
        self, config: BoomConfig, workload: Workload, res: FlowResult
    ) -> None:
        """Adopt a worker-produced run into this flow's caches."""
        key = (config.name, workload.name)
        self._designs.setdefault(config.name, res.design)
        self._netlists.setdefault(config.name, res.netlist)
        self._executions.setdefault(key, res.true)
        self._runs.setdefault(key, res)

    # ------------------------------------------------------------------
    def power_at_scale(
        self, config: BoomConfig, workload: Workload, scale: float
    ) -> PowerReport:
        """Golden power with all activity scaled (windowed-trace support)."""
        design = self.design(config)
        netlist = self.netlist(config)
        true = self.true_execution(config, workload)
        activity = self.activity_sim.simulate(
            design, config, workload, true=true, scale=scale
        )
        return self.analyzer.analyze(netlist, activity)
