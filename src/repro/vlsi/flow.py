"""End-to-end VLSI flow orchestration with caching.

One call runs the full label-generation pipeline for a (configuration,
workload) pair:

    RTL generation -> synthesis -> true execution -> perf simulation
    (gem5-like events) -> activity extraction (golden) -> power analysis

Designs and netlists are per-configuration and cached; runs are cached per
(configuration, workload).  Everything downstream (dataset building, the
experiment harness, benchmarks) goes through this class, the way the
paper's scripts go through their EDA flow.

Completed runs additionally persist in a content-addressed disk cache
shared across processes and runs (:mod:`repro.dse.cache`), keyed by the
flow version, the library and simulator state, and the (config,
workload) content — so a repeated sweep is a pure cache hit returning
in milliseconds, byte-identical to the cold run.  ``REPRO_NO_FLOW_CACHE=1``
disables it; :attr:`VlsiFlow.executions` counts the real pipeline
computations a flow performed (cache hits of either kind don't count).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from functools import partial

from repro.arch.config import BoomConfig
from repro.arch.events import EventParams
from repro.arch.workloads import Workload
from repro.dse.cache import FLOW_CACHE_VERSION, FlowDiskCache, content_key, default_flow_cache
from repro.library.stdcell import TechLibrary, default_library
from repro.parallel import Executor, get_executor
from repro.power.analysis import PowerAnalyzer
from repro.power.report import PowerReport
from repro.rtl.design import RtlDesign
from repro.rtl.generator import RtlGenerator
from repro.rtl.sram_plan import SRAM_POSITION_PLANS
from repro.sim.activity import ActivitySimulator, DesignActivity
from repro.sim.perf import PerfSimulator
from repro.sim.uarch import TrueExecution, execute
from repro.synthesis.netlist import Netlist
from repro.synthesis.synthesizer import Synthesizer
from repro.vlsi.macro_mapping import MacroMapper

__all__ = ["FlowResult", "VlsiFlow"]


@dataclass(frozen=True)
class FlowResult:
    """Everything the flow produces for one (config, workload) pair."""

    config: BoomConfig
    workload: Workload
    design: RtlDesign
    netlist: Netlist
    true: TrueExecution
    events: EventParams
    activity: DesignActivity
    power: PowerReport


def _run_config_task(
    flow: VlsiFlow, task: tuple[BoomConfig, tuple[Workload, ...]]
) -> list["FlowResult"]:
    """One configuration's flow runs over its missing workloads.

    The parallel unit of :meth:`VlsiFlow.run_many`: per-config grouping
    means each worker elaborates and synthesizes the design exactly once,
    and every stage is a deterministic function of its inputs, so the
    results are identical to the serial path.
    """
    config, workloads = task
    return [flow.run(config, workload) for workload in workloads]


class VlsiFlow:
    """The full synthetic EDA flow, with per-stage caching.

    Parameters
    ----------
    library:
        Technology library; defaults to the repository-wide synthetic
        40 nm-class library.
    perf:
        Performance simulator; replaceable to study simulator-error
        sensitivity (e.g. a zero-error simulator for ablations).
    activity:
        Golden activity simulator.
    disk_cache:
        The persistent cross-process result store.  The default
        (``"auto"``) resolves through
        :func:`repro.dse.cache.default_flow_cache` — a shared on-disk
        cache unless ``REPRO_NO_FLOW_CACHE=1``.  Pass ``None`` to force
        a purely in-process flow, or a :class:`FlowDiskCache` to use a
        specific store.
    """

    def __init__(
        self,
        library: TechLibrary | None = None,
        perf: PerfSimulator | None = None,
        activity: ActivitySimulator | None = None,
        disk_cache: FlowDiskCache | None | str = "auto",
    ) -> None:
        self.library = library if library is not None else default_library()
        self.mapper = MacroMapper(self.library.sram)
        self.generator = RtlGenerator()
        self.synthesizer = Synthesizer(self.library)
        self.perf = perf if perf is not None else PerfSimulator()
        self.activity_sim = activity if activity is not None else ActivitySimulator()
        self.analyzer = PowerAnalyzer(self.library, self.mapper)
        self.disk_cache = (
            default_flow_cache() if disk_cache == "auto" else disk_cache
        )
        # Real pipeline computations this flow performed; neither the
        # in-process caches nor disk hits increment it.
        self.executions = 0
        self._fingerprint: str | None = None
        self._designs: dict[str, RtlDesign] = {}
        self._netlists: dict[str, Netlist] = {}
        self._runs: dict[tuple[str, str], FlowResult] = {}
        self._executions: dict[tuple[str, str], TrueExecution] = {}

    # ------------------------------------------------------------------
    def design(self, config: BoomConfig) -> RtlDesign:
        """Elaborated RTL for a configuration (cached)."""
        if config.name not in self._designs:
            self._designs[config.name] = self.generator.generate(config)
        return self._designs[config.name]

    def netlist(self, config: BoomConfig) -> Netlist:
        """Synthesized netlist for a configuration (cached)."""
        if config.name not in self._netlists:
            self._netlists[config.name] = self.synthesizer.synthesize(
                self.design(config)
            )
        return self._netlists[config.name]

    def true_execution(self, config: BoomConfig, workload: Workload) -> TrueExecution:
        """True execution for a (config, workload) pair (cached).

        ``execute`` is deterministic in its inputs, so one run serves both
        the full flow and every scale point of a windowed-trace sweep.
        """
        key = (config.name, workload.name)
        if key not in self._executions:
            self._executions[key] = execute(config, workload)
        return self._executions[key]

    # -- the persistent result store ------------------------------------
    def fingerprint(self) -> str:
        """Content hash of everything that determines a flow result
        besides the (config, workload) pair: the flow version, the
        technology library (including its SRAM compiler) and both
        simulators.  Two flows with the same fingerprint produce
        byte-identical results, so they may share disk-cache entries;
        a custom simulator (e.g. a zero-error ablation stand-in) gets
        its own key space automatically.
        """
        if self._fingerprint is None:
            self._fingerprint = content_key(
                "vlsi-flow", FLOW_CACHE_VERSION, SRAM_POSITION_PLANS,
                self.library, self.perf, self.activity_sim,
            )
        return self._fingerprint

    def _disk_key(self, config: BoomConfig, workload: Workload) -> str:
        return content_key(self.fingerprint(), config, workload)

    def _disk_get(
        self, config: BoomConfig, workload: Workload
    ) -> FlowResult | None:
        if self.disk_cache is None:
            return None
        cached = self.disk_cache.get(self._disk_key(config, workload))
        return cached if isinstance(cached, FlowResult) else None

    def _disk_put(
        self, config: BoomConfig, workload: Workload, result: FlowResult
    ) -> None:
        if self.disk_cache is not None:
            self.disk_cache.put(self._disk_key(config, workload), result)

    def run(self, config: BoomConfig, workload: Workload) -> FlowResult:
        """Full flow for one (config, workload) pair (cached)."""
        key = (config.name, workload.name)
        if key not in self._runs:
            cached = self._disk_get(config, workload)
            if cached is not None:
                self._merge_result(config, workload, cached)
                return self._runs[key]
            design = self.design(config)
            netlist = self.netlist(config)
            true = self.true_execution(config, workload)
            events = self.perf.distort(true, config)
            activity = self.activity_sim.simulate(design, config, workload, true=true)
            power = self.analyzer.analyze(netlist, activity)
            self.executions += 1
            result = FlowResult(
                config=config,
                workload=workload,
                design=design,
                netlist=netlist,
                true=true,
                events=events,
                activity=activity,
                power=power,
            )
            # One pickle round-trip canonicalizes the object graph.
            # Freshly built results are not a pickle fixed point: the
            # unpickler interns instance-__dict__ keys, so string-identity
            # sharing between attribute names and data-dict keys differs
            # between a fresh graph and a round-tripped one, and their
            # pickles differ by a few memo references.  After one
            # round-trip the bytes are stable, which is what makes warm
            # (disk / worker-merged) results byte-identical to cold ones.
            result = pickle.loads(pickle.dumps(result))
            self._runs[key] = result
            self._disk_put(config, workload, result)
        return self._runs[key]

    def run_many(
        self,
        configs: list[BoomConfig],
        workloads: list[Workload],
        n_jobs: int | None = None,
        backend: str | None = None,
        executor: Executor | None = None,
    ) -> list[FlowResult]:
        """Cross product of configurations and workloads.

        With more than one worker, ground-truth generation fans out one
        task per *configuration* (each runs all workloads, so designs and
        netlists are elaborated once per worker) and the results are
        merged back into this flow's caches in deterministic (config,
        workload) order — byte-for-byte what the serial loop produces.
        Configurations whose runs are already fully cached never leave
        this process.
        """
        if executor is None:
            executor = get_executor(n_jobs, backend)
        workloads = list(workloads)
        if not executor.is_serial:
            # Ship only the (config, workload) pairs missing from both
            # the in-process and the disk cache — disk hits resolve
            # inline here instead of round-tripping through a worker —
            # still grouped per config so each worker elaborates and
            # synthesizes a design at most once.
            pending: list[tuple[BoomConfig, tuple[Workload, ...]]] = []
            seen: set[str] = set()
            for c in configs:
                if c.name in seen:
                    continue
                seen.add(c.name)
                missing = []
                for w in workloads:
                    if (c.name, w.name) in self._runs:
                        continue
                    cached = self._disk_get(c, w)
                    if cached is not None:
                        self._merge_result(c, w, cached)
                    else:
                        missing.append(w)
                if missing:
                    pending.append((c, tuple(missing)))
            if len(pending) > 1:
                worker = self.worker_copy()
                per_config = executor.map(
                    partial(_run_config_task, worker), pending
                )
                for (config, missing), results in zip(pending, per_config):
                    for workload, res in zip(missing, results):
                        self._merge_result(config, workload, res)
        return [self.run(c, w) for c in configs for w in workloads]

    def worker_copy(self) -> VlsiFlow:
        """A fresh flow sharing this one's simulators but not its caches.

        What ``run_many`` ships to worker processes: pickling the
        in-process caches would ship every previously computed run along
        with each task.  The disk cache handle *does* travel (it pickles
        to a directory reference), so worker-computed results persist
        for every later run on the machine.
        """
        return VlsiFlow(
            library=self.library,
            perf=self.perf,
            activity=self.activity_sim,
            disk_cache=self.disk_cache,
        )

    def _merge_result(
        self, config: BoomConfig, workload: Workload, res: FlowResult
    ) -> None:
        """Adopt a worker-produced run into this flow's caches."""
        key = (config.name, workload.name)
        self._designs.setdefault(config.name, res.design)
        self._netlists.setdefault(config.name, res.netlist)
        self._executions.setdefault(key, res.true)
        self._runs.setdefault(key, res)

    # ------------------------------------------------------------------
    def power_at_scale(
        self, config: BoomConfig, workload: Workload, scale: float
    ) -> PowerReport:
        """Golden power with all activity scaled (windowed-trace support)."""
        design = self.design(config)
        netlist = self.netlist(config)
        true = self.true_execution(config, workload)
        activity = self.activity_sim.simulate(
            design, config, workload, true=true, scale=scale
        )
        return self.analyzer.analyze(netlist, activity)
