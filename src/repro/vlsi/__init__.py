"""VLSI flow: SRAM macro mapping rule and end-to-end flow orchestration."""

from repro.vlsi.flow import FlowResult, VlsiFlow
from repro.vlsi.macro_mapping import MacroMapper, MacroMapping

__all__ = ["FlowResult", "MacroMapper", "MacroMapping", "VlsiFlow"]
