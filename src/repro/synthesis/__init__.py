"""Logic-synthesis substrate (stands in for Synopsys Design Compiler).

Maps an :class:`~repro.rtl.design.RtlDesign` to a gate-level
:class:`~repro.synthesis.netlist.Netlist`: combinational units become
library cell counts, and clock gating is inserted according to
domain-dependent policies.  The netlist is where AutoPower's training
labels for register count ``R`` and gating rate ``g`` come from — exactly
the paper's label-collection procedure ("collect the number of registers
and the number of gated registers from the netlists of known
configurations").
"""

from repro.synthesis.clock_gating import GatingPolicy, policy_for
from repro.synthesis.netlist import ComponentNetlist, Netlist
from repro.synthesis.synthesizer import Synthesizer

__all__ = [
    "ComponentNetlist",
    "GatingPolicy",
    "Netlist",
    "Synthesizer",
    "policy_for",
]
