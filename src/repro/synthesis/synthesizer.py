"""The synthesizer: RtlDesign -> Netlist.

Deterministic, library-aware mapping:

* register banks pass through as flip-flops, then the component's gating
  policy decides how many sit behind ICG cells,
* abstract combinational units map onto library cell classes with a
  domain-dependent mixture and a mild size-dependent optimization factor
  (synthesis shares logic more effectively in larger cones).
"""

from __future__ import annotations

import math

from repro.arch.components import component_by_name
from repro.library.stdcell import TechLibrary
from repro.rtl.design import RtlDesign
from repro.synthesis.clock_gating import policy_for
from repro.synthesis.netlist import ComponentNetlist, Netlist

__all__ = ["Synthesizer"]

# Fraction of a component's combinational units mapped to each cell class.
_DOMAIN_CELL_MIX: dict[str, dict[str, float]] = {
    "frontend": {"nand2": 0.35, "aoi22": 0.20, "xor2": 0.10, "mux2": 0.20, "buf4": 0.15},
    "backend": {"nand2": 0.30, "aoi22": 0.25, "xor2": 0.15, "mux2": 0.15, "buf4": 0.15},
    "memory": {"nand2": 0.32, "aoi22": 0.22, "xor2": 0.08, "mux2": 0.22, "buf4": 0.16},
}


class Synthesizer:
    """Logic synthesis with clock-gating insertion.

    Parameters
    ----------
    library:
        Technology library the netlist is mapped onto.  The cell classes
        referenced by the domain mixes must exist in the library.
    """

    def __init__(self, library: TechLibrary) -> None:
        self.library = library
        for mix in _DOMAIN_CELL_MIX.values():
            for cell_name in mix:
                library.comb_cell(cell_name)  # raises KeyError if absent
            total = sum(mix.values())
            if abs(total - 1.0) > 1e-9:
                raise AssertionError(f"cell mix sums to {total}, not 1.0")

    def synthesize(self, design: RtlDesign) -> Netlist:
        """Map a design to a gate-level netlist with clock gating."""
        components = []
        for comp_rtl in design.components:
            component = component_by_name(comp_rtl.name)
            policy = policy_for(component.name, component.domain)
            gated = policy.gated_registers(comp_rtl.registers)
            cells = policy.gating_cells(gated)
            comb = self._map_comb(comp_rtl.comb_units, component.domain)
            components.append(
                ComponentNetlist(
                    name=comp_rtl.name,
                    registers=comp_rtl.registers,
                    gated_registers=gated,
                    gating_cells=cells,
                    comb_cells=comb,
                    sram_positions=comp_rtl.sram_positions,
                )
            )
        return Netlist(config_name=design.config_name, components=tuple(components))

    # ------------------------------------------------------------------
    def _map_comb(self, comb_units: float, domain: str) -> dict[str, int]:
        """Map abstract comb units onto library cell instance counts."""
        if comb_units <= 0:
            return {name: 0 for name in _DOMAIN_CELL_MIX[domain]}
        # Larger cones synthesize slightly denser (logic sharing): up to
        # ~6% fewer cells per 10x of size.
        efficiency = 1.0 - 0.026 * math.log10(max(comb_units / 1000.0, 1.0))
        total_cells = comb_units * efficiency
        mix = _DOMAIN_CELL_MIX[domain]
        return {name: int(round(total_cells * frac)) for name, frac in mix.items()}
