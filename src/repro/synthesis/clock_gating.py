"""Clock-gating insertion policies.

Real synthesis tools decide per register bank whether gating pays off;
the outcome depends on the functional domain (datapath registers gate
well, control/miscellaneous logic gates poorly) and on structure size
(larger banks amortize the ICG cell better).  The paper highlights that
this makes the gating rate ``g`` a *netlist-level* quantity that must be
learned rather than read off the architecture — these policies are what
make that true in our substrate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["GatingPolicy", "policy_for"]


@dataclass(frozen=True)
class GatingPolicy:
    """Gating behaviour of one component under synthesis.

    ``base_rate`` is the gating rate of a 1k-register instance of the
    component; ``size_slope`` adds per doubling of register count
    (synthesis finds more gating opportunities in bigger banks);
    ``fanout`` is the average number of gated registers driven by one ICG
    cell (sets the paper's ``r = 1 / fanout``).
    """

    base_rate: float
    size_slope: float
    fanout: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_rate <= 1.0:
            raise ValueError("base_rate must be in [0, 1]")
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")

    def gating_rate(self, registers: int) -> float:
        """Fraction of registers gated for an instance of this size."""
        if registers <= 0:
            return 0.0
        rate = self.base_rate + self.size_slope * math.log2(registers / 1000.0)
        return min(max(rate, 0.30), 0.96)

    def gated_registers(self, registers: int) -> int:
        return int(round(self.gating_rate(registers) * registers))

    def gating_cells(self, gated_registers: int) -> int:
        if gated_registers == 0:
            return 0
        return max(1, math.ceil(gated_registers / self.fanout))


# Domain defaults, refined by per-component overrides below.
_DOMAIN_POLICIES: dict[str, GatingPolicy] = {
    "frontend": GatingPolicy(base_rate=0.76, size_slope=0.022, fanout=12),
    "backend": GatingPolicy(base_rate=0.84, size_slope=0.020, fanout=16),
    "memory": GatingPolicy(base_rate=0.80, size_slope=0.021, fanout=14),
}

# Components whose gating behaviour deviates from their domain default:
# register files and FU pipelines gate almost fully; "others"/glue logic
# is control-dominated and gates poorly.
_COMPONENT_OVERRIDES: dict[str, GatingPolicy] = {
    "Regfile": GatingPolicy(base_rate=0.92, size_slope=0.008, fanout=22),
    "FU Pool": GatingPolicy(base_rate=0.89, size_slope=0.010, fanout=18),
    "Other Logic": GatingPolicy(base_rate=0.60, size_slope=0.015, fanout=10),
    "BPOthers": GatingPolicy(base_rate=0.66, size_slope=0.018, fanout=10),
    "ICacheOthers": GatingPolicy(base_rate=0.68, size_slope=0.018, fanout=11),
    "DCacheOthers": GatingPolicy(base_rate=0.70, size_slope=0.018, fanout=11),
    "DCacheMSHR": GatingPolicy(base_rate=0.82, size_slope=0.016, fanout=13),
    "I-TLB": GatingPolicy(base_rate=0.74, size_slope=0.015, fanout=12),
    "D-TLB": GatingPolicy(base_rate=0.74, size_slope=0.015, fanout=12),
}


def policy_for(component_name: str, domain: str) -> GatingPolicy:
    """The gating policy synthesis applies to one component."""
    if component_name in _COMPONENT_OVERRIDES:
        return _COMPONENT_OVERRIDES[component_name]
    try:
        return _DOMAIN_POLICIES[domain]
    except KeyError:
        raise ValueError(f"unknown domain {domain!r}") from None
