"""Gate-level netlist IR produced by the synthesizer."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtl.design import SramPositionRtl

__all__ = ["ComponentNetlist", "Netlist"]


@dataclass(frozen=True)
class ComponentNetlist:
    """Synthesized view of one component.

    Attributes
    ----------
    registers:
        Total flip-flop count ``R`` (unchanged by synthesis in this model).
    gated_registers:
        Registers whose clock pin sits behind a clock-gating cell.
    gating_cells:
        Number of inserted integrated-clock-gating (ICG) cells.
    comb_cells:
        Combinational instance counts per library cell class.
    sram_positions:
        SRAM positions carried through from RTL (macro mapping happens in
        the VLSI flow, not in synthesis).
    """

    name: str
    registers: int
    gated_registers: int
    gating_cells: int
    comb_cells: dict[str, int] = field(hash=False)
    sram_positions: tuple[SramPositionRtl, ...] = ()

    def __post_init__(self) -> None:
        if self.registers < 0:
            raise ValueError(f"{self.name}: negative register count")
        if not 0 <= self.gated_registers <= self.registers:
            raise ValueError(
                f"{self.name}: gated_registers {self.gated_registers} outside "
                f"[0, {self.registers}]"
            )
        if self.gating_cells < 0:
            raise ValueError(f"{self.name}: negative gating cell count")
        if self.gated_registers > 0 and self.gating_cells == 0:
            raise ValueError(f"{self.name}: gated registers without gating cells")
        for cell, count in self.comb_cells.items():
            if count < 0:
                raise ValueError(f"{self.name}: negative count for cell {cell}")

    @property
    def gating_rate(self) -> float:
        """The paper's ``g`` — fraction of registers that are gated."""
        if self.registers == 0:
            return 0.0
        return self.gated_registers / self.registers

    @property
    def icg_ratio(self) -> float:
        """The paper's ``r`` — gating cells per gated register."""
        if self.gated_registers == 0:
            return 0.0
        return self.gating_cells / self.gated_registers

    @property
    def total_comb_cells(self) -> int:
        return sum(self.comb_cells.values())


@dataclass(frozen=True)
class Netlist:
    """Synthesized design: one entry per component."""

    config_name: str
    components: tuple[ComponentNetlist, ...]

    def component(self, name: str) -> ComponentNetlist:
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(f"netlist {self.config_name} has no component {name!r}")

    @property
    def total_registers(self) -> int:
        return sum(c.registers for c in self.components)

    @property
    def total_gated_registers(self) -> int:
        return sum(c.gated_registers for c in self.components)

    @property
    def gating_rate(self) -> float:
        total = self.total_registers
        return self.total_gated_registers / total if total else 0.0
