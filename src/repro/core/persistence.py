"""AutoPower model state codecs + legacy save/load entry points.

Training needs the full EDA flow (slow, licensed tooling in the paper's
setting); prediction only needs hardware parameters and a performance
simulator.  Persistence lets the flow-side team train once and hand the
fitted model to architects.

This module owns the AutoPower *state codec* — :func:`autopower_to_state`
/ :func:`autopower_from_state` turn a fitted model into a plain dict of
JSON types (ridge coefficients, boosted trees, fitted scaling laws, the
calibrated SRAM constant — no pickle, safe to check into a repo).  File
I/O lives in :mod:`repro.api.persistence`, which wraps any registered
method's state in a versioned envelope; :func:`save_autopower` and
:func:`load_autopower` remain as thin delegating shims over that API
(files written here are format-v2 envelopes; format-v1 files still load).
"""

from __future__ import annotations

from pathlib import Path

from repro.core.autopower import AutoPower
from repro.core.clock import _ComponentClockModel
from repro.core.scaling import FittedLaw
from repro.core.sram import _PositionModel
from repro.library.stdcell import TechLibrary
from repro.ml.serialize import (
    gbm_from_dict,
    gbm_to_dict,
    ridge_from_dict,
    ridge_to_dict,
)

__all__ = [
    "autopower_from_state",
    "autopower_to_state",
    "load_autopower",
    "save_autopower",
]


def _law_to_dict(law: FittedLaw) -> dict:
    return {
        "coefficient": law.coefficient,
        "params": list(law.params),
        "error": law.error,
    }


def _law_from_dict(state: dict) -> FittedLaw:
    return FittedLaw(
        coefficient=float(state["coefficient"]),
        params=tuple(state["params"]),
        error=float(state["error"]),
    )


def autopower_to_state(model: AutoPower) -> dict:
    """JSON-serializable state of a fitted AutoPower model.

    The payload carries only learned state (plus the training-config
    provenance); the technology library is identified by name in the
    persistence envelope, not here.
    """
    if not model._fitted:
        raise ValueError("cannot save an unfitted AutoPower model")
    clock = {
        name: {
            "f_reg": ridge_to_dict(m.f_reg),
            "f_gate": ridge_to_dict(m.f_gate),
            "f_alpha": gbm_to_dict(m.f_alpha),
        }
        for name, m in model.clock_model._models.items()
    }
    sram = {
        "c_constant_mw": model.sram_model.c_constant_mw,
        "use_program_features": model.sram_model.use_program_features,
        "component_positions": {
            comp: list(names)
            for comp, names in model.sram_model._component_positions.items()
        },
        "positions": {
            name: {
                "component": m.component,
                "capacity_law": _law_to_dict(m.capacity_law),
                "throughput_law": _law_to_dict(m.throughput_law),
                "width_law": _law_to_dict(m.width_law),
                "f_read": gbm_to_dict(m.f_read),
                "f_write": gbm_to_dict(m.f_write),
            }
            for name, m in model.sram_model._positions.items()
        },
    }
    logic = {
        "register": {
            name: {
                "f_reg": ridge_to_dict(model.logic_model.register_model._f_reg[name]),
                "f_act": gbm_to_dict(model.logic_model.register_model._f_act[name]),
            }
            for name in model.logic_model.register_model._f_reg
        },
        "comb": {
            name: {
                "f_sta": ridge_to_dict(model.logic_model.comb_model._f_sta[name]),
                "f_var": gbm_to_dict(model.logic_model.comb_model._f_var[name]),
            }
            for name in model.logic_model.comb_model._f_sta
        },
    }
    return {
        "train_config_names": list(model.train_config_names),
        "clock": clock,
        "sram": sram,
        "logic": logic,
    }


def autopower_from_state(state: dict, library: TechLibrary | None = None) -> AutoPower:
    """Rebuild a fitted AutoPower model from :func:`autopower_to_state`.

    Also accepts the body of a legacy format-v1 file (same inner layout,
    with ``format_version``/``library`` keys riding along at the top).
    """
    model = AutoPower(
        library=library,
        use_program_features=bool(state["sram"]["use_program_features"]),
    )

    for name, sub in state["clock"].items():
        comp_model = _ComponentClockModel.__new__(_ComponentClockModel)
        comp_model.f_reg = ridge_from_dict(sub["f_reg"])
        comp_model.f_gate = ridge_from_dict(sub["f_gate"])
        comp_model.f_alpha = gbm_from_dict(sub["f_alpha"])
        model.clock_model._models[name] = comp_model
    model.clock_model._fitted = True

    sram_state = state["sram"]
    model.sram_model.c_constant_mw = float(sram_state["c_constant_mw"])
    model.sram_model._component_positions = {
        comp: tuple(names)
        for comp, names in sram_state["component_positions"].items()
    }
    for name, sub in sram_state["positions"].items():
        pos = _PositionModel.__new__(_PositionModel)
        pos.component = sub["component"]
        pos.capacity_law = _law_from_dict(sub["capacity_law"])
        pos.throughput_law = _law_from_dict(sub["throughput_law"])
        pos.width_law = _law_from_dict(sub["width_law"])
        pos.f_read = gbm_from_dict(sub["f_read"])
        pos.f_write = gbm_from_dict(sub["f_write"])
        model.sram_model._positions[name] = pos
    model.sram_model._fitted = True

    for name, sub in state["logic"]["register"].items():
        model.logic_model.register_model._f_reg[name] = ridge_from_dict(sub["f_reg"])
        model.logic_model.register_model._f_act[name] = gbm_from_dict(sub["f_act"])
    model.logic_model.register_model._fitted = True
    for name, sub in state["logic"]["comb"].items():
        model.logic_model.comb_model._f_sta[name] = ridge_from_dict(sub["f_sta"])
        model.logic_model.comb_model._f_var[name] = gbm_from_dict(sub["f_var"])
    model.logic_model.comb_model._fitted = True
    model.logic_model._fitted = True

    model.train_config_names = tuple(state["train_config_names"])
    model._fitted = True
    return model


def save_autopower(model: AutoPower, path: str | Path) -> None:
    """Serialize a fitted AutoPower model to a JSON file.

    Thin shim over :func:`repro.api.save_model` (kept for backwards
    compatibility); the file written is a method-agnostic format-v2
    envelope.
    """
    from repro.api import save_model  # repro: noqa[LAYER001] -- lazy back-compat shim; repro.api owns the format, this name predates it

    save_model(model, path)


def load_autopower(path: str | Path, library: TechLibrary | None = None) -> AutoPower:
    """Load a fitted AutoPower model from a JSON file.

    Thin shim over :func:`repro.api.load_model` (kept for backwards
    compatibility); accepts both format-v2 envelopes and legacy format-v1
    AutoPower files.  The technology library is looked up by name (it is
    part of the flow, not of the learned state); pass ``library``
    explicitly when using a non-default one.
    """
    from repro.api import load_model  # repro: noqa[LAYER001] -- lazy back-compat shim; repro.api owns the format, this name predates it

    model = load_model(path, library=library)
    if not isinstance(model, AutoPower):
        raise ValueError(f"{path} does not contain an AutoPower model")
    return model
