"""Scaling-pattern detection — the SRAM hardware model's core.

The paper's insight: SRAM block structure follows two patterns — capacity
scales linearly with a product of hardware parameters, and throughput
(width x count) scales linearly with a product of hardware parameters (or
is constant).  The detector "tries all hardware parameter combinations to
fit a directly proportional function based on known configurations for
training and selects the best combination with minimal error" (Sec. II-B,
Table I walk-through).

Given fitted laws for capacity, throughput and width, the block shape of
an unseen configuration follows:

    count = throughput / width,   depth = capacity / throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

__all__ = ["FittedLaw", "ScalingPatternDetector"]


@dataclass(frozen=True)
class FittedLaw:
    """``value = coefficient * prod(params)``; empty params = constant."""

    coefficient: float
    params: tuple[str, ...]
    error: float

    def evaluate(self, values: dict[str, float]) -> float:
        out = self.coefficient
        for name in self.params:
            out *= values[name]
        return out

    def describe(self) -> str:
        """Human-readable form, e.g. ``240 * FetchWidth * DecodeWidth``."""
        if not self.params:
            return f"{self.coefficient:g}"
        return f"{self.coefficient:g} * " + " * ".join(self.params)


class ScalingPatternDetector:
    """Fit a directly proportional law over all parameter combinations.

    Parameters
    ----------
    max_combination_size:
        Largest parameter subset tried (the paper enumerates all
        combinations; 3 covers every Table III component).
    tolerance:
        Relative-error threshold under which a law counts as exact; used
        only for reporting, not for selection.
    """

    def __init__(self, max_combination_size: int = 3, tolerance: float = 1e-6) -> None:
        if max_combination_size < 0:
            raise ValueError("max_combination_size must be >= 0")
        self.max_combination_size = max_combination_size
        self.tolerance = tolerance

    # ------------------------------------------------------------------
    def fit(
        self,
        targets,
        param_values: dict[str, list[float]],
        param_order: tuple[str, ...] | None = None,
    ) -> FittedLaw:
        """Select the minimal-error proportional law.

        ``targets`` are the observed values over the training
        configurations; ``param_values[p]`` lists parameter ``p``'s values
        over the same configurations.  Ties in error are broken by smaller
        combination size, then by ``param_order`` (Table III order), which
        mirrors the deterministic enumeration order of the paper's method.
        """
        y = np.asarray(targets, dtype=float)
        if y.ndim != 1 or y.size == 0:
            raise ValueError("targets must be a non-empty 1-D sequence")
        if np.any(y <= 0):
            raise ValueError("scaling detection requires positive targets")
        names = tuple(param_order) if param_order is not None else tuple(param_values)
        for name in names:
            if len(param_values[name]) != y.size:
                raise ValueError(
                    f"parameter {name} has {len(param_values[name])} values "
                    f"for {y.size} targets"
                )

        best: FittedLaw | None = None
        max_k = min(self.max_combination_size, len(names))
        for size in range(0, max_k + 1):
            for combo in combinations(names, size):
                law = self._fit_combo(y, combo, param_values)
                if law is None:
                    continue
                if best is None or law.error < best.error - 1e-12:
                    best = law
        if best is None:
            raise RuntimeError("no proportional law could be fitted")
        return best

    # ------------------------------------------------------------------
    @staticmethod
    def _fit_combo(
        y: np.ndarray, combo: tuple[str, ...], param_values: dict[str, list[float]]
    ) -> FittedLaw | None:
        x = np.ones_like(y)
        for name in combo:
            x = x * np.asarray(param_values[name], dtype=float)
        if np.any(x <= 0):
            return None
        # Least-squares through the origin: k = <x, y> / <x, x>.
        k = float(np.dot(x, y) / np.dot(x, x))
        if k <= 0:
            return None
        pred = k * x
        error = float(np.max(np.abs(pred - y) / y))
        return FittedLaw(coefficient=k, params=combo, error=error)

    def is_exact(self, law: FittedLaw) -> bool:
        """Whether the law reproduces training data within tolerance."""
        return law.error <= self.tolerance
