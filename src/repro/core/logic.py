"""Logic power model (paper Sec. II-C).

Logic power = register power (excluding clock pins) + combinational power,
modelled separately:

* **register power** (Eq. 11): ``P_reg = F_reg(H) * F_act(H, E)`` — a
  ridge hardware model for the register count and a GBM activity model
  whose label is golden register power divided by the register count,
* **combinational power** (Eq. 12): ``P_comb = F_sta(H) * F_var(H, E)`` —
  a *stable* model trained on the workload-averaged combinational power of
  each training configuration (hardware-only) and a *variation* model on
  the per-workload ratio to that stable power.
"""

from __future__ import annotations

import numpy as np

from repro.arch.components import COMPONENTS
from repro.arch.config import BoomConfig
from repro.arch.events import EventBatch, EventParams
from repro.core.features import (
    event_features,
    event_features_batch,
    hardware_features,
    polynomial_hardware_features,
)
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import RidgeRegression
from repro.parallel import Executor, SerialExecutor

__all__ = ["CombPowerModel", "LogicPowerModel", "RegisterPowerModel"]

_DEFAULT_GBM = {
    "n_estimators": 150,
    "learning_rate": 0.08,
    "max_depth": 3,
    "reg_lambda": 1.0,
}


def _he_features(config: BoomConfig, events: EventParams, component: str) -> np.ndarray:
    # Scale-free event features: the GBM targets here (per-register power,
    # power variation ratio) are rates, so raw machine-scaled rates are
    # dropped in favour of per-parameter-normalized ones.
    return np.concatenate(
        [
            hardware_features(config, component),
            event_features(events, component, config, include_raw=False),
        ]
    )


def _he_features_batch(
    config: BoomConfig, events: EventBatch, component: str
) -> np.ndarray:
    return np.hstack(
        [
            np.tile(hardware_features(config, component), (len(events), 1)),
            event_features_batch(events, component, config, include_raw=False),
        ]
    )


def _fit_ridge_gbm_pair(
    payload: dict,
) -> tuple[RidgeRegression, GradientBoostingRegressor]:
    """Fit one component's (ridge hardware model, activity GBM) pair.

    Shared by the register and combinational fits — both decompose into a
    hardware-only ridge and an activity GBM per component.  Module-level
    and array-only, so the executor can run it in worker processes; the
    payload carries its own ``random_state``.
    """
    ridge = RidgeRegression(alpha=payload["ridge_alpha"], nonnegative=True)
    ridge.fit(payload["h"], payload["h_labels"])
    gbm = GradientBoostingRegressor(
        random_state=payload["random_state"], **payload["gbm_params"]
    )
    gbm.fit(payload["x"], payload["x_labels"])
    return ridge, gbm


class RegisterPowerModel:
    """Per-component register (non-clock) power: F_reg(H) * F_act(H, E)."""

    def __init__(
        self,
        ridge_alpha: float = 1e-3,
        gbm_params: dict | None = None,
        random_state: int = 0,
    ) -> None:
        self.ridge_alpha = ridge_alpha
        self.gbm_params = dict(_DEFAULT_GBM if gbm_params is None else gbm_params)
        self.random_state = random_state
        self._f_reg: dict[str, RidgeRegression] = {}
        self._f_act: dict[str, GradientBoostingRegressor] = {}
        self._fitted = False

    def fit(
        self, results: list, executor: Executor | None = None
    ) -> RegisterPowerModel:
        if not results:
            raise ValueError("cannot fit on an empty result list")
        if executor is None:
            executor = SerialExecutor()
        payloads = [
            self._component_payload(component.name, results)
            for component in COMPONENTS
        ]
        pairs = executor.map(_fit_ridge_gbm_pair, payloads)
        for component, (f_reg, f_act) in zip(COMPONENTS, pairs):
            self._f_reg[component.name] = f_reg
            self._f_act[component.name] = f_act
        self._fitted = True
        return self

    def _component_payload(self, name: str, results: list) -> dict:
        by_config: dict[str, object] = {}
        for res in results:
            by_config.setdefault(res.config.name, res)
        config_results = list(by_config.values())

        h_rows = [
            polynomial_hardware_features(res.config, name) for res in config_results
        ]
        r_labels = [
            float(res.netlist.component(name).registers) for res in config_results
        ]
        x_rows, act_labels = [], []
        for res in results:
            registers = res.netlist.component(name).registers
            if registers <= 0:
                continue
            p_register = res.power.component(name).register
            x_rows.append(_he_features(res.config, res.events, name))
            act_labels.append(p_register / registers)
        return {
            "ridge_alpha": self.ridge_alpha,
            "gbm_params": self.gbm_params,
            "random_state": self.random_state,
            "h": np.stack(h_rows),
            "h_labels": np.array(r_labels),
            "x": np.stack(x_rows),
            "x_labels": np.array(act_labels),
        }

    def predict_component(
        self, component: str, config: BoomConfig, events: EventParams
    ) -> float:
        if not self._fitted:
            raise RuntimeError("RegisterPowerModel used before fit")
        h = polynomial_hardware_features(config, component).reshape(1, -1)
        registers = max(float(self._f_reg[component].predict(h)[0]), 0.0)
        x = _he_features(config, events, component).reshape(1, -1)
        per_register = max(float(self._f_act[component].predict(x)[0]), 0.0)
        return registers * per_register

    def predict_batch(
        self, config: BoomConfig, events: EventBatch
    ) -> dict[str, np.ndarray]:
        """Per-component register power for a whole event batch, in mW."""
        if not self._fitted:
            raise RuntimeError("RegisterPowerModel used before fit")
        out: dict[str, np.ndarray] = {}
        for comp in COMPONENTS:
            name = comp.name
            h = polynomial_hardware_features(config, name).reshape(1, -1)
            registers = max(float(self._f_reg[name].predict(h)[0]), 0.0)
            x = _he_features_batch(config, events, name)
            per_register = np.maximum(self._f_act[name].predict(x), 0.0)
            out[name] = registers * per_register
        return out


class CombPowerModel:
    """Per-component combinational power: F_sta(H) * F_var(H, E)."""

    def __init__(
        self,
        ridge_alpha: float = 1e-3,
        gbm_params: dict | None = None,
        random_state: int = 0,
    ) -> None:
        self.ridge_alpha = ridge_alpha
        self.gbm_params = dict(_DEFAULT_GBM if gbm_params is None else gbm_params)
        self.random_state = random_state
        self._f_sta: dict[str, RidgeRegression] = {}
        self._f_var: dict[str, GradientBoostingRegressor] = {}
        self._fitted = False

    def fit(
        self, results: list, executor: Executor | None = None
    ) -> CombPowerModel:
        if not results:
            raise ValueError("cannot fit on an empty result list")
        if executor is None:
            executor = SerialExecutor()
        payloads = [
            self._component_payload(component.name, results)
            for component in COMPONENTS
        ]
        pairs = executor.map(_fit_ridge_gbm_pair, payloads)
        for component, (f_sta, f_var) in zip(COMPONENTS, pairs):
            self._f_sta[component.name] = f_sta
            self._f_var[component.name] = f_var
        self._fitted = True
        return self

    def _component_payload(self, name: str, results: list) -> dict:
        by_config: dict[str, list] = {}
        for res in results:
            by_config.setdefault(res.config.name, []).append(res)

        # Stable power: average combinational power across workloads.
        h_rows, sta_labels = [], []
        stable_by_config: dict[str, float] = {}
        for config_name, config_results in by_config.items():
            powers = [r.power.component(name).comb for r in config_results]
            stable = float(np.mean(powers))
            stable_by_config[config_name] = stable
            h_rows.append(
                polynomial_hardware_features(config_results[0].config, name)
            )
            sta_labels.append(stable)

        # Variation: per-workload ratio to the stable power.
        x_rows, var_labels = [], []
        for config_name, config_results in by_config.items():
            stable = stable_by_config[config_name]
            if stable <= 0:
                continue
            for res in config_results:
                x_rows.append(_he_features(res.config, res.events, name))
                var_labels.append(res.power.component(name).comb / stable)
        return {
            "ridge_alpha": self.ridge_alpha,
            "gbm_params": self.gbm_params,
            "random_state": self.random_state,
            "h": np.stack(h_rows),
            "h_labels": np.array(sta_labels),
            "x": np.stack(x_rows),
            "x_labels": np.array(var_labels),
        }

    def predict_component(
        self, component: str, config: BoomConfig, events: EventParams
    ) -> float:
        if not self._fitted:
            raise RuntimeError("CombPowerModel used before fit")
        h = polynomial_hardware_features(config, component).reshape(1, -1)
        stable = max(float(self._f_sta[component].predict(h)[0]), 0.0)
        x = _he_features(config, events, component).reshape(1, -1)
        variation = max(float(self._f_var[component].predict(x)[0]), 0.0)
        return stable * variation

    def predict_batch(
        self, config: BoomConfig, events: EventBatch
    ) -> dict[str, np.ndarray]:
        """Per-component combinational power for a whole event batch, in mW."""
        if not self._fitted:
            raise RuntimeError("CombPowerModel used before fit")
        out: dict[str, np.ndarray] = {}
        for comp in COMPONENTS:
            name = comp.name
            h = polynomial_hardware_features(config, name).reshape(1, -1)
            stable = max(float(self._f_sta[name].predict(h)[0]), 0.0)
            x = _he_features_batch(config, events, name)
            variation = np.maximum(self._f_var[name].predict(x), 0.0)
            out[name] = stable * variation
        return out


class LogicPowerModel:
    """Combined logic power group: register + combinational sub-models."""

    def __init__(
        self,
        ridge_alpha: float = 1e-3,
        gbm_params: dict | None = None,
        random_state: int = 0,
    ) -> None:
        self.register_model = RegisterPowerModel(ridge_alpha, gbm_params, random_state)
        self.comb_model = CombPowerModel(ridge_alpha, gbm_params, random_state)
        self._fitted = False

    def fit(
        self, results: list, executor: Executor | None = None
    ) -> LogicPowerModel:
        self.register_model.fit(results, executor=executor)
        self.comb_model.fit(results, executor=executor)
        self._fitted = True
        return self

    def predict_component(
        self, component: str, config: BoomConfig, events: EventParams
    ) -> tuple[float, float]:
        """(register, comb) power of one component, in mW."""
        if not self._fitted:
            raise RuntimeError("LogicPowerModel used before fit")
        return (
            self.register_model.predict_component(component, config, events),
            self.comb_model.predict_component(component, config, events),
        )

    def predict(
        self, config: BoomConfig, events: EventParams
    ) -> dict[str, tuple[float, float]]:
        return {
            comp.name: self.predict_component(comp.name, config, events)
            for comp in COMPONENTS
        }

    def predict_batch(
        self, config: BoomConfig, events: EventBatch
    ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Per-component (register, comb) power arrays for an event batch."""
        if not self._fitted:
            raise RuntimeError("LogicPowerModel used before fit")
        register = self.register_model.predict_batch(config, events)
        comb = self.comb_model.predict_batch(config, events)
        return {
            comp.name: (register[comp.name], comb[comp.name])
            for comp in COMPONENTS
        }
