"""The assembled AutoPower model.

``fit`` consumes the EDA-flow results of the few known configurations
(2-3 in the paper) across the training workloads; ``predict_report``
estimates per-component, per-group power for *any* configuration from its
hardware parameters and performance-simulator events alone.  Time-based
trace prediction evaluates the same model on 50-cycle event windows
without any additional trace training, exactly as in the paper's Table IV
experiment.
"""

from __future__ import annotations

import numpy as np

from repro.arch.components import COMPONENTS
from repro.arch.config import BoomConfig
from repro.arch.events import EVENT_NAMES, EventBatch, EventParams
from repro.arch.workloads import Workload
from repro.core.clock import ClockPowerModel
from repro.core.logic import LogicPowerModel
from repro.core.sram import SramPowerModel
from repro.library.stdcell import TechLibrary, default_library
from repro.parallel import Executor, get_executor
from repro.power.report import ComponentPower, PowerReport
from repro.vlsi.macro_mapping import MacroMapper

__all__ = ["AutoPower", "events_at_scale"]


def events_at_scale(
    events: EventParams, scale, window_cycles: int
):
    """Event counts of trace windows at given activity scales.

    Window rates are the run-average rates times ``scale``; the window is
    ``window_cycles`` long.  A scalar ``scale`` returns one
    :class:`EventParams`; an array of scales returns an
    :class:`EventBatch` whose rows are the per-scale event vectors (one
    vectorized expression — no per-anchor dict rebuilds).
    """
    if window_cycles <= 0:
        raise ValueError("window_cycles must be positive")
    if np.ndim(scale) == 0:
        if scale <= 0:
            raise ValueError("scale must be positive")
        cycles = events.cycles
        counts = {
            name: events.counts[name] / cycles * scale * window_cycles
            for name in EVENT_NAMES
        }
        counts["cycles"] = float(window_cycles)
        return EventParams(counts)
    scales = np.asarray(scale, dtype=float).ravel()
    if scales.size == 0:
        raise ValueError("scale array must be non-empty")
    if np.any(scales <= 0):
        raise ValueError("scale must be positive")
    cycles = events.cycles
    base = np.array(
        [events.counts[name] / cycles for name in EVENT_NAMES], dtype=float
    )
    matrix = base[None, :] * scales[:, None] * window_cycles
    matrix[:, EVENT_NAMES.index("cycles")] = float(window_cycles)
    return EventBatch(matrix)


class AutoPower:
    """Fully automated few-shot architecture-level power model.

    Parameters
    ----------
    library:
        Technology library for the ``p_reg`` and macro energy lookups.
    use_program_features:
        Feed microarchitecture-independent program features to the SRAM
        activity model (paper default: on).
    ridge_alpha / gbm_params / random_state:
        Shared hyper-parameters for the linear and boosted sub-models.
    n_jobs / executor_backend:
        Default parallelism of ``fit``: worker count (``None`` defers to
        the CLI ``--jobs`` / ``REPRO_JOBS`` setting, ``<= 0`` means all
        cores) and backend (``auto``/``serial``/``thread``/``process``).
        The ~90 per-component sub-model fits are independent; results are
        numerically identical on every backend.
    """

    def __init__(
        self,
        library: TechLibrary | None = None,
        mapper: MacroMapper | None = None,
        use_program_features: bool = True,
        ridge_alpha: float = 1e-3,
        gbm_params: dict | None = None,
        random_state: int = 0,
        n_jobs: int | None = None,
        executor_backend: str | None = None,
    ) -> None:
        self.library = library if library is not None else default_library()
        self.n_jobs = n_jobs
        self.executor_backend = executor_backend
        self.mapper = mapper if mapper is not None else MacroMapper(self.library.sram)
        self.clock_model = ClockPowerModel(
            self.library, ridge_alpha, gbm_params, random_state
        )
        self.sram_model = SramPowerModel(
            self.library,
            self.mapper,
            use_program_features=use_program_features,
            gbm_params=gbm_params,
            random_state=random_state,
        )
        self.logic_model = LogicPowerModel(ridge_alpha, gbm_params, random_state)
        self.train_config_names: tuple[str, ...] = ()
        self._fitted = False

    # ------------------------------------------------------------------
    def _executor(
        self, n_jobs: int | None = None, backend: str | None = None
    ) -> Executor:
        """The fit executor for an (optional) per-call override."""
        return get_executor(
            self.n_jobs if n_jobs is None else n_jobs,
            self.executor_backend if backend is None else backend,
        )

    def fit(
        self,
        flow,
        train_configs,
        workloads,
        n_jobs: int | None = None,
        backend: str | None = None,
    ) -> AutoPower:
        """Train all sub-models from the flow outputs of known configs.

        ``flow`` is a :class:`repro.vlsi.flow.VlsiFlow`; it is only ever
        invoked on the *training* configurations.  ``n_jobs``/``backend``
        override the instance-level parallelism for both the ground-truth
        flow runs and the sub-model fits.
        """
        executor = self._executor(n_jobs, backend)
        results = flow.run_many(
            list(train_configs), list(workloads), executor=executor
        )
        return self.fit_results(results, executor=executor)

    def fit_results(
        self,
        results: list,
        n_jobs: int | None = None,
        backend: str | None = None,
        executor: Executor | None = None,
    ) -> AutoPower:
        """Train from precomputed flow results (train configs only)."""
        if not results:
            raise ValueError("cannot fit on an empty result list")
        if executor is None:
            executor = self._executor(n_jobs, backend)
        self.clock_model.fit(results, executor=executor)
        self.sram_model.fit(results, executor=executor)
        self.logic_model.fit(results, executor=executor)
        seen: list[str] = []
        for res in results:
            if res.config.name not in seen:
                seen.append(res.config.name)
        self.train_config_names = tuple(seen)
        self._fitted = True
        return self

    def _require_fit(self) -> None:
        if not self._fitted:
            raise RuntimeError("AutoPower used before fit")

    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-serializable state of the fitted model (no pickle)."""
        from repro.core.persistence import autopower_to_state

        return autopower_to_state(self)

    @classmethod
    def from_state(
        cls, state: dict, library: TechLibrary | None = None
    ) -> AutoPower:
        """Rebuild a fitted model from :meth:`to_state` output."""
        from repro.core.persistence import autopower_from_state

        return autopower_from_state(state, library=library)

    # ------------------------------------------------------------------
    def predict_report(
        self, config: BoomConfig, events: EventParams, workload: Workload
    ) -> PowerReport:
        """Predicted per-component, per-group power report."""
        self._require_fit()
        components = []
        for comp in COMPONENTS:
            clock = self.clock_model.predict_component(comp.name, config, events)
            sram = self.sram_model.predict_component(
                comp.name, config, events, workload
            )
            register, comb = self.logic_model.predict_component(
                comp.name, config, events
            )
            components.append(
                ComponentPower(
                    name=comp.name,
                    clock=clock,
                    sram=sram,
                    register=register,
                    comb=comb,
                )
            )
        return PowerReport(
            config_name=config.name,
            workload_name=workload.name,
            components=tuple(components),
        )

    def predict_total(
        self, config: BoomConfig, events: EventParams, workload: Workload
    ) -> float:
        """Predicted total power, in mW."""
        return self.predict_report(config, events, workload).total

    # -- batched prediction ----------------------------------------------
    def predict_reports(
        self, config: BoomConfig, events, workload
    ) -> list[PowerReport]:
        """Power reports for a whole batch of event intervals.

        ``events`` is an :class:`EventBatch` or a sequence of
        :class:`EventParams`; ``workload`` is a single workload or one per
        interval.  Every sub-model evaluates the full feature matrix in
        one pass — hardware-only sub-models once per component — instead
        of intervals x components x groups scalar calls.
        """
        self._require_fit()
        batch = EventBatch.from_events(events)
        n = len(batch)
        clock = self.clock_model.predict_batch(config, batch)
        sram = self.sram_model.predict_batch(config, batch, workload)
        logic = self.logic_model.predict_batch(config, batch)
        if isinstance(workload, Workload):
            workload_names = [workload.name] * n
        else:
            workload_names = [w.name for w in workload]
            if len(workload_names) != n:
                raise ValueError(
                    f"got {len(workload_names)} workloads for {n} intervals"
                )
        reports = []
        for i in range(n):
            components = tuple(
                ComponentPower(
                    name=comp.name,
                    clock=float(clock[comp.name][i]),
                    sram=float(sram[comp.name][i]) if comp.name in sram else 0.0,
                    register=float(logic[comp.name][0][i]),
                    comb=float(logic[comp.name][1][i]),
                )
                for comp in COMPONENTS
            )
            reports.append(
                PowerReport(
                    config_name=config.name,
                    workload_name=workload_names[i],
                    components=components,
                )
            )
        return reports

    def predict_totals(
        self, config: BoomConfig, events, workload
    ) -> np.ndarray:
        """Predicted total power per interval of a batch, in mW."""
        self._require_fit()
        batch = EventBatch.from_events(events)
        clock = self.clock_model.predict_batch(config, batch)
        sram = self.sram_model.predict_batch(config, batch, workload)
        logic = self.logic_model.predict_batch(config, batch)
        total = np.zeros(len(batch))
        for comp in COMPONENTS:
            name = comp.name
            register, comb = logic[name]
            total += clock[name] + register + comb
            if name in sram:
                total += sram[name]
        return total

    def predict_group(
        self, config: BoomConfig, events: EventParams, workload: Workload, group: str
    ) -> float:
        """Predicted power of one group (clock / sram / register / comb /
        logic), in mW."""
        return self.predict_report(config, events, workload).group_total(group)

    # ------------------------------------------------------------------
    def predict_trace(
        self,
        config: BoomConfig,
        events: EventParams,
        workload: Workload,
        scales: np.ndarray,
        window_cycles: int = 50,
        n_anchors: int = 65,
    ) -> np.ndarray:
        """Predicted per-window total power for a trace (Table IV).

        The model is applied per 50-cycle window without any trace-level
        tuning; windows are one-parameter (activity scale) families of the
        run-average events, so the prediction is evaluated at ``n_anchors``
        scales and linearly interpolated — exact up to the GBM's step
        granularity.
        """
        self._require_fit()
        scales = np.asarray(scales, dtype=float)
        if scales.size == 0:
            raise ValueError("scales must be non-empty")
        lo, hi = float(scales.min()), float(scales.max())
        if lo <= 0:
            raise ValueError("scales must be positive")
        if hi - lo < 1e-12:
            power = self.predict_total(
                config, events_at_scale(events, lo, window_cycles), workload
            )
            return np.full(scales.shape, power)
        anchors = np.linspace(lo, hi, n_anchors)
        # One stacked event matrix and one batched model pass cover every
        # anchor; no per-anchor event dicts or scalar sub-model calls.
        batch = events_at_scale(events, anchors, window_cycles)
        powers = self.predict_totals(config, batch, workload)
        return np.interp(scales, anchors, powers)
