"""Clock power model (paper Sec. II-A).

Decomposition (Eq. 7):

    P_clk = R * (1 - g) * p_reg  +  alpha' * R * g

with ``p_reg`` looked up from the technology library and three learned
sub-models (Eq. 8):

    R = F_reg(H)        ridge regression, netlist register-count labels
    g = F_gate(H)       ridge regression, netlist gating-rate labels
    alpha' = F_alpha(H, E)   gradient-boosted trees, labels recovered by
                             inverting Eq. 7 on the golden clock power of
                             the training configurations

``alpha'`` is the paper's *effective active rate*: the true active rate
folded together with the gating-cell term ``(1 + r * p_latch / p_reg)``
(Eq. 6) — and, in practice, whatever clock-tree residue Eq. 7 does not
capture, which is why it must be learned per workload.
"""

from __future__ import annotations

import numpy as np

from repro.arch.components import COMPONENTS
from repro.arch.config import BoomConfig
from repro.arch.events import EventBatch, EventParams
from repro.core.features import (
    event_features,
    event_features_batch,
    hardware_features,
    polynomial_hardware_features,
)
from repro.library.stdcell import TechLibrary
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.linear import RidgeRegression
from repro.parallel import Executor, SerialExecutor

__all__ = ["ClockPowerModel"]

_DEFAULT_GBM = {
    "n_estimators": 150,
    "learning_rate": 0.08,
    "max_depth": 3,
    "reg_lambda": 1.0,
}


class _ComponentClockModel:
    """The three sub-models of one component."""

    def __init__(self, ridge_alpha: float, gbm_params: dict, random_state: int) -> None:
        self.f_reg = RidgeRegression(alpha=ridge_alpha, nonnegative=True)
        self.f_gate = RidgeRegression(alpha=ridge_alpha)
        self.f_alpha = GradientBoostingRegressor(
            random_state=random_state, **gbm_params
        )


def _fit_clock_component(payload: dict) -> _ComponentClockModel:
    """Fit one component's three clock sub-models from a pure payload.

    A module-level function of plain arrays and hyper-parameters — the
    picklable task the executor fans out; the payload carries its own
    ``random_state``, so the result is backend-independent.
    """
    model = _ComponentClockModel(
        payload["ridge_alpha"], payload["gbm_params"], payload["random_state"]
    )
    model.f_reg.fit(payload["h"], payload["r_labels"])
    model.f_gate.fit(payload["h"], payload["g_labels"])
    model.f_alpha.fit(payload["x"], payload["a_labels"])
    return model


class ClockPowerModel:
    """Per-component clock power with register/gating/active-rate decoupling.

    Parameters
    ----------
    library:
        Technology library for the ``p_reg`` lookup.
    ridge_alpha:
        L2 strength of the register-count and gating-rate models.
    gbm_params:
        Hyper-parameters of the effective-active-rate GBM.
    """

    def __init__(
        self,
        library: TechLibrary,
        ridge_alpha: float = 1e-3,
        gbm_params: dict | None = None,
        random_state: int = 0,
    ) -> None:
        self.library = library
        self.ridge_alpha = ridge_alpha
        self.gbm_params = dict(_DEFAULT_GBM if gbm_params is None else gbm_params)
        self.random_state = random_state
        self._models: dict[str, _ComponentClockModel] = {}
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(
        self, results: list, executor: Executor | None = None
    ) -> ClockPowerModel:
        """Train from flow results of the known configurations.

        ``results`` is a list of :class:`repro.vlsi.flow.FlowResult`
        covering (train configs) x (workloads).  Register-count and
        gating-rate labels come from the netlists (one sample per config);
        effective-active-rate labels come from inverting Eq. 7 on golden
        clock power (one sample per config x workload).  The per-component
        fits are independent and run through ``executor`` (serial by
        default) with numerically identical results on every backend.
        """
        if executor is None:
            executor = SerialExecutor()
        payloads = [
            self._component_payload(component.name, results)
            for component in COMPONENTS
        ]
        models = executor.map(_fit_clock_component, payloads)
        self._models = {
            component.name: model for component, model in zip(COMPONENTS, models)
        }
        self._fitted = True
        return self

    def _component_payload(self, name: str, results: list) -> dict:
        """Feature matrices and labels of one component's fit task."""
        if not results:
            raise ValueError("cannot fit on an empty result list")
        by_config: dict[str, object] = {}
        for res in results:
            by_config.setdefault(res.config.name, res)
        config_results = list(by_config.values())
        p_reg = self.library.p_reg_mw

        # Per-config labels from the netlist.
        h_rows = []
        r_labels = []
        g_labels = []
        for res in config_results:
            comp_net = res.netlist.component(name)
            h_rows.append(polynomial_hardware_features(res.config, name))
            r_labels.append(float(comp_net.registers))
            g_labels.append(comp_net.gating_rate)

        # Per-sample effective-active-rate labels (Eq. 7 inverted).
        x_rows = []
        a_labels = []
        for res in results:
            comp_net = res.netlist.component(name)
            r = comp_net.registers
            g = comp_net.gating_rate
            p_clk = res.power.component(name).clock
            if r <= 0 or g <= 0:
                continue
            alpha_eff = (p_clk - r * (1.0 - g) * p_reg) / (r * g)
            x_rows.append(self._alpha_features(res.config, res.events, name))
            a_labels.append(max(alpha_eff, 0.0))
        if not x_rows:
            raise RuntimeError(f"no effective-active-rate samples for {name}")
        return {
            "ridge_alpha": self.ridge_alpha,
            "gbm_params": self.gbm_params,
            "random_state": self.random_state,
            "h": np.stack(h_rows),
            "r_labels": np.array(r_labels),
            "g_labels": np.array(g_labels),
            "x": np.stack(x_rows),
            "a_labels": np.array(a_labels),
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _alpha_features(
        config: BoomConfig, events: EventParams, component: str
    ) -> np.ndarray:
        return np.concatenate(
            [
                hardware_features(config, component),
                event_features(events, component, config, include_raw=False),
            ]
        )

    def _require_fit(self) -> None:
        if not self._fitted:
            raise RuntimeError("ClockPowerModel used before fit")

    # -- sub-model access ------------------------------------------------
    def predict_register_count(self, component: str, config: BoomConfig) -> float:
        """Predicted register count R of one component."""
        self._require_fit()
        h = polynomial_hardware_features(config, component).reshape(1, -1)
        return float(self._models[component].f_reg.predict(h)[0])

    def predict_gating_rate(self, component: str, config: BoomConfig) -> float:
        """Predicted gating rate g of one component, clipped to [0, 1]."""
        self._require_fit()
        h = polynomial_hardware_features(config, component).reshape(1, -1)
        return float(np.clip(self._models[component].f_gate.predict(h)[0], 0.0, 1.0))

    def predict_effective_active_rate(
        self, component: str, config: BoomConfig, events: EventParams
    ) -> float:
        """Predicted effective active rate alpha' (non-negative)."""
        self._require_fit()
        x = self._alpha_features(config, events, component).reshape(1, -1)
        return max(float(self._models[component].f_alpha.predict(x)[0]), 0.0)

    # -- power prediction --------------------------------------------------
    def predict_component(
        self, component: str, config: BoomConfig, events: EventParams
    ) -> float:
        """Clock power of one component per Eq. 7, in mW."""
        r = self.predict_register_count(component, config)
        g = self.predict_gating_rate(component, config)
        alpha_eff = self.predict_effective_active_rate(component, config, events)
        p_reg = self.library.p_reg_mw
        return max(r * (1.0 - g) * p_reg + alpha_eff * r * g, 0.0)

    def predict(self, config: BoomConfig, events: EventParams) -> dict[str, float]:
        """Per-component clock power, in mW."""
        return {
            comp.name: self.predict_component(comp.name, config, events)
            for comp in COMPONENTS
        }

    # -- batched prediction ----------------------------------------------
    def predict_batch(
        self, config: BoomConfig, events: EventBatch
    ) -> dict[str, np.ndarray]:
        """Per-component clock power for a whole event batch, in mW.

        The hardware-only sub-models (register count, gating rate) are
        evaluated once per component; only the effective-active-rate GBM
        sees the event matrix, in a single batched pass.
        """
        self._require_fit()
        p_reg = self.library.p_reg_mw
        n = len(events)
        out: dict[str, np.ndarray] = {}
        for comp in COMPONENTS:
            name = comp.name
            r = self.predict_register_count(name, config)
            g = self.predict_gating_rate(name, config)
            x = np.hstack(
                [
                    np.tile(hardware_features(config, name), (n, 1)),
                    event_features_batch(events, name, config, include_raw=False),
                ]
            )
            alpha = np.maximum(self._models[name].f_alpha.predict(x), 0.0)
            out[name] = np.maximum(r * (1.0 - g) * p_reg + alpha * r * g, 0.0)
        return out
