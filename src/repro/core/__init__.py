"""AutoPower — the paper's primary contribution.

Power-group decoupling:

* :mod:`repro.core.clock` — clock power via register-count, gating-rate
  and effective-active-rate sub-models (paper Sec. II-A, Eq. 1-8),
* :mod:`repro.core.sram` — SRAM power via the four-level hierarchy:
  scaling-pattern hardware model, activity model and macro-level mapping
  (Sec. II-B, Eq. 9-10),
* :mod:`repro.core.logic` — register power and combinational
  stable/variation decoupling (Sec. II-C, Eq. 11-12),
* :mod:`repro.core.autopower` — the assembled model with a
  paper-equivalent ``fit`` / ``predict`` API and time-based trace support.

All three group models expose a matrix-level ``predict_batch`` over an
:class:`repro.arch.events.EventBatch` (hardware-only sub-models evaluated
once per component, event-driven GBMs in one feature-matrix pass), and
``AutoPower`` adds ``predict_reports`` / ``predict_totals`` batch APIs on
top; ``predict_trace`` evaluates all anchors in a single batched pass and
is ~95x faster than the per-anchor scalar path it replaced, with
bitwise-identical per-group results.
"""

from repro.core.autopower import AutoPower
from repro.core.clock import ClockPowerModel
from repro.core.logic import CombPowerModel, LogicPowerModel, RegisterPowerModel
from repro.core.scaling import FittedLaw, ScalingPatternDetector
from repro.core.sram import SramPowerModel

__all__ = [
    "AutoPower",
    "ClockPowerModel",
    "CombPowerModel",
    "FittedLaw",
    "LogicPowerModel",
    "RegisterPowerModel",
    "ScalingPatternDetector",
    "SramPowerModel",
]
