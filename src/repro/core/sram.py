"""SRAM power model (paper Sec. II-B).

Top-down over the four-level hierarchy
``Component -> SRAM Position -> SRAM Block -> SRAM Macro``:

1. **feature transfer** — an SRAM position inherits the hardware and event
   parameters of its component,
2. **hardware model** — the scaling-pattern detector fits directly
   proportional laws for capacity, throughput and width of each position
   from the training configurations' block shapes, then derives
   ``count = throughput / width`` and ``depth = capacity / throughput``,
3. **activity model** — gradient-boosted trees predict block-level
   read/write frequencies from hardware parameters, event parameters and
   (the paper's addition) microarchitecture-independent program features,
4. **macro-level mapping** — the VLSI flow's deterministic rule builds the
   block from legal macros; per-macro frequency is the block frequency
   divided by the number of macro columns (Eq. 9), and power follows
   Eq. 10 with the pin-toggle/leakage constant ``C`` calibrated once from
   golden power of the training configuration's blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.components import component_by_name, sram_components
from repro.arch.config import BoomConfig
from repro.arch.events import EventBatch, EventParams
from repro.arch.workloads import Workload
from repro.core.features import (
    event_features,
    event_features_batch,
    hardware_features,
    program_features,
    program_features_matrix,
)
from repro.core.scaling import FittedLaw, ScalingPatternDetector
from repro.library.stdcell import TechLibrary
from repro.ml.gbm import GradientBoostingRegressor
from repro.parallel import Executor, SerialExecutor
from repro.vlsi.macro_mapping import MacroMapper

__all__ = ["PredictedBlock", "SramPowerModel"]

_DEFAULT_GBM = {
    "n_estimators": 150,
    "learning_rate": 0.08,
    "max_depth": 3,
    "reg_lambda": 1.0,
}


@dataclass(frozen=True)
class PredictedBlock:
    """Predicted SRAM block hardware information of one position."""

    width: int
    depth: int
    count: int

    @property
    def capacity_bits(self) -> int:
        return self.width * self.depth * self.count


class _PositionModel:
    """Hardware + activity models of one SRAM position."""

    def __init__(self, component: str, gbm_params: dict, random_state: int) -> None:
        self.component = component
        self.capacity_law: FittedLaw | None = None
        self.throughput_law: FittedLaw | None = None
        self.width_law: FittedLaw | None = None
        self.f_read = GradientBoostingRegressor(random_state=random_state, **gbm_params)
        self.f_write = GradientBoostingRegressor(
            random_state=random_state + 1, **gbm_params
        )


def _fit_sram_position(payload: dict) -> _PositionModel:
    """Fit one position's scaling laws and activity GBMs from a payload.

    Module-level and built from plain arrays only, so the executor can
    hand it to worker processes; the payload carries its own seeds.
    """
    model = _PositionModel(
        payload["component"], payload["gbm_params"], payload["random_state"]
    )
    detector = ScalingPatternDetector(
        max_combination_size=payload["max_combination_size"],
        tolerance=payload["tolerance"],
    )
    params = payload["params"]
    param_values = payload["param_values"]
    model.capacity_law = detector.fit(payload["capacities"], param_values, params)
    model.throughput_law = detector.fit(payload["throughputs"], param_values, params)
    model.width_law = detector.fit(payload["widths"], param_values, params)
    model.f_read.fit(payload["x"], payload["read_labels"])
    model.f_write.fit(payload["x"], payload["write_labels"])
    return model


class SramPowerModel:
    """Hierarchy-based SRAM power with scaling-pattern hardware modeling.

    Parameters
    ----------
    library:
        Technology library (macro energies; shared with the golden flow,
        as in the paper where both read the same memory-compiler views).
    mapper:
        The VLSI flow's block-to-macro mapping rule.
    use_program_features:
        Include microarchitecture-independent program features in the
        activity model (the paper's addition; disable for the ablation).
    """

    def __init__(
        self,
        library: TechLibrary,
        mapper: MacroMapper | None = None,
        use_program_features: bool = True,
        gbm_params: dict | None = None,
        random_state: int = 0,
    ) -> None:
        self.library = library
        self.mapper = mapper if mapper is not None else MacroMapper(library.sram)
        self.use_program_features = use_program_features
        self.gbm_params = dict(_DEFAULT_GBM if gbm_params is None else gbm_params)
        self.random_state = random_state
        self.detector = ScalingPatternDetector(max_combination_size=3)
        self._positions: dict[str, _PositionModel] = {}
        self._component_positions: dict[str, tuple[str, ...]] = {}
        self.c_constant_mw: float = 0.0
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(
        self, results: list, executor: Executor | None = None
    ) -> SramPowerModel:
        """Train from flow results of the known configurations.

        The per-position fits (scaling laws + read/write GBMs) are
        independent pure tasks and run through ``executor`` (serial by
        default) with numerically identical results on every backend.
        """
        if not results:
            raise ValueError("cannot fit on an empty result list")
        if executor is None:
            executor = SerialExecutor()
        by_config: dict[str, object] = {}
        for res in results:
            by_config.setdefault(res.config.name, res)
        config_results = list(by_config.values())

        # Discover positions from the training designs (architecture-visible).
        first_design = config_results[0].design
        comp_positions: dict[str, list[str]] = {}
        for comp in sram_components():
            comp_rtl = first_design.component(comp.name)
            comp_positions[comp.name] = [p.name for p in comp_rtl.sram_positions]
        self._component_positions = {
            name: tuple(pos) for name, pos in comp_positions.items()
        }

        position_names: list[str] = []
        payloads: list[dict] = []
        for comp_name, pos_names in self._component_positions.items():
            params = component_by_name(comp_name).hardware_parameters
            for pos_name in pos_names:
                position_names.append(pos_name)
                payloads.append(
                    self._position_payload(
                        comp_name, pos_name, params, config_results, results
                    )
                )
        models = executor.map(_fit_sram_position, payloads)
        self._positions = dict(zip(position_names, models))

        self.c_constant_mw = self._calibrate_constant(config_results[0])
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def _position_payload(
        self,
        comp_name: str,
        pos_name: str,
        params: tuple[str, ...],
        config_results: list,
        results: list,
    ) -> dict:
        """Arrays and hyper-parameters of one position's fit task."""
        # Hardware side: block shapes per training configuration.
        capacities, throughputs, widths = [], [], []
        param_values: dict[str, list[float]] = {p: [] for p in params}
        for res in config_results:
            block = res.design.component(comp_name).position(pos_name).block
            capacities.append(block.capacity_bits)
            throughputs.append(block.throughput_bits)
            widths.append(block.width)
            for p in params:
                param_values[p].append(float(res.config[p]))
        # Activity side: golden block frequencies per (config, workload).
        x_rows, read_labels, write_labels = [], [], []
        for res in results:
            act = res.activity.component(comp_name).positions[pos_name]
            x_rows.append(
                self._activity_features(res.config, res.events, res.workload, comp_name)
            )
            read_labels.append(act.read_per_block_cycle)
            write_labels.append(act.write_per_block_cycle)
        return {
            "component": comp_name,
            "gbm_params": self.gbm_params,
            "random_state": self.random_state,
            "max_combination_size": self.detector.max_combination_size,
            "tolerance": self.detector.tolerance,
            "params": params,
            "param_values": param_values,
            "capacities": capacities,
            "throughputs": throughputs,
            "widths": widths,
            "x": np.stack(x_rows),
            "read_labels": np.array(read_labels),
            "write_labels": np.array(write_labels),
        }

    def _activity_features(
        self,
        config: BoomConfig,
        events: EventParams,
        workload: Workload,
        comp_name: str,
    ) -> np.ndarray:
        parts = [
            hardware_features(config, comp_name),
            event_features(events, comp_name, config),
        ]
        if self.use_program_features:
            parts.append(program_features(workload))
        return np.concatenate(parts)

    def _calibrate_constant(self, result) -> float:
        """Estimate per-macro constant C from golden block power (Eq. 10).

        The paper estimates C from the golden power of an SRAM block from
        power simulation; we average the residual (golden minus modeled
        dynamic power) per macro over the first training configuration's
        positions.
        """
        # "Power simulation" of the training configuration's blocks: ask
        # the golden analyzer (same library + mapping rule, as in the paper
        # where PrimePower and the model share the .lib and flow scripts).
        from repro.power.analysis import PowerAnalyzer

        analyzer = PowerAnalyzer(self.library, self.mapper)
        residual = 0.0
        macros = 0.0
        for comp_name, position_names in self._component_positions.items():
            comp_net = result.netlist.component(comp_name)
            comp_act = result.activity.component(comp_name)
            for pos_name in position_names:
                pos = next(p for p in comp_net.sram_positions if p.name == pos_name)
                act = comp_act.positions[pos_name]
                mapping = self.mapper.map(pos.block.width, pos.block.depth)
                macro = mapping.macro
                dyn = self.library.power_mw(
                    mapping.n_row
                    * (
                        act.read_per_block_cycle * macro.read_energy_pj
                        + act.write_per_block_cycle * macro.write_energy_pj
                    )
                )
                golden = analyzer.position_power(comp_net, comp_act, pos_name)
                residual += golden - pos.block.count * dyn
                macros += pos.block.count * mapping.n_macros
        if macros <= 0:
            raise RuntimeError("no macros found while calibrating C")
        return max(residual / macros, 0.0)

    def _require_fit(self) -> None:
        if not self._fitted:
            raise RuntimeError("SramPowerModel used before fit")

    # -- hardware prediction ---------------------------------------------
    def predict_block(self, position: str, config: BoomConfig) -> PredictedBlock:
        """Predicted SRAM block shape of one position (Table I mechanics)."""
        self._require_fit()
        model = self._positions[position]
        params = component_by_name(model.component).hardware_parameters
        values = {p: float(config[p]) for p in params}
        capacity = model.capacity_law.evaluate(values)
        throughput = model.throughput_law.evaluate(values)
        width = model.width_law.evaluate(values)
        count = max(int(round(throughput / max(width, 1e-9))), 1)
        depth = max(int(round(capacity / max(throughput, 1e-9))), 1)
        return PredictedBlock(
            width=max(int(round(width)), 1), depth=depth, count=count
        )

    # -- activity prediction -----------------------------------------------
    def predict_block_activity(
        self,
        position: str,
        config: BoomConfig,
        events: EventParams,
        workload: Workload,
    ) -> tuple[float, float]:
        """Predicted block-level (read, write) frequencies per cycle."""
        self._require_fit()
        model = self._positions[position]
        x = self._activity_features(config, events, workload, model.component)
        x = x.reshape(1, -1)
        read = max(float(model.f_read.predict(x)[0]), 0.0)
        write = max(float(model.f_write.predict(x)[0]), 0.0)
        return read, write

    # -- power prediction ----------------------------------------------------
    def predict_position(
        self,
        position: str,
        config: BoomConfig,
        events: EventParams,
        workload: Workload,
    ) -> float:
        """Predicted power of one SRAM position (all blocks), in mW."""
        block = self.predict_block(position, config)
        read_f, write_f = self.predict_block_activity(position, config, events, workload)
        mapping = self.mapper.map(block.width, block.depth)
        macro = mapping.macro
        # Eq. 9: per-macro frequency is block frequency over macro columns.
        f_read_macro = read_f / mapping.n_col
        f_write_macro = write_f / mapping.n_col
        # Eq. 10 per macro, summed over the macro grid and the blocks.
        per_macro = (
            self.library.power_mw(
                f_read_macro * macro.read_energy_pj
                + f_write_macro * macro.write_energy_pj
            )
            + self.c_constant_mw
        )
        return block.count * mapping.n_macros * per_macro

    def predict_component(
        self,
        component: str,
        config: BoomConfig,
        events: EventParams,
        workload: Workload,
    ) -> float:
        """Predicted SRAM power of one component, in mW."""
        self._require_fit()
        positions = self._component_positions.get(component, ())
        return sum(
            self.predict_position(pos, config, events, workload) for pos in positions
        )

    def predict(
        self, config: BoomConfig, events: EventParams, workload: Workload
    ) -> dict[str, float]:
        """Per-component SRAM power, in mW (SRAM-bearing components only)."""
        self._require_fit()
        return {
            name: self.predict_component(name, config, events, workload)
            for name in self._component_positions
        }

    # -- batched prediction ----------------------------------------------
    def _activity_features_batch(
        self, config: BoomConfig, events: EventBatch, workload, component: str
    ) -> np.ndarray:
        parts = [
            np.tile(hardware_features(config, component), (len(events), 1)),
            event_features_batch(events, component, config),
        ]
        if self.use_program_features:
            parts.append(program_features_matrix(workload, len(events)))
        return np.hstack(parts)

    def predict_position_batch(
        self,
        position: str,
        config: BoomConfig,
        events: EventBatch,
        workload,
        x: np.ndarray | None = None,
    ) -> np.ndarray:
        """Power of one SRAM position for a whole event batch, in mW.

        The block shape and macro mapping are hardware-only and resolved
        once; the read/write GBMs see the event matrix in one pass.  ``x``
        lets :meth:`predict_batch` share the component's feature matrix
        across positions.
        """
        self._require_fit()
        model = self._positions[position]
        block = self.predict_block(position, config)
        if x is None:
            x = self._activity_features_batch(config, events, workload, model.component)
        read = np.maximum(model.f_read.predict(x), 0.0)
        write = np.maximum(model.f_write.predict(x), 0.0)
        mapping = self.mapper.map(block.width, block.depth)
        macro = mapping.macro
        per_macro = (
            self.library.power_mw(
                read / mapping.n_col * macro.read_energy_pj
                + write / mapping.n_col * macro.write_energy_pj
            )
            + self.c_constant_mw
        )
        return block.count * mapping.n_macros * per_macro

    def predict_batch(
        self, config: BoomConfig, events: EventBatch, workload
    ) -> dict[str, np.ndarray]:
        """Per-component SRAM power for a whole event batch, in mW.

        ``workload`` is a single :class:`Workload` or one per interval.
        Components without SRAM are omitted, like :meth:`predict`.
        """
        self._require_fit()
        n = len(events)
        out: dict[str, np.ndarray] = {}
        for comp_name, positions in self._component_positions.items():
            # All of a component's positions share one feature matrix.
            x = self._activity_features_batch(config, events, workload, comp_name)
            total = np.zeros(n)
            for pos in positions:
                total = total + self.predict_position_batch(
                    pos, config, events, workload, x=x
                )
            out[comp_name] = total
        return out

    @property
    def position_names(self) -> tuple[str, ...]:
        self._require_fit()
        return tuple(self._positions)

    def laws(self, position: str) -> dict[str, FittedLaw]:
        """The fitted scaling laws of one position (for inspection)."""
        self._require_fit()
        model = self._positions[position]
        return {
            "capacity": model.capacity_law,
            "throughput": model.throughput_law,
            "width": model.width_law,
        }
