"""Feature extraction for AutoPower's sub-models.

Three feature families, matching the paper's inputs:

* **hardware features** ``H`` — the component's Table III parameters,
* **event features** ``E`` — per-cycle rates of the component's events
  (plus global IPC), from the performance simulator,
* **program features** — microarchitecture-independent properties of the
  workload (instruction mix, footprints, entropy).  The paper adds these
  to the SRAM activity model to compensate for performance-simulator
  inaccuracy.
"""

from __future__ import annotations

import numpy as np

from repro.arch.components import component_by_name
from repro.arch.config import BoomConfig
from repro.arch.events import COMPONENT_EVENTS, EventBatch, EventParams
from repro.arch.workloads import Workload

__all__ = [
    "event_feature_names",
    "event_features",
    "event_features_batch",
    "hardware_feature_names",
    "hardware_features",
    "program_feature_names",
    "program_features",
    "program_features_matrix",
]

_PROGRAM_FEATURE_NAMES: tuple[str, ...] = (
    "prog_instructions",
    "prog_branches",
    "prog_loads",
    "prog_stores",
    "prog_fp_ops",
    "prog_mul_ops",
    "prog_branch_entropy",
    "prog_locality",
    "prog_icache_footprint",
    "prog_dcache_footprint",
    "prog_ilp",
)


def hardware_feature_names(component: str) -> tuple[str, ...]:
    """Names of the H features of one component (Table III order)."""
    return component_by_name(component).hardware_parameters


def hardware_features(config: BoomConfig, component: str) -> np.ndarray:
    """H feature vector of one component for one configuration."""
    return config.vector(hardware_feature_names(component))


def polynomial_hardware_feature_names(component: str) -> tuple[str, ...]:
    """Names for :func:`polynomial_hardware_features`."""
    params = hardware_feature_names(component)
    names = list(params)
    for i in range(len(params)):
        for j in range(i, len(params)):
            names.append(f"{params[i]}*{params[j]}")
    return tuple(names)


def polynomial_hardware_features(config: BoomConfig, component: str) -> np.ndarray:
    """H features expanded with degree-2 products (for the linear models).

    Real structures routinely scale with *products* of parameters (ports x
    entries, width x depth); a generic quadratic expansion lets the ridge
    sub-models represent them without any design-specific knowledge.
    """
    base = hardware_features(config, component)
    products = [
        base[i] * base[j]
        for i in range(base.size)
        for j in range(i, base.size)
    ]
    return np.concatenate([base, products])


def event_feature_names(
    component: str, include_raw: bool = True, normalized: bool = True
) -> tuple[str, ...]:
    """Names of the E features of one component.

    Raw per-cycle rates, the same rates normalized by each of the
    component's hardware parameters (utilization-style features — events
    per hardware lane/entry, which generalize across machine widths), and
    global IPC.
    """
    event_names = COMPONENT_EVENTS[component]
    params = hardware_feature_names(component)
    names: list[str] = []
    if include_raw:
        names.extend(f"rate_{n}" for n in event_names)
    if normalized:
        for n in event_names:
            for p in params:
                names.append(f"rate_{n}/{p}")
    names.append("ipc")
    return tuple(names)


def event_features(
    events: EventParams,
    component: str,
    config: BoomConfig | None = None,
    include_raw: bool = True,
) -> np.ndarray:
    """E feature vector: raw rates, per-parameter-normalized rates, IPC.

    When ``config`` is omitted only the raw rates and IPC are emitted
    (no parameter values to normalize by).  ``include_raw=False`` keeps
    only the scale-free normalized rates — the right diet for sub-models
    whose targets are rates rather than absolute power.
    """
    rates = events.rates_for_component(component)
    event_names = COMPONENT_EVENTS[component]
    if config is None and not include_raw:
        raise ValueError("normalized-only features require a config")
    values: list[float] = []
    if include_raw or config is None:
        values.extend(rates[n] for n in event_names)
    if config is not None:
        params = hardware_feature_names(component)
        for n in event_names:
            for p in params:
                values.append(rates[n] / max(float(config[p]), 1.0))
    values.append(events.ipc)
    return np.array(values, dtype=float)


def event_features_batch(
    events: EventBatch,
    component: str,
    config: BoomConfig | None = None,
    include_raw: bool = True,
) -> np.ndarray:
    """Batched :func:`event_features`: one row per interval.

    Column order (and the per-element arithmetic) matches the scalar
    extractor exactly, so batch predictions reproduce per-interval
    predictions bit for bit.
    """
    rates = events.rates_for_component(component)
    event_names = COMPONENT_EVENTS[component]
    if config is None and not include_raw:
        raise ValueError("normalized-only features require a config")
    columns: list[np.ndarray] = []
    if include_raw or config is None:
        columns.extend(rates[n] for n in event_names)
    if config is not None:
        params = hardware_feature_names(component)
        for n in event_names:
            for p in params:
                columns.append(rates[n] / max(float(config[p]), 1.0))
    columns.append(events.ipc)
    return np.column_stack(columns)


def program_feature_names() -> tuple[str, ...]:
    return _PROGRAM_FEATURE_NAMES


def program_features(workload: Workload) -> np.ndarray:
    """Program-level feature vector (immune to perf-simulator error)."""
    feats = workload.program_features()
    return np.array([feats[n] for n in _PROGRAM_FEATURE_NAMES], dtype=float)


def program_features_matrix(workload, n_rows: int) -> np.ndarray:
    """Program features for a batch: one workload (tiled) or one per row."""
    if isinstance(workload, Workload):
        return np.tile(program_features(workload), (n_rows, 1))
    workloads = list(workload)
    if len(workloads) != n_rows:
        raise ValueError(
            f"got {len(workloads)} workloads for a batch of {n_rows} intervals"
        )
    return np.stack([program_features(w) for w in workloads])
