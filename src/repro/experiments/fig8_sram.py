"""Fig. 8: SRAM power — AutoPower vs AutoPower− (per component).

The paper's hierarchy-based SRAM model (scaling-law hardware model +
activity model + macro mapping) against a direct per-component ML
regression.  Reported: MAPE 7.60 %, R 0.94 with 2 known configurations,
with the hardware model predicting block shapes at near-zero error.
"""

from __future__ import annotations

from repro.experiments.fig7_clock import GroupComparisonResult, _compare_group
from repro.experiments.tables import format_table
from repro.vlsi.flow import VlsiFlow

__all__ = ["main", "run"]


def run(flow: VlsiFlow | None = None, n_train: int = 2) -> GroupComparisonResult:
    """Fig. 8 SRAM-group comparison with ``n_train`` known configs."""
    if flow is None:
        flow = VlsiFlow()
    return _compare_group(flow, "sram", n_train)


def main() -> None:
    result = run()
    print(
        format_table(
            ["component", "AutoPower MAPE %", "AutoPower- MAPE %"],
            result.rows(),
            title=f"Fig. 8 — SRAM power accuracy ({result.n_train} known configs)",
        )
    )
    print(
        f"\noverall R: AutoPower {result.overall_pearson[0]:.3f}, "
        f"AutoPower- {result.overall_pearson[1]:.3f}; "
        f"AutoPower wins {result.components_won}/{len(result.per_component)} components"
    )


if __name__ == "__main__":
    main()
