"""Minimal fixed-width text-table rendering for experiment output."""

from __future__ import annotations

__all__ = ["format_table"]


def format_table(
    headers: list[str], rows: list[list], title: str | None = None
) -> str:
    """Render a list-of-rows as a fixed-width text table.

    Floats are formatted with 3 significant decimals; everything else via
    ``str``.
    """
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
