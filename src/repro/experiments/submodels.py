"""Sub-model accuracy (paper Sec. III-B3 / III-B4 claims).

* register count R and gating rate g: "a low MAPE on average with 6.93 %
  with 2 known configurations",
* SRAM block hardware model: "nearly 0 MAPE" on block information.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.components import COMPONENTS
from repro.arch.workloads import WORKLOADS
from repro.experiments.runner import fit_method, test_configs_for, train_configs_for
from repro.experiments.tables import format_table
from repro.ml.metrics import mape
from repro.vlsi.flow import VlsiFlow

__all__ = ["SubmodelResult", "main", "run"]


@dataclass
class SubmodelResult:
    """MAPE of the structural sub-models on unseen configurations."""

    n_train: int
    register_count_mape: dict[str, float]
    gating_rate_mape: dict[str, float]
    block_width_mape: dict[str, float]
    block_depth_mape: dict[str, float]
    block_count_mape: dict[str, float]

    @property
    def mean_register_count_mape(self) -> float:
        return float(np.mean(list(self.register_count_mape.values())))

    @property
    def mean_gating_rate_mape(self) -> float:
        return float(np.mean(list(self.gating_rate_mape.values())))

    @property
    def mean_reg_and_gate_mape(self) -> float:
        """The paper's combined R & g number (6.93 % at 2 configs)."""
        return 0.5 * (self.mean_register_count_mape + self.mean_gating_rate_mape)

    @property
    def mean_block_mape(self) -> float:
        values = (
            list(self.block_width_mape.values())
            + list(self.block_depth_mape.values())
            + list(self.block_count_mape.values())
        )
        return float(np.mean(values))

    def rows(self) -> list[list]:
        rows = []
        for name in self.register_count_mape:
            rows.append(
                ["R/g", name, self.register_count_mape[name], self.gating_rate_mape[name]]
            )
        for name in self.block_width_mape:
            rows.append(
                [
                    "block",
                    name,
                    self.block_width_mape[name],
                    self.block_depth_mape[name],
                ]
            )
        return rows


def run(
    flow: VlsiFlow | None = None, n_train: int = 2, n_jobs: int | None = None
) -> SubmodelResult:
    """Evaluate R, g and SRAM-block predictions on unseen configurations."""
    if flow is None:
        flow = VlsiFlow()
    train = train_configs_for(n_train)
    test = test_configs_for(n_train)
    model = fit_method("autopower", flow, train, list(WORKLOADS), n_jobs=n_jobs)

    reg_mape: dict[str, float] = {}
    gate_mape: dict[str, float] = {}
    for comp in COMPONENTS:
        r_true, r_pred, g_true, g_pred = [], [], [], []
        for config in test:
            net = flow.netlist(config).component(comp.name)
            r_true.append(net.registers)
            r_pred.append(model.clock_model.predict_register_count(comp.name, config))
            g_true.append(net.gating_rate)
            g_pred.append(model.clock_model.predict_gating_rate(comp.name, config))
        reg_mape[comp.name] = mape(r_true, r_pred)
        gate_mape[comp.name] = mape(g_true, g_pred)

    width_mape: dict[str, float] = {}
    depth_mape: dict[str, float] = {}
    count_mape: dict[str, float] = {}
    for position in model.sram_model.position_names:
        w_true, w_pred, d_true, d_pred, c_true, c_pred = [], [], [], [], [], []
        component = model.sram_model._positions[position].component
        for config in test:
            block_true = flow.design(config).component(component).position(position).block
            block_pred = model.sram_model.predict_block(position, config)
            w_true.append(block_true.width)
            w_pred.append(block_pred.width)
            d_true.append(block_true.depth)
            d_pred.append(block_pred.depth)
            c_true.append(block_true.count)
            c_pred.append(block_pred.count)
        width_mape[position] = mape(w_true, w_pred)
        depth_mape[position] = mape(d_true, d_pred)
        count_mape[position] = mape(c_true, c_pred)

    return SubmodelResult(
        n_train=n_train,
        register_count_mape=reg_mape,
        gating_rate_mape=gate_mape,
        block_width_mape=width_mape,
        block_depth_mape=depth_mape,
        block_count_mape=count_mape,
    )


def main() -> None:
    result = run()
    print(
        format_table(
            ["kind", "name", "MAPE-1 %", "MAPE-2 %"],
            result.rows(),
            title=(
                "Sub-model accuracy (R/g rows: register count / gating rate; "
                "block rows: width / depth)"
            ),
        )
    )
    print(
        f"\nmean R&g MAPE: {result.mean_reg_and_gate_mape:.2f}% "
        f"(paper: 6.93% @ 2 configs); "
        f"mean SRAM block MAPE: {result.mean_block_mape:.3f}% (paper: ~0)"
    )


if __name__ == "__main__":
    main()
