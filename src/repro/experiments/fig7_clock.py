"""Fig. 7: clock power — AutoPower vs AutoPower− (per component).

The paper compares its structured clock model (register count x gating
rate x effective active rate, Eq. 7) against directly regressing clock
power per component with an ML model (AutoPower−).  Reported: AutoPower
reaches MAPE 11.37 % and correlation R 0.93 on the clock group with 2
known configurations, beating AutoPower− for most components.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.arch.components import COMPONENTS
from repro.arch.workloads import WORKLOADS
from repro.experiments.runner import fit_method, test_configs_for, train_configs_for
from repro.experiments.tables import format_table
from repro.ml.metrics import mape, pearson_r
from repro.vlsi.flow import VlsiFlow

__all__ = ["GroupComparisonResult", "main", "run"]


@dataclass
class GroupComparisonResult:
    """Per-component and overall group accuracy of both methods."""

    group: str
    n_train: int
    per_component: dict[str, tuple[float, float]]  # name -> (AutoPower, AutoPower-)
    overall_mape: tuple[float, float]
    overall_pearson: tuple[float, float]

    def rows(self) -> list[list]:
        rows = [
            [name, ours, minus]
            for name, (ours, minus) in self.per_component.items()
        ]
        rows.append(["OVERALL", self.overall_mape[0], self.overall_mape[1]])
        return rows

    @property
    def components_won(self) -> int:
        """Components where AutoPower beats AutoPower− on MAPE."""
        return sum(1 for ours, minus in self.per_component.values() if ours < minus)


def _compare_group(flow: VlsiFlow, group: str, n_train: int) -> GroupComparisonResult:
    train = train_configs_for(n_train)
    test = test_configs_for(n_train)
    workloads = list(WORKLOADS)
    ours = fit_method("autopower", flow, train, workloads)
    minus = fit_method("autopower-minus", flow, train, workloads)

    per_component: dict[str, tuple[float, float]] = {}
    all_true, all_ours, all_minus = [], [], []
    for comp in COMPONENTS:
        y_true, y_ours, y_minus = [], [], []
        for config in test:
            for workload in workloads:
                res = flow.run(config, workload)
                truth = res.power.component(comp.name).group(group)
                if truth <= 1e-9:
                    continue
                y_true.append(truth)
                if group == "clock":
                    y_ours.append(
                        ours.clock_model.predict_component(
                            comp.name, config, res.events
                        )
                    )
                else:
                    y_ours.append(
                        ours.sram_model.predict_component(
                            comp.name, config, res.events, workload
                        )
                    )
                y_minus.append(
                    minus.predict_component_group(
                        comp.name, group, config, res.events, workload
                    )
                )
        if not y_true:
            continue
        per_component[comp.name] = (mape(y_true, y_ours), mape(y_true, y_minus))
        all_true.extend(y_true)
        all_ours.extend(y_ours)
        all_minus.extend(y_minus)

    # Overall series: group total per (config, workload).
    tot_true, tot_ours, tot_minus = [], [], []
    for config in test:
        for workload in workloads:
            res = flow.run(config, workload)
            tot_true.append(res.power.group_total(group))
            if group == "clock":
                tot_ours.append(
                    sum(
                        ours.clock_model.predict_component(c.name, config, res.events)
                        for c in COMPONENTS
                    )
                )
            else:
                tot_ours.append(
                    sum(ours.sram_model.predict(config, res.events, workload).values())
                )
            tot_minus.append(minus.predict_group(config, res.events, workload, group))
    return GroupComparisonResult(
        group=group,
        n_train=n_train,
        per_component=per_component,
        overall_mape=(mape(tot_true, tot_ours), mape(tot_true, tot_minus)),
        overall_pearson=(
            pearson_r(tot_true, tot_ours),
            pearson_r(tot_true, tot_minus),
        ),
    )


def run(flow: VlsiFlow | None = None, n_train: int = 2) -> GroupComparisonResult:
    """Fig. 7 clock-group comparison with ``n_train`` known configs."""
    if flow is None:
        flow = VlsiFlow()
    return _compare_group(flow, "clock", n_train)


def main() -> None:
    result = run()
    print(
        format_table(
            ["component", "AutoPower MAPE %", "AutoPower- MAPE %"],
            result.rows(),
            title=f"Fig. 7 — clock power accuracy ({result.n_train} known configs)",
        )
    )
    print(
        f"\noverall R: AutoPower {result.overall_pearson[0]:.3f}, "
        f"AutoPower- {result.overall_pearson[1]:.3f}; "
        f"AutoPower wins {result.components_won}/{len(result.per_component)} components"
    )


if __name__ == "__main__":
    main()
