"""Shared experiment infrastructure: splits, method resolution, evaluation.

The paper trains on a handful of *known* configurations and evaluates on
the remaining ones across all eight riscv-tests workloads.  ``TRAIN_SETS``
fixes the training configurations per budget (spread across the scale
range, smallest and largest always included, as a practicing architect
would pick known designs).

Methods resolve exclusively through the :mod:`repro.api` registry — the
evaluation below drives every model through the ``PowerModel`` protocol
(``predict_totals`` over one event batch per test configuration) with no
per-method branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro.api as api
from repro.arch.config import BOOM_CONFIGS, BoomConfig, config_by_name
from repro.arch.workloads import WORKLOADS, Workload
from repro.ml.metrics import mape, pearson_r, r2_score
from repro.vlsi.flow import VlsiFlow

__all__ = [
    "AccuracyResult",
    "METHOD_NAMES",
    "MethodAccuracy",
    "TRAIN_SETS",
    "evaluate_methods",
    "fit_method",
    "test_configs_for",
    "train_configs_for",
]

# Training configurations per budget (paper: 2 and 3 known configs for the
# headline results; Fig. 6 sweeps the count).
TRAIN_SETS: dict[int, tuple[str, ...]] = {
    2: ("C1", "C15"),
    3: ("C1", "C8", "C15"),
    4: ("C1", "C5", "C10", "C15"),
    5: ("C1", "C4", "C8", "C12", "C15"),
    6: ("C1", "C4", "C7", "C10", "C13", "C15"),
}

METHOD_NAMES: tuple[str, ...] = (
    "AutoPower",
    "McPAT-Calib",
    "McPAT-Calib+Comp",
    "AutoPower-",
)


def train_configs_for(n_train: int) -> list[BoomConfig]:
    """The training configurations for a given budget."""
    try:
        names = TRAIN_SETS[n_train]
    except KeyError:
        raise KeyError(
            f"no training set for {n_train} configs; available: {sorted(TRAIN_SETS)}"
        ) from None
    return [config_by_name(name) for name in names]


def test_configs_for(n_train: int) -> list[BoomConfig]:
    """All configurations not used for training at this budget."""
    train_names = set(TRAIN_SETS[n_train])
    return [c for c in BOOM_CONFIGS if c.name not in train_names]


@dataclass
class MethodAccuracy:
    """Accuracy of one method on the test set."""

    method: str
    y_true: np.ndarray
    y_pred: np.ndarray
    labels: list[tuple[str, str]] = field(default_factory=list)

    @property
    def mape(self) -> float:
        return mape(self.y_true, self.y_pred)

    @property
    def r2(self) -> float:
        return r2_score(self.y_true, self.y_pred)

    @property
    def pearson(self) -> float:
        return pearson_r(self.y_true, self.y_pred)

    def scatter_points(self) -> list[tuple[str, str, float, float]]:
        """(config, workload, golden, predicted) — the paper's Fig. 4/5
        scatter, with points of the same configuration sharing a color."""
        return [
            (cfg, wl, float(t), float(p))
            for (cfg, wl), t, p in zip(self.labels, self.y_true, self.y_pred)
        ]


@dataclass
class AccuracyResult:
    """Accuracy of several methods under one training budget."""

    n_train: int
    train_names: tuple[str, ...]
    methods: dict[str, MethodAccuracy]

    def rows(self) -> list[list]:
        return [
            [name, acc.mape, acc.r2, acc.pearson]
            for name, acc in self.methods.items()
        ]


def fit_method(
    name: str, flow: VlsiFlow, train_configs, workloads, n_jobs: int | None = None,
    **kwargs,
):
    """Construct and fit one method through the :mod:`repro.api` registry.

    ``name`` is a registry name or alias (the historical display names in
    ``METHOD_NAMES`` resolve).  ``n_jobs`` parallelizes the sub-model fits
    of the methods that decompose into independent tasks; the monolithic
    baselines ignore it.  Extra keyword arguments reach the method's
    constructor (e.g. ``use_program_features=False``).
    """
    return api.fit(
        name,
        flow=flow,
        train_configs=train_configs,
        workloads=workloads,
        n_jobs=n_jobs,
        **kwargs,
    )


def evaluate_methods(
    flow: VlsiFlow | None = None,
    n_train: int = 2,
    methods: tuple[str, ...] = METHOD_NAMES,
    workloads: tuple[Workload, ...] | None = None,
    n_jobs: int | None = None,
) -> AccuracyResult:
    """Fit the requested methods and evaluate total-power accuracy.

    Returns per-method MAPE / R² / Pearson R over (test configs x
    workloads), plus the raw scatter points for figure regeneration.
    ``n_jobs`` parallelizes ground-truth generation and the decomposed
    sub-model fits; the numbers are backend-independent.
    """
    if flow is None:
        flow = VlsiFlow()
    if workloads is None:
        workloads = WORKLOADS
    train = train_configs_for(n_train)
    test = test_configs_for(n_train)
    # One parallel sweep generates every flow run (train + test ground
    # truth) the rest of this function consumes from cache.
    flow.run_many(train + test, list(workloads), n_jobs=n_jobs)
    fitted = {
        name: fit_method(name, flow, train, list(workloads), n_jobs=n_jobs)
        for name in methods
    }

    results: dict[str, MethodAccuracy] = {}
    labels = [(c.name, w.name) for c in test for w in workloads]
    y_true = np.array(
        [flow.run(c, w).power.total for c in test for w in workloads]
    )
    events_by_config = {
        c.name: [flow.run(c, w).events for w in workloads] for c in test
    }
    for name, model in fitted.items():
        # Every method satisfies the PowerModel protocol: one batched
        # predict_totals call per test configuration, no method branches.
        y_pred = np.concatenate(
            [
                np.asarray(
                    model.predict_totals(
                        c, events_by_config[c.name], list(workloads)
                    ),
                    dtype=float,
                )
                for c in test
            ]
        )
        results[name] = MethodAccuracy(
            method=name, y_true=y_true, y_pred=y_pred, labels=list(labels)
        )
    return AccuracyResult(
        n_train=n_train,
        train_names=TRAIN_SETS[n_train],
        methods=results,
    )
