"""Ablation: microarchitecture-independent program features.

The paper argues that performance-simulator inaccuracy is a root cause of
ML power-model error, and adds program-level features (branch counts,
footprints, ...) that the simulator cannot distort.  This ablation trains
AutoPower's SRAM activity model with and without program features, and
also sweeps the simulator's error magnitude to show where the features
matter most.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.arch.workloads import WORKLOADS
from repro.experiments.runner import fit_method, test_configs_for, train_configs_for
from repro.experiments.tables import format_table
from repro.ml.metrics import mape
from repro.sim.perf import PerfSimulator
from repro.vlsi.flow import VlsiFlow

__all__ = ["AblationResult", "main", "run"]


@dataclass
class AblationResult:
    """SRAM-group MAPE with/without program features per simulator error."""

    rows_: list[tuple[float, float, float]]
    # (simulator bias magnitude, MAPE with features, MAPE without)

    def rows(self) -> list[list]:
        return [[b, w, wo, wo - w] for b, w, wo in self.rows_]


def _sram_mape(flow: VlsiFlow, use_program_features: bool, n_train: int) -> float:
    train = train_configs_for(n_train)
    test = test_configs_for(n_train)
    workloads = list(WORKLOADS)
    model = fit_method(
        "autopower", flow, train, workloads,
        use_program_features=use_program_features,
    )
    y_true, y_pred = [], []
    for config in test:
        for workload in workloads:
            res = flow.run(config, workload)
            y_true.append(res.power.group_total("sram"))
            y_pred.append(
                sum(model.sram_model.predict(config, res.events, workload).values())
            )
    return mape(y_true, y_pred)


def run(
    bias_magnitudes: tuple[float, ...] = (0.0, 0.07, 0.15),
    n_train: int = 2,
) -> AblationResult:
    """Sweep perf-simulator bias; compare with/without program features."""
    rows = []
    for bias in bias_magnitudes:
        flow = VlsiFlow(perf=PerfSimulator(bias_magnitude=bias))
        with_feats = _sram_mape(flow, True, n_train)
        without_feats = _sram_mape(flow, False, n_train)
        rows.append((bias, with_feats, without_feats))
    return AblationResult(rows_=rows)


def main() -> None:
    result = run()
    print(
        format_table(
            ["sim bias", "MAPE with prog feats %", "MAPE without %", "delta %"],
            result.rows(),
            title="Ablation — program-level features vs simulator error (SRAM group)",
        )
    )


if __name__ == "__main__":
    main()
