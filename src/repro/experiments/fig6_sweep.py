"""Fig. 6: accuracy vs number of known configurations for training.

The paper sweeps the training budget and shows AutoPower consistently
below McPAT-Calib and McPAT-Calib + Component in MAPE (and above in R²),
with the gap narrowing as configurations are added.  This experiment
regenerates the same series.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import AccuracyResult, evaluate_methods
from repro.experiments.tables import format_table
from repro.vlsi.flow import VlsiFlow

__all__ = ["SweepResult", "main", "run"]

_SWEEP_METHODS = ("AutoPower", "McPAT-Calib", "McPAT-Calib+Comp")


@dataclass
class SweepResult:
    """Per-budget accuracy of each method (the Fig. 6 series)."""

    budgets: tuple[int, ...]
    results: dict[int, AccuracyResult]

    def series(self, method: str, metric: str = "mape") -> list[float]:
        """One curve of the figure: metric vs training budget."""
        out = []
        for n in self.budgets:
            acc = self.results[n].methods[method]
            out.append(getattr(acc, metric))
        return out

    def rows(self) -> list[list]:
        rows = []
        for n in self.budgets:
            for method, acc in self.results[n].methods.items():
                rows.append([n, method, acc.mape, acc.r2])
        return rows


def run(
    flow: VlsiFlow | None = None,
    budgets: tuple[int, ...] = (2, 3, 4, 5, 6),
    methods: tuple[str, ...] = _SWEEP_METHODS,
) -> SweepResult:
    """Sweep the number of training configurations."""
    if flow is None:
        flow = VlsiFlow()
    results = {
        n: evaluate_methods(flow=flow, n_train=n, methods=methods) for n in budgets
    }
    return SweepResult(budgets=tuple(budgets), results=results)


def main() -> None:
    result = run()
    print(
        format_table(
            ["#configs", "method", "MAPE %", "R2"],
            result.rows(),
            title="Fig. 6 — accuracy vs number of known configurations",
        )
    )


if __name__ == "__main__":
    main()
