"""Extension experiment: generalization to *unseen workloads*.

The paper evaluates on the same eight workloads it trains with (per
configuration).  A natural follow-up question for adopters: does the
few-shot model transfer to programs it never saw?  This experiment holds
out workloads (not configurations): train on 2 configurations x 6
workloads, then predict the 2 held-out workloads on the 13 unseen
configurations — the hardest cell of the generalization matrix.

AutoPower's structural sub-models (register count, gating rate, scaling
laws) are workload-independent, so only the activity-style GBMs face the
shift; the direct-ML baseline must extrapolate everything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.workloads import WORKLOADS
from repro.experiments.runner import fit_method, test_configs_for, train_configs_for
from repro.experiments.tables import format_table
from repro.ml.metrics import mape, r2_score
from repro.vlsi.flow import VlsiFlow

__all__ = ["HoldoutResult", "main", "run"]

_DEFAULT_HOLDOUT = ("qsort", "vvadd")


@dataclass
class HoldoutResult:
    """Accuracy on configurations x workloads that are both unseen."""

    holdout_workloads: tuple[str, ...]
    autopower_mape: float
    autopower_r2: float
    minus_mape: float
    minus_r2: float

    def rows(self) -> list[list]:
        return [
            ["AutoPower", self.autopower_mape, self.autopower_r2],
            ["AutoPower-", self.minus_mape, self.minus_r2],
        ]


def run(
    flow: VlsiFlow | None = None,
    holdout: tuple[str, ...] = _DEFAULT_HOLDOUT,
    n_train: int = 2,
) -> HoldoutResult:
    """Train without the held-out workloads; evaluate only on them."""
    if flow is None:
        flow = VlsiFlow()
    held = set(holdout)
    unknown = held - {w.name for w in WORKLOADS}
    if unknown:
        raise KeyError(f"unknown holdout workloads: {sorted(unknown)}")
    train_workloads = [w for w in WORKLOADS if w.name not in held]
    test_workloads = [w for w in WORKLOADS if w.name in held]
    if not train_workloads or not test_workloads:
        raise ValueError("holdout must leave both train and test workloads")

    train = train_configs_for(n_train)
    test = test_configs_for(n_train)
    ours = fit_method("autopower", flow, train, train_workloads)
    minus = fit_method("autopower-minus", flow, train, train_workloads)

    y_true, y_ours, y_minus = [], [], []
    for config in test:
        for workload in test_workloads:
            res = flow.run(config, workload)
            y_true.append(res.power.total)
            y_ours.append(ours.predict_total(config, res.events, workload))
            y_minus.append(minus.predict_total(config, res.events, workload))
    return HoldoutResult(
        holdout_workloads=tuple(sorted(held)),
        autopower_mape=mape(y_true, y_ours),
        autopower_r2=r2_score(y_true, y_ours),
        minus_mape=mape(y_true, y_minus),
        minus_r2=r2_score(y_true, y_minus),
    )


def main() -> None:
    result = run()
    print(
        format_table(
            ["method", "MAPE %", "R2"],
            result.rows(),
            title=(
                "Extension — unseen workloads "
                f"({', '.join(result.holdout_workloads)}) on unseen configs"
            ),
        )
    )


if __name__ == "__main__":
    main()
