"""Figs. 4 and 5: end-to-end accuracy with 2 / 3 known configurations.

Paper numbers: with 2 configs AutoPower reaches MAPE 4.36 % / R² 0.96 vs
McPAT-Calib 9.29 % / 0.87; with 3 configs 3.64 % / 0.97 vs 7.07 % / 0.91.
The absolute values on our synthetic substrate differ; the comparison
shape (AutoPower clearly ahead on both metrics, both improving with more
training configs) is the reproduction target.
"""

from __future__ import annotations

from repro.experiments.runner import AccuracyResult, evaluate_methods
from repro.experiments.tables import format_table
from repro.vlsi.flow import VlsiFlow

__all__ = ["main", "run"]


def run(
    flow: VlsiFlow | None = None,
    n_train: int = 2,
    methods: tuple[str, ...] = ("AutoPower", "McPAT-Calib"),
) -> AccuracyResult:
    """Fig. 4 (n_train=2) or Fig. 5 (n_train=3) accuracy comparison."""
    return evaluate_methods(flow=flow, n_train=n_train, methods=methods)


def main() -> None:
    flow = VlsiFlow()
    for n_train, fig in ((2, "Fig. 4"), (3, "Fig. 5")):
        result = run(flow, n_train=n_train)
        print(
            format_table(
                ["method", "MAPE %", "R2", "R"],
                result.rows(),
                title=(
                    f"{fig} — accuracy with {n_train} known configurations "
                    f"(train: {', '.join(result.train_names)})"
                ),
            )
        )
        print()


if __name__ == "__main__":
    main()
