"""Table IV: time-based power-trace prediction for large workloads.

GEMM and SPMM run for millions of cycles; power is predicted per 50-cycle
window by a model trained *only* on the average power of two known
configurations — no trace-level tuning (paper Sec. III-B5).  Reported
metrics per (workload, config): percentage error of the maximum power, of
the minimum power, and the average per-window error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import config_by_name
from repro.arch.workloads import LARGE_WORKLOADS, WORKLOADS
from repro.experiments.runner import fit_method
from repro.experiments.tables import format_table
from repro.power.trace import golden_trace_power
from repro.sim.trace import WindowTraceGenerator
from repro.vlsi.flow import VlsiFlow

__all__ = ["TraceResult", "TraceRow", "main", "run"]


@dataclass(frozen=True)
class TraceRow:
    """One (workload, config) cell block of Table IV."""

    workload: str
    config: str
    n_windows: int
    max_power_error: float
    min_power_error: float
    average_error: float


@dataclass
class TraceResult:
    """All Table IV rows."""

    n_train: int
    rows_: list[TraceRow]

    def rows(self) -> list[list]:
        return [
            [r.workload, r.config, r.n_windows, r.max_power_error,
             r.min_power_error, r.average_error]
            for r in self.rows_
        ]

    def worst_average_error(self) -> float:
        return max(r.average_error for r in self.rows_)


def run(
    flow: VlsiFlow | None = None,
    configs: tuple[str, ...] = ("C2", "C3", "C4"),
    max_windows: int | None = None,
    n_anchors: int = 49,
) -> TraceResult:
    """Predict GEMM / SPMM power traces on the given configurations.

    ``max_windows`` subsamples the trace for fast tests; ``None`` keeps
    the full millions-of-cycles trace (tens of thousands of windows).
    """
    if flow is None:
        flow = VlsiFlow()
    train = [config_by_name("C1"), config_by_name("C15")]
    model = fit_method("autopower", flow, train, list(WORKLOADS))
    generator = WindowTraceGenerator(window_cycles=50)

    rows: list[TraceRow] = []
    for workload in LARGE_WORKLOADS:
        for config_name in configs:
            config = config_by_name(config_name)
            trace = generator.generate(config, workload, max_windows=max_windows)
            golden = golden_trace_power(
                flow, config, workload, trace.scales, n_anchors=n_anchors
            )
            events = flow.run(config, workload).events
            predicted = model.predict_trace(
                config,
                events,
                workload,
                trace.scales,
                window_cycles=trace.window_cycles,
                n_anchors=n_anchors,
            )
            max_err = abs(predicted.max() - golden.max()) / golden.max() * 100.0
            min_err = abs(predicted.min() - golden.min()) / golden.min() * 100.0
            avg_err = float(np.mean(np.abs(predicted - golden) / golden)) * 100.0
            rows.append(
                TraceRow(
                    workload=workload.name.upper(),
                    config=config_name,
                    n_windows=trace.n_windows,
                    max_power_error=max_err,
                    min_power_error=min_err,
                    average_error=avg_err,
                )
            )
    return TraceResult(n_train=2, rows_=rows)


def main() -> None:
    result = run()
    print(
        format_table(
            ["workload", "config", "#windows", "max err %", "min err %", "avg err %"],
            result.rows(),
            title=(
                "Table IV — time-based power-trace prediction "
                "(50-cycle windows, trained on 2 configs, no trace tuning)"
            ),
        )
    )


if __name__ == "__main__":
    main()
