"""Fig. 1, Observation 1: clock and SRAM dominate total power.

The paper's framework figure shows the power percentage of each power
group of the BOOM CPU measured at layout stage.  This experiment computes
the group breakdown of golden power averaged over all 15 configurations
and 8 workloads, and per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import BOOM_CONFIGS
from repro.arch.workloads import WORKLOADS
from repro.experiments.tables import format_table
from repro.power.report import POWER_GROUPS
from repro.vlsi.flow import VlsiFlow

__all__ = ["BreakdownResult", "main", "run"]


@dataclass
class BreakdownResult:
    """Average power-group shares, overall and per configuration."""

    overall: dict[str, float]
    per_config: dict[str, dict[str, float]]

    @property
    def clock_plus_sram(self) -> float:
        return self.overall["clock"] + self.overall["sram"]

    def rows(self) -> list[list]:
        rows = [
            ["overall"] + [self.overall[g] * 100.0 for g in POWER_GROUPS]
        ]
        for config_name, shares in self.per_config.items():
            rows.append([config_name] + [shares[g] * 100.0 for g in POWER_GROUPS])
        return rows


def run(flow: VlsiFlow | None = None) -> BreakdownResult:
    """Compute golden power-group shares across configs and workloads."""
    if flow is None:
        flow = VlsiFlow()
    per_config: dict[str, dict[str, float]] = {}
    for config in BOOM_CONFIGS:
        shares = []
        for workload in WORKLOADS:
            report = flow.run(config, workload).power
            breakdown = report.breakdown()
            shares.append([breakdown[g] for g in POWER_GROUPS])
        mean = np.mean(np.array(shares), axis=0)
        per_config[config.name] = dict(zip(POWER_GROUPS, map(float, mean)))
    overall = {
        g: float(np.mean([per_config[c][g] for c in per_config]))
        for g in POWER_GROUPS
    }
    return BreakdownResult(overall=overall, per_config=per_config)


def main() -> None:
    result = run()
    print(
        format_table(
            ["config", "clock %", "sram %", "register %", "comb %"],
            result.rows(),
            title="Fig. 1 / Observation 1 — power-group breakdown (golden)",
        )
    )
    print(
        f"\nclock + SRAM share: {result.clock_plus_sram * 100.0:.1f}% "
        "(paper: these two groups dominate)"
    )


if __name__ == "__main__":
    main()
