"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(...) -> <Result dataclass>`` and a ``main()``
that prints the same rows/series the paper reports.  See DESIGN.md for the
experiment index and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from repro.experiments.runner import (
    TRAIN_SETS,
    AccuracyResult,
    MethodAccuracy,
    evaluate_methods,
    test_configs_for,
    train_configs_for,
)

__all__ = [
    "AccuracyResult",
    "MethodAccuracy",
    "TRAIN_SETS",
    "evaluate_methods",
    "test_configs_for",
    "train_configs_for",
]
