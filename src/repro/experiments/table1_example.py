"""Table I walk-through: the IFU metadata table's scaling laws.

The paper's worked example: training on C1 and C15, the hardware model
finds Capacity = 240 * FetchWidth * DecodeWidth, Throughput/Width =
30 * FetchWidth, hence Count = 1 and Depth = 8 * DecodeWidth.  This
experiment runs the detector on the ``meta`` position and reports the
fitted formulations plus the resulting shape predictions for all 15
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import BOOM_CONFIGS, config_by_name
from repro.arch.workloads import WORKLOADS
from repro.experiments.runner import fit_method
from repro.experiments.tables import format_table
from repro.vlsi.flow import VlsiFlow

__all__ = ["Table1Result", "main", "run"]


@dataclass
class Table1Result:
    """Fitted laws and per-config shape predictions for the meta table."""

    capacity_law: str
    throughput_law: str
    width_law: str
    shapes: dict[str, tuple[tuple[int, int, int], tuple[int, int, int]]]
    # config -> (true (w, d, count), predicted (w, d, count))

    @property
    def all_exact(self) -> bool:
        return all(true == pred for true, pred in self.shapes.values())

    def rows(self) -> list[list]:
        return [
            [name, f"{t[0]}x{t[1]}x{t[2]}", f"{p[0]}x{p[1]}x{p[2]}", t == p]
            for name, (t, p) in self.shapes.items()
        ]


def run(flow: VlsiFlow | None = None) -> Table1Result:
    """Fit the hardware model on C1/C15 and predict meta for all configs."""
    if flow is None:
        flow = VlsiFlow()
    train = [config_by_name("C1"), config_by_name("C15")]
    model = fit_method("autopower", flow, train, list(WORKLOADS))
    laws = model.sram_model.laws("meta")

    shapes = {}
    for config in BOOM_CONFIGS:
        block = flow.design(config).component("IFU").position("meta").block
        pred = model.sram_model.predict_block("meta", config)
        shapes[config.name] = (
            (block.width, block.depth, block.count),
            (pred.width, pred.depth, pred.count),
        )
    return Table1Result(
        capacity_law=laws["capacity"].describe(),
        throughput_law=laws["throughput"].describe(),
        width_law=laws["width"].describe(),
        shapes=shapes,
    )


def main() -> None:
    result = run()
    print("Table I — IFU metadata table, hardware model fitted on {C1, C15}")
    print(f"  Capacity   = {result.capacity_law}   (paper: 240 * FetchWidth * DecodeWidth)")
    print(f"  Throughput = {result.throughput_law}   (paper: 30 * FetchWidth)")
    print(f"  Width      = {result.width_law}   (paper: 30 * FetchWidth)")
    print()
    print(
        format_table(
            ["config", "true WxDxC", "predicted WxDxC", "exact"],
            result.rows(),
        )
    )
    print(f"\nall shapes exact: {result.all_exact}")


if __name__ == "__main__":
    main()
