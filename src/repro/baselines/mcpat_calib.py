"""McPAT-Calib baseline [Zhai et al., TCAD 2022].

McPAT-Calib feeds hardware parameters, event parameters and the analytical
McPAT estimate into an ML model (XGBoost in the original and in the
paper's comparison) that predicts total CPU power directly.  It is the
representative "data-hungry" ML baseline: with only 2-3 known
configurations its tree ensemble can only reproduce power levels it has
seen, which is precisely the failure mode the paper's Fig. 4-6 document.
"""

from __future__ import annotations

import numpy as np

from repro.arch.config import BoomConfig
from repro.arch.events import EVENT_NAMES, EventBatch, EventParams
from repro.arch.params import HARDWARE_PARAMETERS
from repro.baselines.mcpat import McPatAnalytical
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.serialize import gbm_from_dict, gbm_to_dict

__all__ = ["McPatCalib"]

_DEFAULT_GBM = {
    "n_estimators": 200,
    "learning_rate": 0.08,
    "max_depth": 3,
    "reg_lambda": 1.0,
}


class McPatCalib:
    """XGBoost-style calibration of the analytical McPAT model.

    Parameters
    ----------
    mcpat:
        The analytical model used as a feature source.
    gbm_params / random_state:
        Hyper-parameters of the boosted regression model.
    """

    def __init__(
        self,
        mcpat: McPatAnalytical | None = None,
        gbm_params: dict | None = None,
        random_state: int = 0,
    ) -> None:
        self.mcpat = mcpat if mcpat is not None else McPatAnalytical()
        self.gbm_params = dict(_DEFAULT_GBM if gbm_params is None else gbm_params)
        self.random_state = random_state
        self._model: GradientBoostingRegressor | None = None

    # ------------------------------------------------------------------
    def _features(self, config: BoomConfig, events: EventParams) -> np.ndarray:
        h = config.vector()
        rates = np.array(
            [events.counts[n] / events.cycles for n in EVENT_NAMES if n != "cycles"]
        )
        mcpat_total = self.mcpat.predict_total(config, events)
        return np.concatenate([h, rates, [events.ipc, mcpat_total]])

    def _features_batch(self, config: BoomConfig, batch: EventBatch) -> np.ndarray:
        """Batched :meth:`_features`: one row per interval, same columns."""
        n = len(batch)
        h = np.tile(config.vector(), (n, 1))
        cycles = batch.cycles
        rates = np.column_stack(
            [batch.column(name) / cycles for name in EVENT_NAMES if name != "cycles"]
        )
        mcpat_total = self.mcpat.predict_totals(config, batch)
        return np.hstack([h, rates, batch.ipc[:, None], mcpat_total[:, None]])

    @staticmethod
    def feature_names() -> tuple[str, ...]:
        rates = tuple(f"rate_{n}" for n in EVENT_NAMES if n != "cycles")
        return HARDWARE_PARAMETERS + rates + ("ipc", "mcpat_total")

    # ------------------------------------------------------------------
    def fit(self, flow, train_configs, workloads) -> McPatCalib:
        results = flow.run_many(list(train_configs), list(workloads))
        return self.fit_results(results)

    def fit_results(self, results: list) -> McPatCalib:
        if not results:
            raise ValueError("cannot fit on an empty result list")
        x = np.stack([self._features(r.config, r.events) for r in results])
        y = np.array([r.power.total for r in results])
        self._model = GradientBoostingRegressor(
            random_state=self.random_state, **self.gbm_params
        )
        self._model.fit(x, y)
        return self

    def predict_total(
        self, config: BoomConfig, events: EventParams, workload=None
    ) -> float:
        """Predicted total power, in mW (workload arg for API uniformity)."""
        if self._model is None:
            raise RuntimeError("McPatCalib used before fit")
        x = self._features(config, events).reshape(1, -1)
        return max(float(self._model.predict(x)[0]), 0.0)

    def predict_totals(self, config: BoomConfig, events, workload=None) -> np.ndarray:
        """Per-interval total power for a batch, in mW (one fused GBM pass)."""
        if self._model is None:
            raise RuntimeError("McPatCalib used before fit")
        batch = EventBatch.from_events(events)
        x = self._features_batch(config, batch)
        return np.maximum(self._model.predict(x), 0.0)

    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-serializable state of the fitted model."""
        if self._model is None:
            raise ValueError("cannot serialize an unfitted McPatCalib")
        return {
            "gbm_params": dict(self.gbm_params),
            "random_state": self.random_state,
            "mcpat": self.mcpat.to_state(),
            "model": gbm_to_dict(self._model),
        }

    @classmethod
    def from_state(cls, state: dict, library=None) -> McPatCalib:
        """Rebuild a fitted model from :meth:`to_state` output."""
        model = cls(
            mcpat=McPatAnalytical.from_state(state["mcpat"]),
            gbm_params=state["gbm_params"],
            random_state=int(state["random_state"]),
        )
        model._model = gbm_from_dict(state["model"])
        return model
