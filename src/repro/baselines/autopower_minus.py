"""AutoPower− — the within-group-decoupling ablation (paper Sec. III-B3).

"It only decouples the model across different power groups and only
directly adopts the ML model for the estimation of each power group."
One boosted model per (component, power group), trained directly on the
golden group power, with the same feature budget as AutoPower's activity
models (hardware parameters, event rates, program features).  What it
lacks is the structural decoupling: no register-count/gating-rate
formulation for clock, no scaling-law + macro-mapping for SRAM.
"""

from __future__ import annotations

import numpy as np

from repro.arch.components import COMPONENTS
from repro.arch.config import BoomConfig
from repro.arch.events import EventBatch, EventParams
from repro.arch.workloads import Workload
from repro.core.features import (
    event_features,
    event_features_batch,
    hardware_features,
    program_features,
    program_features_matrix,
)
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.serialize import gbm_from_dict, gbm_to_dict
from repro.parallel import get_executor
from repro.power.report import POWER_GROUPS

__all__ = ["AutoPowerMinus"]


def _fit_group_gbm(payload: dict) -> GradientBoostingRegressor:
    """Fit one (component, group) GBM — the picklable executor task."""
    model = GradientBoostingRegressor(
        random_state=payload["random_state"], **payload["gbm_params"]
    )
    model.fit(payload["x"], payload["y"])
    return model

_DEFAULT_GBM = {
    "n_estimators": 200,
    "learning_rate": 0.08,
    "max_depth": 3,
    "reg_lambda": 1.0,
}


class AutoPowerMinus:
    """Per-group direct ML power model (no within-group decoupling)."""

    def __init__(
        self,
        use_program_features: bool = True,
        gbm_params: dict | None = None,
        random_state: int = 0,
        n_jobs: int | None = None,
        executor_backend: str | None = None,
    ) -> None:
        self.use_program_features = use_program_features
        self.gbm_params = dict(_DEFAULT_GBM if gbm_params is None else gbm_params)
        self.random_state = random_state
        self.n_jobs = n_jobs
        self.executor_backend = executor_backend
        self._models: dict[tuple[str, str], GradientBoostingRegressor] = {}

    # ------------------------------------------------------------------
    def _features(
        self, config: BoomConfig, events: EventParams, workload: Workload, component: str
    ) -> np.ndarray:
        parts = [
            hardware_features(config, component),
            event_features(events, component, config),
        ]
        if self.use_program_features:
            parts.append(program_features(workload))
        return np.concatenate(parts)

    # ------------------------------------------------------------------
    def fit(
        self,
        flow,
        train_configs,
        workloads,
        n_jobs: int | None = None,
        backend: str | None = None,
    ) -> AutoPowerMinus:
        executor = self._executor(n_jobs, backend)
        results = flow.run_many(
            list(train_configs), list(workloads), executor=executor
        )
        return self.fit_results(results, executor=executor)

    def _executor(self, n_jobs: int | None, backend: str | None):
        return get_executor(
            self.n_jobs if n_jobs is None else n_jobs,
            self.executor_backend if backend is None else backend,
        )

    def fit_results(
        self,
        results: list,
        n_jobs: int | None = None,
        backend: str | None = None,
        executor=None,
    ) -> AutoPowerMinus:
        if not results:
            raise ValueError("cannot fit on an empty result list")
        if executor is None:
            executor = self._executor(n_jobs, backend)
        keys: list[tuple[str, str]] = []
        payloads: list[dict] = []
        for comp in COMPONENTS:
            x = np.stack(
                [
                    self._features(r.config, r.events, r.workload, comp.name)
                    for r in results
                ]
            )
            for group in POWER_GROUPS:
                y = np.array(
                    [r.power.component(comp.name).group(group) for r in results]
                )
                keys.append((comp.name, group))
                payloads.append(
                    {
                        "gbm_params": self.gbm_params,
                        "random_state": self.random_state,
                        "x": x,
                        "y": y,
                    }
                )
        models = executor.map(_fit_group_gbm, payloads)
        self._models = dict(zip(keys, models))
        return self

    # ------------------------------------------------------------------
    def predict_component_group(
        self,
        component: str,
        group: str,
        config: BoomConfig,
        events: EventParams,
        workload: Workload,
    ) -> float:
        if not self._models:
            raise RuntimeError("AutoPowerMinus used before fit")
        x = self._features(config, events, workload, component).reshape(1, -1)
        return max(float(self._models[(component, group)].predict(x)[0]), 0.0)

    def predict_group(
        self, config: BoomConfig, events: EventParams, workload: Workload, group: str
    ) -> float:
        """Predicted power of one group summed over components, in mW."""
        if group == "logic":
            return self.predict_group(config, events, workload, "register") + (
                self.predict_group(config, events, workload, "comb")
            )
        return sum(
            self.predict_component_group(c.name, group, config, events, workload)
            for c in COMPONENTS
        )

    def predict_total(
        self, config: BoomConfig, events: EventParams, workload: Workload
    ) -> float:
        return sum(
            self.predict_group(config, events, workload, group)
            for group in POWER_GROUPS
        )

    def predict_totals(self, config: BoomConfig, events, workload) -> np.ndarray:
        """Total power per interval of a batch, in mW (batched GBM passes).

        ``events`` is an :class:`EventBatch` or a sequence of
        :class:`EventParams`; ``workload`` is one workload or one per
        interval.
        """
        if not self._models:
            raise RuntimeError("AutoPowerMinus used before fit")
        batch = EventBatch.from_events(events)
        n = len(batch)
        total = np.zeros(n)
        prog = (
            program_features_matrix(workload, n) if self.use_program_features else None
        )
        for comp in COMPONENTS:
            parts = [
                np.tile(hardware_features(config, comp.name), (n, 1)),
                event_features_batch(batch, comp.name, config),
            ]
            if prog is not None:
                parts.append(prog)
            x = np.hstack(parts)
            for group in POWER_GROUPS:
                total += np.maximum(self._models[(comp.name, group)].predict(x), 0.0)
        return total

    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-serializable state of the fitted per-(component, group) GBMs."""
        if not self._models:
            raise ValueError("cannot serialize an unfitted AutoPowerMinus")
        return {
            "use_program_features": self.use_program_features,
            "gbm_params": dict(self.gbm_params),
            "random_state": self.random_state,
            "models": [
                {"component": comp, "group": group, "model": gbm_to_dict(m)}
                for (comp, group), m in self._models.items()
            ],
        }

    @classmethod
    def from_state(cls, state: dict, library=None) -> AutoPowerMinus:
        """Rebuild a fitted model from :meth:`to_state` output."""
        model = cls(
            use_program_features=bool(state["use_program_features"]),
            gbm_params=state["gbm_params"],
            random_state=int(state["random_state"]),
        )
        model._models = {
            (entry["component"], entry["group"]): gbm_from_dict(entry["model"])
            for entry in state["models"]
        }
        return model
