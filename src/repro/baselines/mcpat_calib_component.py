"""McPAT-Calib + Component — the paper's extra ablation baseline.

"McPAT-Calib + Component adopts the McPAT-Calib as a building block and
builds power models for each component respectively" (Sec. III-B1).  Each
component gets its own boosted model over its Table III hardware
parameters, its event rates and its analytical McPAT estimate; the total
is the sum of the component predictions.
"""

from __future__ import annotations

import numpy as np

from repro.arch.components import COMPONENTS
from repro.arch.config import BoomConfig
from repro.arch.events import EventBatch, EventParams
from repro.baselines.mcpat import McPatAnalytical
from repro.core.features import (
    event_features,
    event_features_batch,
    hardware_features,
)
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.serialize import gbm_from_dict, gbm_to_dict

__all__ = ["McPatCalibComponent"]

_DEFAULT_GBM = {
    "n_estimators": 200,
    "learning_rate": 0.08,
    "max_depth": 3,
    "reg_lambda": 1.0,
}


class McPatCalibComponent:
    """One McPAT-Calib model per component; total = sum of components."""

    def __init__(
        self,
        mcpat: McPatAnalytical | None = None,
        gbm_params: dict | None = None,
        random_state: int = 0,
    ) -> None:
        self.mcpat = mcpat if mcpat is not None else McPatAnalytical()
        self.gbm_params = dict(_DEFAULT_GBM if gbm_params is None else gbm_params)
        self.random_state = random_state
        self._models: dict[str, GradientBoostingRegressor] = {}

    # ------------------------------------------------------------------
    def _features(
        self, config: BoomConfig, events: EventParams, component: str
    ) -> np.ndarray:
        # McPAT-Calib's feature recipe: hardware parameters, raw event
        # rates and the analytical estimate (no utilization-normalized
        # features — those are part of AutoPower's design).
        mcpat_comp = self.mcpat.predict_component(component, config, events)
        return np.concatenate(
            [
                hardware_features(config, component),
                event_features(events, component),
                [mcpat_comp],
            ]
        )

    # ------------------------------------------------------------------
    def fit(self, flow, train_configs, workloads) -> McPatCalibComponent:
        results = flow.run_many(list(train_configs), list(workloads))
        return self.fit_results(results)

    def fit_results(self, results: list) -> McPatCalibComponent:
        if not results:
            raise ValueError("cannot fit on an empty result list")
        for comp in COMPONENTS:
            x = np.stack(
                [self._features(r.config, r.events, comp.name) for r in results]
            )
            y = np.array([r.power.component(comp.name).total for r in results])
            model = GradientBoostingRegressor(
                random_state=self.random_state, **self.gbm_params
            )
            model.fit(x, y)
            self._models[comp.name] = model
        return self

    def predict_component(
        self, component: str, config: BoomConfig, events: EventParams
    ) -> float:
        if not self._models:
            raise RuntimeError("McPatCalibComponent used before fit")
        x = self._features(config, events, component).reshape(1, -1)
        return max(float(self._models[component].predict(x)[0]), 0.0)

    def predict_total(
        self, config: BoomConfig, events: EventParams, workload=None
    ) -> float:
        return sum(
            self.predict_component(c.name, config, events) for c in COMPONENTS
        )

    def predict_totals(self, config: BoomConfig, events, workload=None) -> np.ndarray:
        """Per-interval total power for a batch, in mW.

        One fused GBM pass per component over the stacked feature matrix;
        column order and arithmetic match the scalar path exactly.
        """
        if not self._models:
            raise RuntimeError("McPatCalibComponent used before fit")
        batch = EventBatch.from_events(events)
        n = len(batch)
        total = 0.0
        for comp in COMPONENTS:
            mcpat_comp = self.mcpat.predict_component_batch(comp.name, config, batch)
            x = np.hstack(
                [
                    np.tile(hardware_features(config, comp.name), (n, 1)),
                    event_features_batch(batch, comp.name),
                    mcpat_comp[:, None],
                ]
            )
            total = total + np.maximum(self._models[comp.name].predict(x), 0.0)
        return np.asarray(total, dtype=float)

    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-serializable state of the fitted per-component models."""
        if not self._models:
            raise ValueError("cannot serialize an unfitted McPatCalibComponent")
        return {
            "gbm_params": dict(self.gbm_params),
            "random_state": self.random_state,
            "mcpat": self.mcpat.to_state(),
            "models": {name: gbm_to_dict(m) for name, m in self._models.items()},
        }

    @classmethod
    def from_state(cls, state: dict, library=None) -> McPatCalibComponent:
        """Rebuild a fitted model from :meth:`to_state` output."""
        model = cls(
            mcpat=McPatAnalytical.from_state(state["mcpat"]),
            gbm_params=state["gbm_params"],
            random_state=int(state["random_state"]),
        )
        model._models = {
            name: gbm_from_dict(sub) for name, sub in state["models"].items()
        }
        return model
