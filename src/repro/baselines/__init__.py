"""Baseline power models the paper compares against.

* :mod:`repro.baselines.mcpat` — a McPAT-like *analytical* model: generic
  engineer-defined resource/energy functions, deliberately uncalibrated to
  the target silicon (the paper's [5] documents such errors),
* :mod:`repro.baselines.mcpat_calib` — McPAT-Calib [Zhai et al. 2022]:
  XGBoost-style regression on hardware parameters, event parameters and
  the analytical McPAT estimate, predicting total power directly,
* :mod:`repro.baselines.mcpat_calib_component` — the paper's ablation
  baseline "McPAT-Calib + Component": one McPAT-Calib per component,
* :mod:`repro.baselines.autopower_minus` — AutoPower−: decouples across
  power groups only, with a direct ML model per (component, group) and no
  within-group structural sub-models.
"""

from repro.baselines.autopower_minus import AutoPowerMinus
from repro.baselines.mcpat import McPatAnalytical
from repro.baselines.mcpat_calib import McPatCalib
from repro.baselines.mcpat_calib_component import McPatCalibComponent

__all__ = [
    "AutoPowerMinus",
    "McPatAnalytical",
    "McPatCalib",
    "McPatCalibComponent",
]
