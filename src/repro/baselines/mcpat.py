"""McPAT-like analytical power model.

A hand-built resource-function model in the spirit of McPAT [Li et al.
2009]: every component gets a generic area proxy (a weighted sum of its
hardware parameters) and a generic dynamic-energy proxy (driven by its
event rates), multiplied by technology constants.  Crucially — and this is
the published failure mode the paper leans on — the constants were *not*
calibrated to the target implementation: each component's estimate is off
by a deterministic factor (reproducible per component), it knows nothing
about clock gating, and its SRAM energies assume idealized macros.

It is useful in two roles: as a standalone baseline, and as the analytical
feature inside McPAT-Calib.
"""

from __future__ import annotations

import numpy as np

from repro.arch.components import COMPONENTS
from repro.arch.config import BoomConfig
from repro.arch.events import EventBatch, EventParams
from repro.sim.perf import stable_seed

__all__ = ["McPatAnalytical"]

# Generic per-parameter "area weight" (register-bit equivalents) an
# engineer might assume without access to the real design.
_PARAM_WEIGHT: dict[str, float] = {
    "FetchWidth": 90.0,
    "DecodeWidth": 420.0,
    "FetchBufferEntry": 35.0,
    "RobEntry": 28.0,
    "IntPhyRegister": 70.0,
    "FpPhyRegister": 70.0,
    "LDQEntry": 60.0,
    "STQEntry": 60.0,
    "BranchCount": 55.0,
    "MemIssueWidth": 700.0,
    "FpIssueWidth": 900.0,
    "IntIssueWidth": 700.0,
    "DCacheWay": 260.0,
    "ICacheWay": 230.0,
    "DTLBEntry": 30.0,
    "ITLBEntry": 30.0,
    "MSHREntry": 110.0,
    "ICacheFetchBytes": 120.0,
}


class McPatAnalytical:
    """Analytical architecture-level power model (no training).

    Parameters
    ----------
    mw_per_kunit:
        Technology constant: mW per thousand area units at full activity.
    static_share:
        Fraction of component power that is activity-independent in the
        analytical model (McPAT's idle/leakage assumption).
    miscalibration:
        Half-range of the deterministic per-component error factor
        (0.45 means factors in [0.55, 1.45]); models the documented
        McPAT-vs-silicon drift on new microarchitectures.
    """

    def __init__(
        self,
        mw_per_kunit: float = 0.95,
        static_share: float = 0.35,
        miscalibration: float = 0.45,
    ) -> None:
        if not 0.0 <= static_share <= 1.0:
            raise ValueError("static_share must be in [0, 1]")
        if not 0.0 <= miscalibration < 1.0:
            raise ValueError("miscalibration must be in [0, 1)")
        self.mw_per_kunit = mw_per_kunit
        self.static_share = static_share
        self.miscalibration = miscalibration

    # ------------------------------------------------------------------
    def _distortion(self, component: str) -> float:
        rng = np.random.default_rng(stable_seed("mcpat-distortion", component))
        return float(1.0 + rng.uniform(-self.miscalibration, self.miscalibration))

    def area_proxy(self, config: BoomConfig, component: str) -> float:
        """Generic resource function: weighted sum of the component's params."""
        comp = next(c for c in COMPONENTS if c.name == component)
        return sum(_PARAM_WEIGHT[p] * config[p] for p in comp.hardware_parameters)

    def activity_proxy(self, events: EventParams, component: str) -> float:
        """Normalized activity in [0, 1] from the component's event rates."""
        rates = events.rates_for_component(component)
        total = sum(rates.values())
        return min(total / 2.0, 1.0)

    # ------------------------------------------------------------------
    def fit(self, flow, train_configs, workloads) -> McPatAnalytical:
        """No-op: the analytical model has no learned state."""
        return self

    def fit_results(self, results: list) -> McPatAnalytical:
        """No-op: the analytical model has no learned state."""
        return self

    # ------------------------------------------------------------------
    def predict_component(
        self, component: str, config: BoomConfig, events: EventParams
    ) -> float:
        """Analytical power of one component, in mW."""
        area = self.area_proxy(config, component)
        act = self.activity_proxy(events, component)
        dynamic_share = 1.0 - self.static_share
        power = (
            self.mw_per_kunit
            * (area / 1000.0)
            * (self.static_share + dynamic_share * act)
        )
        return power * self._distortion(component)

    def predict_component_batch(
        self, component: str, config: BoomConfig, batch: EventBatch
    ) -> np.ndarray:
        """Per-interval analytical power of one component, in mW.

        Element-for-element the same arithmetic (and operation order) as
        :meth:`predict_component`, so batch predictions are bitwise equal
        to the scalar path.
        """
        rates = batch.rates_for_component(component)
        total = 0.0
        for vector in rates.values():
            total = total + vector
        act = np.minimum(total / 2.0, 1.0)
        area = self.area_proxy(config, component)
        dynamic_share = 1.0 - self.static_share
        power = (
            self.mw_per_kunit
            * (area / 1000.0)
            * (self.static_share + dynamic_share * act)
        )
        return power * self._distortion(component)

    def predict_total(
        self, config: BoomConfig, events: EventParams, workload=None
    ) -> float:
        """Analytical total power, in mW (workload arg for API uniformity)."""
        return sum(
            self.predict_component(c.name, config, events) for c in COMPONENTS
        )

    def predict_totals(self, config: BoomConfig, events, workload=None) -> np.ndarray:
        """Per-interval analytical total power for a batch, in mW."""
        batch = EventBatch.from_events(events)
        total = 0.0
        for comp in COMPONENTS:
            total = total + self.predict_component_batch(comp.name, config, batch)
        return np.asarray(total, dtype=float)

    def predict(self, config: BoomConfig, events: EventParams) -> dict[str, float]:
        return {
            c.name: self.predict_component(c.name, config, events) for c in COMPONENTS
        }

    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-serializable state (hyper-parameters only — no learning)."""
        return {
            "mw_per_kunit": self.mw_per_kunit,
            "static_share": self.static_share,
            "miscalibration": self.miscalibration,
        }

    @classmethod
    def from_state(cls, state: dict, library=None) -> McPatAnalytical:
        """Rebuild from :meth:`to_state` output (library arg unused)."""
        return cls(
            mw_per_kunit=float(state["mw_per_kunit"]),
            static_share=float(state["static_share"]),
            miscalibration=float(state["miscalibration"]),
        )
