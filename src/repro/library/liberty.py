"""Minimal Liberty-style (.lib) export of the technology library.

Real flows exchange library data as Liberty files; AutoPower's library
lookups (``p_reg``, ``p_latch``, macro read/write energies) correspond to
attributes in those files.  This writer produces a compact, human-readable
subset — enough to inspect the substrate's energy model with standard
tooling habits, and used by tests as a stable textual fingerprint of the
library.
"""

from __future__ import annotations

from pathlib import Path

from repro.library.stdcell import TechLibrary

__all__ = ["export_liberty", "liberty_text"]


def _cell_block(name: str, attributes: dict[str, float], indent: str = "  ") -> str:
    lines = [f"{indent}cell ({name}) {{"]
    for key, value in attributes.items():
        lines.append(f"{indent}  {key} : {value:.6g};")
    lines.append(f"{indent}}}")
    return "\n".join(lines)


def liberty_text(library: TechLibrary) -> str:
    """Render the library as Liberty-style text."""
    blocks = [
        f"library ({library.name}) {{",
        f"  /* synthetic 40nm-class library, {library.frequency_ghz:g} GHz */",
        '  time_unit : "1ns";',
        '  leakage_power_unit : "1mW";',
        '  energy_unit : "1pJ";',
        "",
        _cell_block(
            "dff",
            {
                "clock_pin_energy": library.register_clock_pin_energy_pj,
                "data_toggle_energy": library.register_data_energy_pj,
                "cell_leakage_power": library.register_leakage_mw,
            },
        ),
        _cell_block(
            "icg",
            {
                "latch_pin_energy": library.icg_latch_energy_pj,
                "cell_leakage_power": library.icg_leakage_mw,
            },
        ),
    ]
    for cell in library.comb_cells:
        blocks.append(
            _cell_block(
                cell.name,
                {
                    "switch_energy": cell.switch_energy_pj,
                    "cell_leakage_power": cell.leakage_mw,
                },
            )
        )
    for macro in library.sram.all_macros():
        blocks.append(
            _cell_block(
                macro.name,
                {
                    "read_energy": macro.read_energy_pj,
                    "write_energy": macro.write_energy_pj,
                    "cell_leakage_power": macro.leakage_mw,
                    "pin_toggle_power": macro.pin_toggle_mw,
                },
            )
        )
    blocks.append("}")
    return "\n".join(blocks) + "\n"


def export_liberty(library: TechLibrary, path: str | Path) -> Path:
    """Write the library to a .lib file; returns the path."""
    out = Path(path)
    out.write_text(liberty_text(library))
    return out
