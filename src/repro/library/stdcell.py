"""Standard-cell library model.

Units convention (used across the whole repository):

* energies are in **pJ per event**,
* the clock is fixed by ``frequency_ghz``; at 1 GHz an energy of 1 pJ per
  cycle equals exactly 1 mW of power, so golden power reports are in mW,
* leakage is in **mW per cell instance**.

Values are 40 nm-plausible but synthetic — the reproduction only needs the
lookups to be *consistent* between label generation (power analyzer) and
AutoPower's library lookups, which is exactly the situation in the paper
(both PrimePower and AutoPower read the same .lib).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.library.sram_compiler import SramCompiler

__all__ = ["CombCellSpec", "TechLibrary", "default_library", "extended_library"]


@dataclass(frozen=True)
class CombCellSpec:
    """One combinational cell class (an aggregate of similar cells).

    ``switch_energy_pj`` is the average internal + load energy per output
    toggle; ``leakage_mw`` is per instance.
    """

    name: str
    switch_energy_pj: float
    leakage_mw: float

    def __post_init__(self) -> None:
        if self.switch_energy_pj <= 0 or self.leakage_mw < 0:
            raise ValueError(f"invalid cell spec for {self.name}")


@dataclass(frozen=True)
class TechLibrary:
    """Technology library: sequential cells, ICG cells, comb cells, SRAM.

    Attributes
    ----------
    register_clock_pin_energy_pj:
        ``p_reg`` in the paper — clock-pin internal energy of one register
        per active clock cycle.
    register_data_energy_pj:
        Energy per register *data* output toggle (logic group, not clock).
    icg_latch_energy_pj:
        ``p_latch`` — clock-pin energy of the latch inside a clock-gating
        cell, per cycle the upstream clock toggles.
    clock_tree_energy_per_reg_pj:
        Clock distribution buffers, amortized per register.  A fraction
        ``clock_tree_gated_share`` of it is downstream of gating cells and
        follows the gated activity.  This term is *not* part of AutoPower's
        Eq. 7, which is one of the realistic modeling errors the paper's
        clock-group MAPE reflects.
    """

    name: str = "synth40"
    frequency_ghz: float = 1.0
    register_clock_pin_energy_pj: float = 1.6e-3
    register_data_energy_pj: float = 2.4e-3
    register_leakage_mw: float = 1.1e-5
    icg_latch_energy_pj: float = 2.2e-3
    icg_leakage_mw: float = 1.6e-5
    clock_tree_energy_per_reg_pj: float = 1.5e-4
    clock_tree_gated_share: float = 0.45
    comb_cells: tuple[CombCellSpec, ...] = (
        CombCellSpec("nand2", 0.9e-3, 2.4e-6),
        CombCellSpec("aoi22", 1.5e-3, 3.6e-6),
        CombCellSpec("xor2", 2.1e-3, 4.2e-6),
        CombCellSpec("mux2", 1.7e-3, 3.8e-6),
        CombCellSpec("buf4", 1.2e-3, 3.0e-6),
    )
    sram: SramCompiler = field(default_factory=SramCompiler)

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")
        if not 0.0 <= self.clock_tree_gated_share <= 1.0:
            raise ValueError("clock_tree_gated_share must be in [0, 1]")
        for attr in (
            "register_clock_pin_energy_pj",
            "register_data_energy_pj",
            "icg_latch_energy_pj",
        ):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    # -- convenience lookups (the paper's library lookups) ---------------
    @property
    def p_reg_mw(self) -> float:
        """Clock-pin power of one register with an always-active clock."""
        return self.register_clock_pin_energy_pj * self.frequency_ghz

    @property
    def p_latch_mw(self) -> float:
        """Clock-pin power of one gating-cell latch with active clock."""
        return self.icg_latch_energy_pj * self.frequency_ghz

    def comb_cell(self, name: str) -> CombCellSpec:
        for cell in self.comb_cells:
            if cell.name == name:
                return cell
        raise KeyError(f"no combinational cell {name!r} in library {self.name}")

    def power_mw(self, energy_pj_per_cycle: float) -> float:
        """Convert an energy per cycle into power at the library clock."""
        return energy_pj_per_cycle * self.frequency_ghz


def default_library() -> TechLibrary:
    """The library used by every experiment (the flow's single .lib)."""
    return TechLibrary()


def extended_library() -> TechLibrary:
    """The same cells over the DSE-widened SRAM shape grid.

    Identical standard cells and energy model, but the memory compiler
    offers :meth:`SramCompiler.extended`'s interleaved shapes — tighter
    macro mappings for off-grid block shapes the DSE sweeps produce.
    A distinct ``name`` keeps its flow fingerprint (and therefore its
    disk-cache key space) separate from the default library's.
    """
    return TechLibrary(name="synth40x", sram=SramCompiler.extended())
