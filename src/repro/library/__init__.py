"""Synthetic technology-node library (40 nm-class) and SRAM compiler.

Stands in for the TSMC 40 nm standard-cell library and its associated
Memory Compiler used in the paper's VLSI flow.  The library provides the
lookups AutoPower performs (register clock-pin energy ``p_reg``, gating
cell latch energy ``p_latch``, SRAM macro read/write energies ``P_R`` /
``P_W``) plus everything the golden power analyzer needs (data-toggle
energies, leakage, combinational cell classes, macro pin-toggle power).
"""

from repro.library.sram_compiler import MacroSpec, SramCompiler
from repro.library.stdcell import CombCellSpec, TechLibrary, default_library

__all__ = [
    "CombCellSpec",
    "MacroSpec",
    "SramCompiler",
    "TechLibrary",
    "default_library",
]
