"""DSE smoke: submit a grid twice over HTTP, require a warm second pass.

The end-to-end check CI runs against the real ``python -m repro serve``
artifact:

1. fit (or reuse) a model file and serve it on an ephemeral port with a
   fresh, private flow-cache directory,
2. ``POST /dse`` a small grid, poll ``GET /dse/<id>`` until done, fetch
   ranked ``GET /dse/<id>/results``,
3. resubmit the *same* grid and require the second sweep to be pure
   cache: zero flow executions, zero disk misses, and a ranked result
   list JSON-identical to the cold pass,
4. exercise the error surface (400 on a bad axis, 404 on an unknown
   job) and require a clean (exit 0) drain with jobs stopped.

Usage::

    python scripts/smoke_dse.py [--model model.json] [--method autopower]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

from smoke_common import ServeProcess, check, fit_model, http_call

AXES = {"RobEntry": [64, 96, 128], "FetchBufferEntry": [16, 24]}
SPEC = {"axes": AXES, "workloads": ["qsort", "towers"], "chunk": 3}


def run_job(serve, spec, timeout=120.0):
    """Submit ``spec``, poll to completion, return (status-snap, results)."""
    status, _h, ticket = http_call(
        serve.host, serve.port, "POST", "/dse", spec
    )
    check(status == 202, "POST /dse must answer 202 Accepted", (status, ticket))
    job_id = ticket["id"]
    deadline = time.monotonic() + timeout
    while True:
        status, _h, snap = http_call(
            serve.host, serve.port, "GET", f"/dse/{job_id}"
        )
        check(status == 200, f"GET /dse/{job_id}", snap)
        if snap["state"] not in ("pending", "running"):
            break
        check(
            time.monotonic() < deadline,
            f"job {job_id} still {snap['state']} after {timeout:g}s",
            snap,
        )
        time.sleep(0.1)
    check(snap["state"] == "done", "job must finish done", snap)
    status, _h, results = http_call(
        serve.host, serve.port, "GET", f"/dse/{job_id}/results"
    )
    check(status == 200, f"GET /dse/{job_id}/results", results)
    return snap, results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model", default=None, metavar="PATH",
        help="model file to serve (default: fit --method into a temp file)",
    )
    parser.add_argument(
        "--method", default="autopower",
        help="method to fit when --model is absent (default: autopower)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-smoke-dse-") as tmp:
        model_path = args.model
        if model_path is None:
            model_path = f"{tmp}/model.json"
            print(f"fitting {args.method} -> {model_path}", flush=True)
            fit_model(args.method, model_path)

        # A private cache root: the warm pass below is warmed by *this*
        # smoke's cold pass, nothing else.
        cache_dir = f"{tmp}/flow-cache"
        serve = ServeProcess(
            ["--model", model_path, "--port", "0", "--workers", "1"],
            env_extra={"REPRO_FLOW_CACHE_DIR": cache_dir},
        )
        try:
            serve.wait_healthy()
            print(f"gateway up on {serve.host}:{serve.port}", flush=True)

            cold_snap, cold = run_job(serve, SPEC)
            check(cold["configs"] == 6, "2x3 grid -> 6 configs", cold)
            means = [e["mean_total_mw"] for e in cold["ranked"]]
            check(means == sorted(means), "ranked ascending", means)
            cold_flow = cold_snap["flow"]
            check(
                cold_flow["executions"] > 0,
                "cold pass must execute the flow", cold_flow,
            )
            print(
                f"cold: {cold_flow['executions']} flow executions, "
                f"top {cold['ranked'][0]['config']} "
                f"{cold['ranked'][0]['mean_total_mw']:.2f} mW",
                flush=True,
            )

            warm_snap, warm = run_job(serve, SPEC)
            warm_flow = warm_snap["flow"]
            check(
                warm_flow["executions"] == 0,
                "warm pass must run zero flows", warm_flow,
            )
            check(
                warm_flow["cache"]["misses"] == 0,
                "warm pass must be all cache hits", warm_flow,
            )
            check(
                json.dumps(warm["ranked"]) == json.dumps(cold["ranked"]),
                "warm ranked results must be identical to the cold pass",
            )
            print(
                f"warm: 0 executions, {warm_flow['cache']['hits']} hits, "
                "ranked results identical", flush=True,
            )

            status, _h, body = http_call(
                serve.host, serve.port, "POST", "/dse",
                {"axes": {"NoSuchRow": [1]}},
            )
            check(status == 400, "bad axis row must answer 400", (status, body))
            status, _h, body = http_call(
                serve.host, serve.port, "GET", "/dse/dse-999"
            )
            check(status == 404, "unknown job must answer 404", (status, body))

            status, _h, stats = http_call(
                serve.host, serve.port, "GET", "/stats"
            )
            check(
                stats["dse"]["submitted"] == 2,
                "stats must count both submissions", stats.get("dse"),
            )
        except BaseException:
            serve.kill()
            print(serve.output)
            raise
        code = serve.terminate_and_wait()
        check(code == 0, f"serve must drain and exit 0, got {code}",
              serve.output)
    print("dse smoke ok: warm sweep pure cache, identical ranking, clean exit")
    return 0


if __name__ == "__main__":
    sys.exit(main())
