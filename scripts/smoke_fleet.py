"""Fleet smoke: multi-model routing, hot reload, auth, and --workers 2.

The acceptance check for fleet-scale serving, against the real
``python -m repro serve`` artifact on ephemeral ports:

**Phase 1 — single process, two models + auth.**  Serve two fitted
models, verify ``POST /models/<name>/predict`` answers bitwise-equal to
direct :class:`repro.api.PredictionService` calls for both, that a
request without the bearer token answers 401, then hot-reload one model
over ``PUT /models/<name>`` (generation bumps, still bitwise), load a
third from an envelope body, and ``DELETE`` it (route 404s after).

**Phase 2 — ``--workers 2``.**  Fork two shared-nothing workers on one
``SO_REUSEPORT`` port, spray concurrent requests at the shared data
port (every response must stay bitwise), read the parent control
plane's merged ``/stats`` and require the merged counters to equal the
sum of the per-worker counters, hot-reload a model through the control
plane's fan-out (both workers must serve it afterwards), then SIGTERM
and require a clean pool exit.  On a machine with >= 2 CPUs the
two-worker throughput must be >= 1.5x a single worker's on the same
load (skipped on single-core runners, where forked workers time-share
one core).

Usage::

    python scripts/smoke_fleet.py [--skip-scaling]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time

from smoke_common import ServeProcess, check, fit_model, http_call

TOKEN = "smoke-fleet-token"


def _spray(host, port, path, payloads, n_threads=8, rounds=4, token=None):
    """Concurrent single-request POSTs; returns (bodies, elapsed_s)."""
    results: list[list] = [[] for _ in range(n_threads)]
    errors: list = []

    def worker(slot: int) -> None:
        try:
            for r in range(rounds):
                for payload in payloads:
                    status, _h, body = http_call(
                        host, port, "POST", path, payload, token=token
                    )
                    if status != 200:
                        errors.append((status, body))
                        return
                    results[slot].append(body)
        except OSError as exc:
            errors.append(("transport", str(exc)))

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    check(not errors, "sprayed requests must all answer 200", errors[:3])
    return [b for slot in results for b in slot], elapsed


def phase_single_process(paths, requests, expected) -> None:
    serve = ServeProcess([
        "--model", f"default={paths['ap']}",
        "--model", f"mcpat={paths['mcpat']}",
        "--port", "0",
        "--auth-token", TOKEN,
    ])
    try:
        serve.wait_healthy()
        print(f"[phase 1] two-model gateway on {serve.host}:{serve.port}",
              flush=True)

        # No token -> 401 before any model work; /healthz stays open.
        status, headers, _b = http_call(
            serve.host, serve.port, "POST", "/predict", requests["ap"][0]
        )
        check(status == 401, f"tokenless predict must 401, got {status}")
        check(headers.get("www-authenticate") == "Bearer", "401 challenge")

        # Both models route bitwise, independently.
        for name in ("ap", "mcpat"):
            route = "/predict" if name == "ap" else "/models/mcpat/predict"
            status, _h, body = http_call(
                serve.host, serve.port, "POST", route, requests[name],
                token=TOKEN,
            )
            check(status == 200, f"POST {route}", body)
            got = [r["total"] for r in body]
            check(
                got == expected[name],
                f"{name} responses must be bitwise-equal to direct calls",
                (got[:2], expected[name][:2]),
            )

        # Hot reload: PUT the same name again; generation bumps and the
        # model keeps serving bitwise.
        status, _h, body = http_call(
            serve.host, serve.port, "PUT", "/models/mcpat",
            {"path": paths["mcpat"]}, token=TOKEN,
        )
        check(status == 200 and body["replaced"] is True, "hot reload", body)
        check(body["generation"] == 2, "reload bumps the generation", body)
        status, _h, body = http_call(
            serve.host, serve.port, "POST", "/models/mcpat/predict",
            requests["mcpat"], token=TOKEN,
        )
        check(
            status == 200
            and [r["total"] for r in body] == expected["mcpat"],
            "reloaded model must stay bitwise", body,
        )

        # Load a third model from a full envelope body, then unload it.
        import repro.api as api

        envelope = api.model_to_envelope(api.load_model(paths["mcpat"]))
        status, _h, body = http_call(
            serve.host, serve.port, "PUT", "/models/third", envelope,
            token=TOKEN,
        )
        check(status == 200 and body["source"] == "envelope",
              "envelope load", body)
        status, _h, body = http_call(
            serve.host, serve.port, "POST", "/models/third/predict",
            requests["mcpat"], token=TOKEN,
        )
        check(
            status == 200
            and [r["total"] for r in body] == expected["mcpat"],
            "envelope-loaded model must serve bitwise", body,
        )
        status, _h, body = http_call(
            serve.host, serve.port, "DELETE", "/models/third", token=TOKEN
        )
        check(status == 200 and body["unloaded"] is True, "unload", body)
        status, _h, _b = http_call(
            serve.host, serve.port, "POST", "/models/third/predict",
            requests["mcpat"][:1], token=TOKEN,
        )
        check(status == 404, "unloaded model route must 404")
    except BaseException:
        serve.kill()
        print(serve.output)
        raise
    code = serve.terminate_and_wait()
    check(code == 0, f"phase-1 serve must exit 0, got {code}", serve.output)
    print("[phase 1] ok: routing/auth/hot-reload/unload all bitwise",
          flush=True)


def _measure_throughput(paths, requests, expected, workers: int) -> float:
    args = [
        "--model", f"default={paths['ap']}",
        "--port", "0",
        "--max-wait-ms", "0",
    ]
    if workers > 1:
        args += ["--workers", str(workers)]
    serve = ServeProcess(args)
    try:
        serve.wait_healthy()
        bodies, elapsed = _spray(
            serve.host, serve.port, "/predict", requests["ap"],
            n_threads=8, rounds=4,
        )
        for body in bodies:
            check(
                body["total"] in expected["ap"],
                "load responses must stay bitwise", body,
            )
        rate = len(bodies) / elapsed
    except BaseException:
        serve.kill()
        print(serve.output)
        raise
    code = serve.terminate_and_wait()
    check(code == 0, f"load serve must exit 0, got {code}", serve.output)
    return rate


def phase_worker_pool(paths, requests, expected, skip_scaling: bool) -> None:
    serve = ServeProcess([
        "--model", f"default={paths['ap']}",
        "--model", f"mcpat={paths['mcpat']}",
        "--port", "0",
        "--workers", "2",
        "--auth-token", TOKEN,
    ])
    try:
        serve.wait_healthy()
        check(serve.announce["workers"] == 2, "announce reports 2 workers",
              serve.announce)
        check(serve.control is not None, "announce carries the control addr",
              serve.announce)
        control_host, control_port = serve.control.removeprefix(
            "http://"
        ).rsplit(":", 1)
        control_port = int(control_port)
        print(
            f"[phase 2] pool on {serve.host}:{serve.port}, "
            f"control {serve.control}", flush=True,
        )

        # Concurrent load over the shared SO_REUSEPORT port: every
        # response bitwise, whichever worker the kernel picked.
        bodies, _elapsed = _spray(
            serve.host, serve.port, "/predict", requests["ap"],
            n_threads=8, rounds=2, token=TOKEN,
        )
        for body in bodies:
            check(body["total"] in expected["ap"],
                  "pooled responses must stay bitwise", body)

        # Merged /stats: the parent's merged view must equal the sum of
        # the per-worker counters, and must account for every request.
        status, _h, stats = http_call(
            control_host, control_port, "GET", "/stats", token=TOKEN
        )
        check(status == 200, "control GET /stats", stats)
        per_worker = [w["body"] for w in stats["workers"]]
        check(len(per_worker) == 2, "stats from both workers", stats)
        summed = sum(
            w["gateway"]["predict_responses"] for w in per_worker
        )
        merged = stats["merged"]["gateway"]["predict_responses"]
        check(
            merged == summed,
            "merged predict_responses must equal the per-worker sum",
            (merged, summed),
        )
        check(
            merged >= len(bodies),
            "merged counters must account for every sprayed request",
            (merged, len(bodies)),
        )
        for w in per_worker:
            check(
                w["gateway"]["predict_responses"] > 0,
                "SO_REUSEPORT must spread load over both workers",
                [x["gateway"]["predict_responses"] for x in per_worker],
            )

        # Hot reload through the control plane: the fan-out must land on
        # both workers, so the reloaded model serves from either.
        status, _h, body = http_call(
            control_host, control_port, "PUT", "/models/mcpat",
            {"path": paths["mcpat"]}, token=TOKEN,
        )
        check(status == 200, "control-plane PUT fan-out", body)
        check(
            all(w["status"] == 200 for w in body["workers"])
            and len(body["workers"]) == 2,
            "PUT must succeed on both workers", body,
        )
        bodies, _elapsed = _spray(
            serve.host, serve.port, "/models/mcpat/predict",
            requests["mcpat"], n_threads=4, rounds=2, token=TOKEN,
        )
        for body in bodies:
            check(body["total"] in expected["mcpat"],
                  "post-reload pooled responses must stay bitwise", body)

        # Unload everywhere; the route must 404 on the data port after.
        status, _h, body = http_call(
            control_host, control_port, "DELETE", "/models/mcpat",
            token=TOKEN,
        )
        check(status == 200, "control-plane DELETE fan-out", body)
        status, _h, _b = http_call(
            serve.host, serve.port, "POST", "/models/mcpat/predict",
            requests["mcpat"][:1], token=TOKEN,
        )
        check(status == 404, "unloaded model must 404 on the data port")
    except BaseException:
        serve.kill()
        print(serve.output)
        raise
    code = serve.terminate_and_wait()
    check(code == 0, f"pool must drain and exit 0, got {code}", serve.output)
    check("all workers drained" in serve.output, "pool drain message",
          serve.output)
    print("[phase 2] ok: pool routing/merged-stats/fan-out/drain", flush=True)

    if skip_scaling:
        print("[scaling] skipped (--skip-scaling)", flush=True)
        return
    cpus = os.cpu_count() or 1
    if cpus < 2:
        print(
            f"[scaling] skipped: {cpus} CPU(s); forked workers would "
            "time-share one core", flush=True,
        )
        return
    single = _measure_throughput(paths, requests, expected, workers=1)
    double = _measure_throughput(paths, requests, expected, workers=2)
    ratio = double / single
    print(
        f"[scaling] 1 worker: {single:.0f} req/s, "
        f"2 workers: {double:.0f} req/s, ratio {ratio:.2f}x", flush=True,
    )
    check(
        ratio >= 1.5,
        f"2-worker throughput must be >= 1.5x single-worker, got {ratio:.2f}x",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--skip-scaling", action="store_true",
        help="skip the 2-worker >= 1.5x throughput assertion",
    )
    args = parser.parse_args(argv)

    import repro.api as api
    from repro.arch.config import config_by_name
    from repro.arch.workloads import workload_by_name
    from repro.serving import wire
    from repro.sim.perf import PerfSimulator

    from repro.serving.fleet import reuse_port_supported

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        paths = {"ap": f"{tmp}/ap.json", "mcpat": f"{tmp}/mcpat.json"}
        print("fitting autopower + mcpat ...", flush=True)
        fit_model("autopower", paths["ap"])
        fit_model("mcpat", paths["mcpat"])

        perf = PerfSimulator()
        grid = [
            (config_by_name(c), workload_by_name(w))
            for c in ("C8", "C9")
            for w in ("dhrystone", "qsort")
        ]
        predict_requests = [
            api.PredictRequest(c, perf.run(c, w), w) for c, w in grid
        ]
        requests = {
            name: [wire.encode_request(r) for r in predict_requests]
            for name in ("ap", "mcpat")
        }
        expected = {}
        for name, path in paths.items():
            service = api.PredictionService(api.load_model(path))
            expected[name] = [
                float(r.total) for r in service.submit_many(predict_requests)
            ]

        phase_single_process(paths, requests, expected)
        if not reuse_port_supported():
            print(
                "[phase 2] skipped: no os.fork/SO_REUSEPORT on this platform",
                flush=True,
            )
        else:
            phase_worker_pool(paths, requests, expected, args.skip_scaling)
    print("fleet smoke ok", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
