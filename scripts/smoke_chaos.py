"""Process-level chaos smoke: the self-healing worker pool under fire.

The acceptance check for supervised serving, against the real
``python -m repro serve`` artifact on ephemeral ports.  Three scenarios:

**Scenario A — SIGKILL under load, replay convergence, startup hang.**
Serve ``--workers 2`` with chaos armed through ``REPRO_CHAOS_DIR``.
Under continuous concurrent load (the retrying :class:`ServingClient`),
SIGKILL one ready worker: no accepted request may be lost — every
client call must eventually answer 200 with a bitwise-expected body
(retries land on the surviving worker, then the replacement).  While
the pool is degraded, hot-reload a model through the parent control
plane; once healed, both workers must report the *same model names and
generations* (the restarted worker converged through the admin
journal).  Then arm a ``hang-startup`` fault and SIGKILL another
worker: its replacement hangs in startup, the supervisor must kill it
at the startup deadline and bring up a second replacement.  Finally
SIGTERM: clean drain, exit 0.

**Scenario B — crash during drain.**  Arm ``crash-drain``; SIGTERM the
pool.  One worker dies mid-drain with a scripted exit code; the pool
must exit non-zero and report ``workers exited non-zero`` — a failed
drain is not a clean exit.

**Scenario C — crash loop.**  Arm more ``crash-startup`` faults than
``--max-restarts`` allows.  The pool must give up: exit non-zero within
bounded time with per-pid crash diagnostics (no hang, no thrash).

Skips cleanly where ``os.fork``/``SO_REUSEPORT`` is unavailable.

Usage::

    python scripts/smoke_chaos.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

from smoke_common import (
    ServeProcess,
    check,
    fit_model,
    http_call,
    repro_env,
    wait_until,
)


def _control_addr(serve: ServeProcess) -> tuple[str, int]:
    host, port = serve.control.removeprefix("http://").rsplit(":", 1)
    return host, int(port)


def _healthz(chost: str, cport: int) -> dict:
    status, _h, body = http_call(chost, cport, "GET", "/healthz", timeout=10.0)
    check(status in (200, 503), f"control /healthz answered {status}", body)
    return body


def _ready_pids(chost: str, cport: int) -> list[int]:
    body = _healthz(chost, cport)
    return [
        w["body"]["pid"]
        for w in body["workers"]
        if w.get("status") == 200 and isinstance(w.get("body"), dict)
    ]


def _pool_state(chost: str, cport: int) -> tuple[str, int]:
    body = _healthz(chost, cport)
    sup = body["supervisor"]
    return body["status"], sup["ready"]


class _Spray:
    """Continuous concurrent load through the retrying client.

    Uses the default model only, so responses stay comparable across
    hot reloads of other names.  Collects every response body and every
    terminal error; ``stop()`` joins the threads.
    """

    def __init__(self, host: str, port: int, payload: dict, n_threads: int = 4):
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        from repro.serving import ServingClient

        self._stop = threading.Event()
        self.bodies: list = []
        self.errors: list = []
        self._lock = threading.Lock()

        def worker() -> None:
            client = ServingClient(
                host, port, timeout=10.0, max_retries=8, backoff_base_s=0.05
            )
            while not self._stop.is_set():
                try:
                    body = client.predict(payload)
                except Exception as exc:  # noqa: BLE001 - collected, asserted
                    with self._lock:
                        self.errors.append(f"{type(exc).__name__}: {exc}")
                    return
                with self._lock:
                    self.bodies.append(body)

        self.threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(n_threads)
        ]
        for t in self.threads:
            t.start()

    def stop(self) -> None:
        self._stop.set()
        for t in self.threads:
            t.join(timeout=30)


def _model_generations(chost: str, cport: int) -> list[dict]:
    """Per-worker ``{name: generation}`` from the control /models fan-out."""
    status, _h, body = http_call(chost, cport, "GET", "/models", timeout=10.0)
    check(status == 200, "control GET /models", body)
    return [
        {name: m["generation"] for name, m in w["body"]["models"].items()}
        for w in body["workers"]
        if w.get("status") == 200
    ]


def scenario_kill_and_heal(paths, payload, expected, chaos_dir) -> None:
    from repro.serving.faults import ProcessChaos

    chaos = ProcessChaos(chaos_dir)
    serve = ServeProcess(
        [
            "--model", f"default={paths['ap']}",
            "--model", f"mcpat={paths['mcpat']}",
            "--port", "0",
            "--workers", "2",
            "--max-wait-ms", "0",
            "--startup-timeout", "10",
            "--restart-backoff-ms", "50",
            "--max-restarts", "10",
        ],
        env_extra={ProcessChaos.ENV: chaos_dir},
    )
    try:
        serve.wait_healthy()
        chost, cport = _control_addr(serve)
        print(f"[A] pool on {serve.host}:{serve.port}, control {serve.control}",
              flush=True)

        spray = _Spray(serve.host, serve.port, payload)
        time.sleep(0.5)  # let load establish on both workers

        # SIGKILL one ready worker mid-load.
        victims = _ready_pids(chost, cport)
        check(len(victims) == 2, "two ready workers before the kill", victims)
        os.kill(victims[0], signal.SIGKILL)
        print(f"[A] SIGKILLed worker pid {victims[0]}", flush=True)

        # While degraded (or already healed on a fast machine), hot
        # reload mcpat through the control plane; >=1 acceptance moves
        # fleet state and enters the journal.
        status, _h, body = http_call(
            chost, cport, "PUT", "/models/mcpat",
            {"path": paths["mcpat"]}, timeout=30.0,
        )
        check(status in (200, 502), "mid-chaos control-plane PUT", body)
        check(body.get("accepted", 0) >= 1,
              "mid-chaos PUT accepted by >= 1 worker", body)

        # The supervisor must heal: 2 ready again, victim replaced.
        wait_until(
            lambda: _pool_state(chost, cport) == ("ok", 2), timeout=30.0
        )
        healed = _ready_pids(chost, cport)
        check(victims[0] not in healed, "victim pid was replaced", healed)
        print(f"[A] healed: ready workers {healed}", flush=True)

        # Journal-replay convergence: both workers must hold the same
        # model names at the same generations (mcpat reloaded -> gen 2).
        gens = _model_generations(chost, cport)
        check(len(gens) == 2 and gens[0] == gens[1],
              "restarted worker must converge to the survivors' models",
              gens)
        check(gens[0].get("mcpat") == 2,
              "mid-chaos reload must reach generation 2 everywhere", gens)

        # Now a replacement that hangs in startup: the supervisor must
        # kill it at the deadline and bring up a second replacement.
        chaos.arm("hang-startup", 1, hang_s=120)
        os.kill(healed[0], signal.SIGKILL)
        print(f"[A] SIGKILLed worker pid {healed[0]} (replacement will hang)",
              flush=True)
        wait_until(
            lambda: _pool_state(chost, cport) == ("ok", 2), timeout=60.0
        )
        check("did not announce within" in serve.output,
              "supervisor must report the startup-hung worker", serve.output)
        gens = _model_generations(chost, cport)
        check(len(gens) == 2 and gens[0] == gens[1],
              "post-hang replacement must converge too", gens)

        # Stop the spray: zero client errors, every body bitwise.
        spray.stop()
        check(not spray.errors,
              "no accepted request may be lost across worker deaths",
              spray.errors[:3])
        check(len(spray.bodies) > 0, "spray must have served requests")
        for body in spray.bodies:
            check(body["total"] in expected,
                  "every response must stay bitwise under chaos", body)
        print(f"[A] {len(spray.bodies)} sprayed requests, 0 errors, "
              "all bitwise", flush=True)
    except BaseException:
        serve.kill()
        print(serve.output)
        raise
    code = serve.terminate_and_wait()
    check(code == 0, f"pool must drain and exit 0, got {code}", serve.output)
    check("all workers drained" in serve.output, "pool drain message",
          serve.output)
    print("[A] ok: kill/heal/replay-convergence/startup-hang/drain", flush=True)


def scenario_crash_drain(paths, chaos_dir) -> None:
    from repro.serving.faults import ProcessChaos

    ProcessChaos(chaos_dir).arm("crash-drain", 1, exit_code=7)
    serve = ServeProcess(
        [
            "--model", f"default={paths['ap']}",
            "--port", "0",
            "--workers", "2",
        ],
        env_extra={ProcessChaos.ENV: chaos_dir},
    )
    try:
        serve.wait_healthy()
    except BaseException:
        serve.kill()
        print(serve.output)
        raise
    start = time.monotonic()
    code = serve.terminate_and_wait(timeout=60.0)
    elapsed = time.monotonic() - start
    check(code != 0, "a crash mid-drain must fail the pool exit",
          serve.output)
    check("workers exited non-zero" in serve.output,
          "crash-drain diagnostics", serve.output)
    check(elapsed < 60.0, "crash-drain exit must be bounded", elapsed)
    print(f"[B] ok: crash-drain -> exit {code} in {elapsed:.1f}s", flush=True)


def scenario_crash_loop(paths, chaos_dir) -> None:
    from repro.serving.faults import ProcessChaos

    ProcessChaos(chaos_dir).arm("crash-startup", 8, exit_code=3)
    # Raw Popen, not ServeProcess: this pool never announces (it crash
    # -loops on startup), so waiting for the announce would be wrong.
    env = repro_env()
    env[ProcessChaos.ENV] = chaos_dir
    start = time.monotonic()
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "serve",
            "--model", f"default={paths['ap']}",
            "--port", "0",
            "--workers", "2",
            "--max-restarts", "2",
            "--restart-backoff-ms", "10",
            "--startup-timeout", "5",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    elapsed = time.monotonic() - start
    output = proc.stdout + proc.stderr
    check(proc.returncode == 1,
          f"crash loop must exit 1, got {proc.returncode}", output)
    check("crash-loop" in output, "crash-loop diagnostics header", output)
    check("(slot" in output and "pid" in output,
          "per-pid crash diagnostics", output)
    print(f"[C] ok: crash loop -> exit 1 in {elapsed:.1f}s "
          "with per-pid diagnostics", flush=True)


def main() -> int:
    from repro.serving.fleet import reuse_port_supported

    if not reuse_port_supported():
        print("chaos smoke skipped: no os.fork/SO_REUSEPORT on this platform",
              flush=True)
        return 0

    import repro.api as api
    from repro.arch.config import config_by_name
    from repro.arch.workloads import workload_by_name
    from repro.serving import wire
    from repro.sim.perf import PerfSimulator

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        paths = {"ap": f"{tmp}/ap.json", "mcpat": f"{tmp}/mcpat.json"}
        print("fitting autopower + mcpat ...", flush=True)
        fit_model("autopower", paths["ap"])
        fit_model("mcpat", paths["mcpat"])

        config = config_by_name("C8")
        workload = workload_by_name("dhrystone")
        request = api.PredictRequest(
            config, PerfSimulator().run(config, workload), workload
        )
        payload = wire.encode_request(request)
        service = api.PredictionService(api.load_model(paths["ap"]))
        expected = {float(r.total) for r in service.submit_many([request])}

        scenario_kill_and_heal(
            paths, payload, expected, os.path.join(tmp, "chaos-a")
        )
        scenario_crash_drain(paths, os.path.join(tmp, "chaos-b"))
        scenario_crash_loop(paths, os.path.join(tmp, "chaos-c"))

    print("chaos smoke ok", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
