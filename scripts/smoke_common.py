"""Shared plumbing for the serving smoke scripts.

The smoke scripts (``smoke_gateway.py``, ``smoke_drain.py``,
``smoke_fleet.py``) run the *installed artifact the user runs* — a real
``python -m repro serve`` subprocess — and talk to it over real HTTP.
They run identically locally and in CI: every serve binds ``--port 0``
and the scripts parse the machine-parseable ``REPRO-SERVING addr=...``
announce line instead of racing on a hardcoded port.
"""

from __future__ import annotations

import http.client
import json
import os
import subprocess
import sys
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.serving.fleet import parse_announce  # noqa: E402


def repro_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def fit_model(method: str, out: str, **fit_kwargs) -> None:
    """Fit a registered method in-process and save it to ``out``."""
    import repro.api as api

    api.save_model(api.fit(method, **fit_kwargs), out)


def http_call(
    host: str,
    port: int,
    method: str,
    path: str,
    payload=None,
    token: str | None = None,
    timeout: float = 60.0,
):
    """One HTTP round trip; returns (status, lowercase headers, body)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    headers = {"Content-Type": "application/json"}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    body = None if payload is None else json.dumps(payload)
    try:
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        lowered = {k.lower(): v for k, v in response.getheaders()}
        decoded = json.loads(raw.decode()) if raw else None
        return response.status, lowered, decoded
    finally:
        conn.close()


class ServeProcess:
    """A live ``python -m repro serve`` subprocess plus its announce.

    Captures stdout on a pump thread (so the child never blocks on a
    full pipe), waits for the ``REPRO-SERVING`` announce line, and
    exposes ``host`` / ``port`` / ``control`` parsed from it.
    ``env_extra`` adds environment variables (e.g. ``REPRO_CHAOS_DIR``
    for the process-chaos smoke).
    """

    def __init__(
        self,
        serve_args: list[str],
        come_up_timeout: float = 120.0,
        env_extra: dict | None = None,
    ):
        env = repro_env()
        if env_extra:
            env.update(env_extra)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", *serve_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.lines: list[str] = []
        self._terminated = False
        self._announced = threading.Event()
        self.announce: dict | None = None
        self._pump = threading.Thread(target=self._read_stdout, daemon=True)
        self._pump.start()
        if not self._announced.wait(come_up_timeout):
            self.proc.kill()
            raise SystemExit(
                "serve never announced within "
                f"{come_up_timeout:g}s; output so far:\n" + self.output
            )
        if self.announce is None:  # stdout closed without an announce
            raise SystemExit(
                f"serve exited before coming up; output:\n{self.output}"
            )
        self.host = self.announce["host"]
        self.port = self.announce["port"]
        self.control = self.announce["control"]

    def _read_stdout(self) -> None:
        for line in self.proc.stdout:
            self.lines.append(line)
            if self.announce is None:
                self.announce = parse_announce(line)
                if self.announce is not None:
                    self._announced.set()
        self._announced.set()  # EOF: unblock the waiter either way

    @property
    def output(self) -> str:
        return "".join(self.lines)

    def wait_healthy(self, timeout: float = 30.0, token=None) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                status, _h, body = http_call(
                    self.host, self.port, "GET", "/healthz", timeout=2.0
                )
            except OSError:
                time.sleep(0.1)
                continue
            if status == 200 and body.get("status") == "ok":
                return
            time.sleep(0.1)
        raise SystemExit(f"gateway never became healthy:\n{self.output}")

    def terminate(self) -> None:
        """Send exactly one SIGTERM (a second one force-quits a drain)."""
        if not self._terminated and self.proc.poll() is None:
            self._terminated = True
            self.proc.terminate()

    def terminate_and_wait(self, timeout: float = 60.0) -> int:
        """SIGTERM (graceful drain, at most once) and wait for exit."""
        self.terminate()
        code = self.proc.wait(timeout=timeout)
        self._pump.join(timeout=10)
        return code

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


def wait_until(predicate, timeout: float = 30.0, interval: float = 0.1):
    """Poll ``predicate`` until it returns a truthy value, or fail.

    The predicate may raise ``OSError`` (e.g. a connection refused while
    a worker restarts) — that counts as "not yet".  Returns the truthy
    value.
    """
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() < deadline:
        try:
            last = predicate()
        except OSError as exc:
            last = f"OSError: {exc}"
        else:
            if last:
                return last
        time.sleep(interval)
    raise SystemExit(
        f"SMOKE FAILURE: condition not reached within {timeout:g}s "
        f"(last: {last!r})"
    )


def check(condition: bool, message: str, context=None) -> None:
    """Assert that survives ``python -O`` (CI may strip asserts)."""
    if not condition:
        raise SystemExit(
            f"SMOKE FAILURE: {message}"
            + ("" if context is None else f"\ncontext: {context!r}")
        )
