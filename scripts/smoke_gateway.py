"""Gateway smoke: serve a fitted model, hit it over HTTP, verify bitwise.

The end-to-end check CI (and any operator) runs against the real
``python -m repro serve`` artifact:

1. fit (or reuse) a model file,
2. serve it on an ephemeral port (``--port 0``; the bound address comes
   from the ``REPRO-SERVING`` announce line),
3. ``GET /healthz``, ``POST /predict`` a total and a report request,
   ``GET /stats``,
4. assert the HTTP responses are bitwise-equal to direct
   :class:`repro.api.PredictionService` calls,
5. SIGTERM and require a clean (exit 0) drain.

Usage::

    python scripts/smoke_gateway.py [--model model.json] [--method autopower]
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from smoke_common import ServeProcess, check, fit_model, http_call


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model", default=None, metavar="PATH",
        help="model file to serve (default: fit --method into a temp file)",
    )
    parser.add_argument(
        "--method", default="autopower",
        help="method to fit when --model is absent (default: autopower)",
    )
    args = parser.parse_args(argv)

    import repro.api as api
    from repro.arch.config import config_by_name
    from repro.arch.workloads import workload_by_name
    from repro.serving import wire
    from repro.sim.perf import PerfSimulator

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        model_path = args.model
        if model_path is None:
            model_path = f"{tmp}/model.json"
            print(f"fitting {args.method} -> {model_path}", flush=True)
            fit_model(args.method, model_path)
        model = api.load_model(model_path)

        config = config_by_name("C8")
        workload = workload_by_name("dhrystone")
        events = PerfSimulator().run(config, workload)
        total_req = api.PredictRequest(config, events, workload)
        report_req = api.PredictRequest(config, events, workload, kind="report")
        direct = api.PredictionService(model).submit_many(
            [total_req, report_req]
        )

        serve = ServeProcess(["--model", model_path, "--port", "0"])
        try:
            serve.wait_healthy()
            print(f"gateway up on {serve.host}:{serve.port}", flush=True)

            status, _h, health = http_call(
                serve.host, serve.port, "GET", "/healthz"
            )
            check(status == 200 and health["status"] == "ok", "healthz", health)

            status, _h, total = http_call(
                serve.host, serve.port, "POST", "/predict",
                wire.encode_request(total_req),
            )
            check(status == 200, "POST /predict (total)", total)
            check(
                total["total"] == float(direct[0].total),
                "total response must be bitwise-equal to the direct call",
                (total["total"], float(direct[0].total)),
            )

            status, _h, report = http_call(
                serve.host, serve.port, "POST", "/predict",
                wire.encode_request(report_req),
            )
            check(status == 200, "POST /predict (report)", report)
            check(
                report["report"]["total"] == float(direct[1].report.total),
                "report total must be bitwise-equal to the direct call",
                (report["report"]["total"], float(direct[1].report.total)),
            )

            status, _h, stats = http_call(
                serve.host, serve.port, "GET", "/stats"
            )
            check(status == 200, "GET /stats", stats)
            check(
                stats["gateway"]["predict_responses"] == 2,
                "stats must count both served requests",
                stats["gateway"],
            )
        except BaseException:
            serve.kill()
            print(serve.output)
            raise
        code = serve.terminate_and_wait()
        check(code == 0, f"serve must drain and exit 0, got {code}",
              serve.output)
        check("drained; exiting" in serve.output, "drain message",
              serve.output)
    print(f"gateway smoke ok: {total['total']} mW (bitwise), clean exit")
    return 0


if __name__ == "__main__":
    sys.exit(main())
