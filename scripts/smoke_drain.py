"""Drain smoke: SIGTERM under load exits 0 and in-flight requests arrive.

Launches a real ``python -m repro serve`` subprocess on an ephemeral
port, fires concurrent ``POST /predict`` requests, sends ``SIGTERM``
while they are in flight, and requires:

* the process drains and exits 0 (printing ``drained; exiting``),
* every request either completes 200 **bitwise-equal** to the direct
  service call, answers a retryable 503 (draining), or is refused at
  the closed listener — never a corrupt or dropped-on-the-floor answer,
* at least one in-flight request completes.

Usage::

    python scripts/smoke_drain.py [--model model.json] [--method autopower]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading

from smoke_common import ServeProcess, check, fit_model


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default=None, metavar="PATH")
    parser.add_argument("--method", default="autopower")
    parser.add_argument("--clients", type=int, default=8)
    args = parser.parse_args(argv)

    import repro.api as api
    from repro.arch.config import config_by_name
    from repro.arch.workloads import workload_by_name
    from repro.serving import wire
    from repro.sim.perf import PerfSimulator

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        model_path = args.model
        if model_path is None:
            model_path = f"{tmp}/model.json"
            print(f"fitting {args.method} -> {model_path}", flush=True)
            fit_model(args.method, model_path)
        model = api.load_model(model_path)

        config = config_by_name("C8")
        workload = workload_by_name("dhrystone")
        request = api.PredictRequest(
            config, PerfSimulator().run(config, workload), workload
        )
        expected = float(api.PredictionService(model).predict(request).total)
        payload = json.dumps(wire.encode_request(request))

        serve = ServeProcess(
            ["--model", model_path, "--port", "0", "--drain-timeout", "15"]
        )
        try:
            serve.wait_healthy()
            print(f"gateway up on {serve.host}:{serve.port}", flush=True)

            outcomes = []

            def post() -> None:
                import http.client

                try:
                    conn = http.client.HTTPConnection(
                        serve.host, serve.port, timeout=30
                    )
                    conn.request(
                        "POST", "/predict", body=payload,
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    outcomes.append(
                        (response.status,
                         json.loads(response.read().decode()))
                    )
                    conn.close()
                except OSError as exc:  # raced past the closed listener
                    outcomes.append(("refused", str(exc)))

            threads = [
                threading.Thread(target=post) for _ in range(args.clients)
            ]
            for t in threads:
                t.start()
            # SIGTERM while the requests are in flight: the gateway must
            # drain them to completion, then exit 0.
            serve.terminate()
            for t in threads:
                t.join(60)
        except BaseException:
            serve.kill()
            print(serve.output)
            raise
        code = serve.terminate_and_wait()
        print(serve.output)
        check(code == 0, f"serve must drain and exit 0, got {code}")
        check("drained; exiting" in serve.output, "drain message")
        served = [o for o in outcomes if o[0] == 200]
        for status, body in outcomes:
            if status == 200:
                check(
                    body["total"] == expected,
                    "drained response must stay bitwise-equal",
                    (body, expected),
                )
            else:
                check(
                    status in (503, "refused"),
                    "non-200 outcomes must be a retryable shed or refusal",
                    (status, body),
                )
        check(bool(served), f"no in-flight request completed: {outcomes}")
    print(
        f"drain smoke ok: {len(served)}/{args.clients} served bitwise, exit 0"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
