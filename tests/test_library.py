"""Unit tests for repro.library (std cells + SRAM compiler)."""

import pytest

from repro.library.sram_compiler import SramCompiler
from repro.library.stdcell import CombCellSpec, TechLibrary, default_library


class TestTechLibrary:
    def test_default_library_constructs(self):
        lib = default_library()
        assert lib.name == "synth40"
        assert lib.frequency_ghz == 1.0

    def test_p_reg_lookup_positive(self):
        lib = default_library()
        assert lib.p_reg_mw > 0
        assert lib.p_latch_mw > 0

    def test_latch_pin_costs_more_than_reg_pin(self):
        # ICG latches are larger than a flop clock pin in most libraries.
        lib = default_library()
        assert lib.p_latch_mw > lib.p_reg_mw

    def test_power_conversion_at_1ghz_identity(self):
        lib = default_library()
        assert lib.power_mw(3.5) == pytest.approx(3.5)

    def test_power_conversion_scales_with_frequency(self):
        lib = TechLibrary(frequency_ghz=2.0)
        assert lib.power_mw(1.0) == pytest.approx(2.0)

    def test_comb_cell_lookup(self):
        lib = default_library()
        assert lib.comb_cell("nand2").switch_energy_pj > 0
        with pytest.raises(KeyError):
            lib.comb_cell("nand99")

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            TechLibrary(frequency_ghz=0.0)

    def test_invalid_gated_share_rejected(self):
        with pytest.raises(ValueError):
            TechLibrary(clock_tree_gated_share=1.5)

    def test_invalid_cell_spec_rejected(self):
        with pytest.raises(ValueError):
            CombCellSpec("bad", -1.0, 0.0)


class TestSramCompiler:
    def test_legal_shapes(self):
        comp = SramCompiler()
        assert comp.is_legal(64, 256)
        assert not comp.is_legal(65, 256)
        assert not comp.is_legal(64, 257)

    def test_smallest_width_at_least(self):
        comp = SramCompiler()
        assert comp.smallest_width_at_least(9) == 16
        assert comp.smallest_width_at_least(128) == 128
        assert comp.smallest_width_at_least(129) is None

    def test_smallest_depth_at_least(self):
        comp = SramCompiler()
        assert comp.smallest_depth_at_least(8) == 16
        assert comp.smallest_depth_at_least(1024) == 1024
        assert comp.smallest_depth_at_least(2000) is None

    def test_macro_energies_increase_with_width(self):
        comp = SramCompiler()
        narrow = comp.macro(16, 128)
        wide = comp.macro(128, 128)
        assert wide.read_energy_pj > narrow.read_energy_pj
        assert wide.write_energy_pj > narrow.write_energy_pj

    def test_macro_energies_increase_with_depth(self):
        comp = SramCompiler()
        shallow = comp.macro(64, 32)
        deep = comp.macro(64, 1024)
        assert deep.read_energy_pj > shallow.read_energy_pj

    def test_write_costs_more_than_read(self):
        comp = SramCompiler()
        for macro in comp.all_macros():
            assert macro.write_energy_pj > macro.read_energy_pj

    def test_leakage_proportional_to_bits(self):
        comp = SramCompiler()
        small = comp.macro(8, 16)
        big = comp.macro(128, 1024)
        ratio = big.leakage_mw / small.leakage_mw
        assert ratio == pytest.approx(big.bits / small.bits)

    def test_illegal_shape_rejected(self):
        with pytest.raises(ValueError, match="not supported"):
            SramCompiler().macro(30, 128)

    def test_all_macros_count(self):
        comp = SramCompiler()
        assert len(comp.all_macros()) == len(comp.widths) * len(comp.depths)

    def test_macro_name(self):
        assert SramCompiler().macro(64, 256).name == "sram_256x64"

    def test_custom_grid_validation(self):
        with pytest.raises(ValueError):
            SramCompiler(widths=(), depths=(16,))
        with pytest.raises(ValueError):
            SramCompiler(widths=(8, 8), depths=(16,))
        with pytest.raises(ValueError):
            SramCompiler(widths=(-8,), depths=(16,))
