"""Equivalence suite for the vectorized tree engine.

A deliberately naive scalar implementation (per-candidate Python loops,
per-row tree traversal) serves as the reference; the vectorized /
histogram engines must reproduce it:

* exact mode — identical tree *structure* (feature, threshold, leaf
  values) and per-row predictions on randomized datasets,
* hist mode — identical structure when every feature has few distinct
  values (bin edges degenerate to the exact midpoints), tolerance-bounded
  training fit otherwise,
* the flattened struct-of-arrays representation — lossless round-trip
  through :mod:`repro.ml.serialize`, including the legacy nested format,
* the batched prediction path — bitwise-equal to scalar prediction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.events import EVENT_NAMES, EventBatch
from repro.core.autopower import events_at_scale
from repro.ml.gbm import GradientBoostingRegressor
from repro.ml.serialize import gbm_from_dict, gbm_to_dict, tree_from_dict, tree_to_dict
from repro.ml.tree import FlatTree, RegressionTree

GAIN_EPS = 1e-12


# -- scalar reference -------------------------------------------------------
def _reference_split(X, grad, hess, idx, reg_lambda, gamma, min_child_weight):
    """Per-candidate scalar split search (feature-major scan, max score)."""
    gsum = float(grad[idx].sum())
    hsum = float(hess[idx].sum())
    parent = gsum * gsum / (hsum + reg_lambda)
    best_score = -np.inf
    best = None
    for feature in range(X.shape[1]):
        values = X[idx, feature]
        order = np.argsort(values, kind="stable")
        sv = values[order]
        sg = grad[idx][order]
        sh = hess[idx][order]
        gl = np.cumsum(sg)
        hl = np.cumsum(sh)
        for i in range(idx.size - 1):
            if sv[i + 1] == sv[i]:
                continue
            hl_i = float(hl[i])
            hr_i = hsum - hl_i
            if hl_i < min_child_weight or hr_i < min_child_weight:
                continue
            gl_i = float(gl[i])
            gr_i = gsum - gl_i
            score = gl_i * gl_i / (hl_i + reg_lambda) + gr_i * gr_i / (
                hr_i + reg_lambda
            )
            if score > best_score:
                best_score = score
                best = (feature, i, order)
    if best is None:
        return None
    gain = 0.5 * (best_score - parent) - gamma
    if not gain > GAIN_EPS:
        return None
    feature, pos, order = best
    sv = X[idx, feature][order]
    threshold = 0.5 * (sv[pos] + sv[pos + 1])
    return feature, float(threshold), idx[order[: pos + 1]], idx[order[pos + 1 :]]


def _reference_build(X, grad, hess, idx, depth, params):
    """Reference tree as nested dicts."""
    gsum = float(grad[idx].sum())
    hsum = float(hess[idx].sum())
    node = {
        "value": -gsum / (hsum + params["reg_lambda"]),
        "n_samples": int(idx.size),
    }
    if depth < params["max_depth"] and idx.size >= params["min_samples_split"]:
        best = _reference_split(
            X,
            grad,
            hess,
            idx,
            params["reg_lambda"],
            params["gamma"],
            params["min_child_weight"],
        )
        if best is not None:
            feature, threshold, left_idx, right_idx = best
            node["feature"] = feature
            node["threshold"] = threshold
            node["left"] = _reference_build(X, grad, hess, left_idx, depth + 1, params)
            node["right"] = _reference_build(
                X, grad, hess, right_idx, depth + 1, params
            )
    return node


def _reference_tree(X, y, **kw):
    params = {
        "max_depth": kw.get("max_depth", 3),
        "min_samples_split": kw.get("min_samples_split", 2),
        "min_child_weight": kw.get("min_child_weight", 1.0),
        "reg_lambda": kw.get("reg_lambda", 1.0),
        "gamma": kw.get("gamma", 0.0),
    }
    grad = -np.asarray(y, dtype=float)
    hess = np.ones_like(grad)
    return _reference_build(
        np.asarray(X, dtype=float), grad, hess, np.arange(len(y)), 0, params
    )


def _reference_predict_row(node, row):
    while "feature" in node:
        node = node["left"] if row[node["feature"]] <= node["threshold"] else node["right"]
    return node["value"]


def _assert_same_structure(ref: dict, node, rtol=1e-12):
    assert node.value == pytest.approx(ref["value"], rel=rtol, abs=1e-12)
    assert node.n_samples == ref["n_samples"]
    if "feature" in ref:
        assert not node.is_leaf, "engine made a leaf where reference split"
        assert node.feature == ref["feature"]
        assert node.threshold == pytest.approx(ref["threshold"], rel=rtol)
        _assert_same_structure(ref["left"], node.left, rtol)
        _assert_same_structure(ref["right"], node.right, rtol)
    else:
        assert node.is_leaf, "engine split where reference made a leaf"


def _datasets():
    cases = []
    for seed in range(6):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(8, 120))
        f = int(rng.integers(1, 12))
        X = rng.normal(size=(n, f))
        y = rng.normal(size=n) + 3.0 * np.sin(X[:, 0])
        cases.append((X, y))
    # few-shot shape: 12 samples, like AutoPower's 2-config x 6-workload fit
    rng = np.random.default_rng(99)
    cases.append((rng.uniform(0, 4, size=(12, 30)), rng.uniform(50, 80, size=12)))
    # heavy value ties
    rng = np.random.default_rng(7)
    cases.append(
        (rng.integers(0, 4, size=(60, 5)).astype(float), rng.normal(size=60))
    )
    return cases


class TestExactEquivalence:
    @pytest.mark.parametrize("case", range(8))
    def test_structure_matches_reference(self, case):
        X, y = _datasets()[case]
        kw = dict(max_depth=4, reg_lambda=0.7, min_child_weight=2.0, gamma=0.01)
        tree = RegressionTree(tree_method="exact", **kw).fit(X, y)
        ref = _reference_tree(X, y, **kw)
        _assert_same_structure(ref, tree.root_)

    @pytest.mark.parametrize("case", range(8))
    def test_predictions_match_reference(self, case):
        X, y = _datasets()[case]
        tree = RegressionTree(max_depth=5, reg_lambda=0.3).fit(X, y)
        ref = _reference_tree(X, y, max_depth=5, reg_lambda=0.3)
        got = tree.predict(X)
        want = np.array([_reference_predict_row(ref, row) for row in X])
        # Leaf G/H sums are read off cumulative arrays instead of being
        # re-reduced per node, so values agree to float associativity —
        # well inside the documented 1e-9 bound.
        assert np.allclose(got, want, rtol=1e-9, atol=1e-12)

    def test_min_child_weight_zero_matches_reference(self):
        # Regression: mcw=0 must not push the candidate bound past n-1.
        rng = np.random.default_rng(12)
        X = rng.normal(size=(30, 3))
        y = rng.normal(size=30)
        kw = dict(max_depth=3, min_child_weight=0.0, reg_lambda=0.5)
        tree = RegressionTree(**kw).fit(X, y)
        ref = _reference_tree(X, y, **kw)
        _assert_same_structure(ref, tree.root_)

    def test_gbm_fused_predict_matches_per_row_traversal(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, size=(40, 6))
        y = 10 * np.sin(np.pi * X[:, 0] * X[:, 1]) + 5 * X[:, 2]
        model = GradientBoostingRegressor(n_estimators=60, learning_rate=0.1).fit(X, y)
        X_test = rng.uniform(-0.5, 1.5, size=(200, 6))
        got = model.predict(X_test)
        # reference: sequential per-row, per-tree Python traversal
        want = np.full(X_test.shape[0], model.base_score_)
        for tree, cols in model.trees_:
            for i, row in enumerate(X_test[:, cols]):
                node = tree.root_
                while not node.is_leaf:
                    node = (
                        node.left
                        if row[node.feature] <= node.threshold
                        else node.right
                    )
                want[i] += model.learning_rate * node.value
        assert np.allclose(got, want, rtol=1e-9, atol=0)


class TestHistEquivalence:
    def test_hist_matches_exact_on_few_distinct_values(self):
        # With fewer distinct values than max_bin, the quantile edges are
        # the exact-midpoint thresholds, so the trees must be identical.
        rng = np.random.default_rng(11)
        X = rng.integers(0, 12, size=(100, 4)).astype(float)
        y = X[:, 0] * 2.0 - X[:, 1] + rng.normal(size=100)
        exact = RegressionTree(max_depth=4, tree_method="exact").fit(X, y)
        hist = RegressionTree(max_depth=4, tree_method="hist", max_bin=64).fit(X, y)
        fe, fh = exact.ensure_flat(), hist.ensure_flat()
        assert np.array_equal(fe.feature, fh.feature)
        # Thresholds may use different representatives of the same gap
        # (node-local midpoint vs global bin edge); the partitions must be
        # identical, so node sizes and training predictions agree.
        assert np.array_equal(fe.n_samples, fh.n_samples)
        assert np.allclose(exact.predict(X), hist.predict(X), rtol=1e-9, atol=1e-12)

    def test_hist_gbm_fits_continuous_data_within_tolerance(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(0, 1, size=(400, 5))
        y = 10 * np.sin(np.pi * X[:, 0] * X[:, 1]) + 5 * X[:, 2]
        kw = dict(n_estimators=120, learning_rate=0.1, max_depth=4)
        exact = GradientBoostingRegressor(tree_method="exact", **kw).fit(X, y)
        hist = GradientBoostingRegressor(tree_method="hist", max_bin=64, **kw).fit(X, y)
        rmse_exact = float(np.sqrt(np.mean((exact.predict(X) - y) ** 2)))
        rmse_hist = float(np.sqrt(np.mean((hist.predict(X) - y) ** 2)))
        assert rmse_hist < max(2.0 * rmse_exact, 0.15 * float(np.std(y)))

    def test_hist_respects_min_child_weight(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(size=(30, 3))
        y = rng.normal(size=30)
        tree = RegressionTree(
            max_depth=4, tree_method="hist", min_child_weight=8.0
        ).fit(X, y)
        flat = tree.ensure_flat()
        internal = flat.feature >= 0
        for i in np.nonzero(internal)[0]:
            assert flat.n_samples[flat.left[i]] >= 8
            assert flat.n_samples[flat.right[i]] >= 8


class TestFlattenedRepresentation:
    def test_flat_arrays_round_trip_serialization(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(80, 4))
        y = np.sin(X[:, 0]) + X[:, 1] ** 2
        tree = RegressionTree(max_depth=4).fit(X, y)
        clone = tree_from_dict(tree_to_dict(tree))
        a, b = tree.ensure_flat(), clone.ensure_flat()
        for field in ("feature", "threshold", "left", "right", "value", "n_samples"):
            assert np.array_equal(getattr(a, field), getattr(b, field)), field
        assert np.array_equal(tree.predict(X), clone.predict(X))

    def test_legacy_nested_format_still_loads(self):
        legacy = {
            "kind": "tree",
            "n_features": 1,
            "max_depth": 1,
            "reg_lambda": 0.0,
            "root": {
                "value": 3.0,
                "n_samples": 20,
                "feature": 0,
                "threshold": 9.5,
                "left": {"value": 1.0, "n_samples": 10},
                "right": {"value": 5.0, "n_samples": 10},
            },
        }
        tree = tree_from_dict(legacy)
        pred = tree.predict(np.array([[0.0], [20.0]]))
        assert pred[0] == pytest.approx(1.0)
        assert pred[1] == pytest.approx(5.0)

    def test_flat_tree_node_graph_round_trip(self):
        rng = np.random.default_rng(8)
        X = rng.normal(size=(50, 3))
        y = rng.normal(size=50)
        tree = RegressionTree(max_depth=3).fit(X, y)
        rebuilt = FlatTree.from_node(tree.root_)
        for field in ("feature", "threshold", "left", "right", "value", "n_samples"):
            assert np.array_equal(
                getattr(tree.ensure_flat(), field), getattr(rebuilt, field)
            ), field

    def test_hist_gbm_serializes_with_tree_method(self):
        rng = np.random.default_rng(6)
        X = rng.uniform(size=(50, 3))
        y = rng.normal(size=50)
        model = GradientBoostingRegressor(
            n_estimators=10, tree_method="hist", max_bin=32
        ).fit(X, y)
        state = gbm_to_dict(model)
        assert state["params"]["tree_method"] == "hist"
        clone = gbm_from_dict(state)
        assert clone.tree_method == "hist"
        assert np.array_equal(model.predict(X), clone.predict(X))


class TestBatchedPredictionEquivalence:
    def test_predict_reports_matches_scalar_reports(self, autopower2, flow, c8, dhrystone):
        events = flow.run(c8, dhrystone).events
        anchors = np.linspace(0.6, 1.4, 7)
        batch = events_at_scale(events, anchors, 50)
        reports = autopower2.predict_reports(c8, batch, dhrystone)
        for i, s in enumerate(anchors):
            ref = autopower2.predict_report(
                c8, events_at_scale(events, float(s), 50), dhrystone
            )
            for got, want in zip(reports[i].components, ref.components):
                assert got.clock == pytest.approx(want.clock, rel=1e-9, abs=1e-12)
                assert got.sram == pytest.approx(want.sram, rel=1e-9, abs=1e-12)
                assert got.register == pytest.approx(want.register, rel=1e-9, abs=1e-12)
                assert got.comb == pytest.approx(want.comb, rel=1e-9, abs=1e-12)

    def test_predict_totals_matches_reports(self, autopower2, flow, c8, dhrystone):
        events = flow.run(c8, dhrystone).events
        batch = events_at_scale(events, np.linspace(0.8, 1.2, 5), 50)
        totals = autopower2.predict_totals(c8, batch, dhrystone)
        reports = autopower2.predict_reports(c8, batch, dhrystone)
        assert np.allclose(totals, [r.total for r in reports], rtol=1e-9)

    def test_predict_trace_matches_anchorwise_scalar_path(
        self, autopower2, flow, c8, dhrystone
    ):
        events = flow.run(c8, dhrystone).events
        scales = np.linspace(0.5, 1.5, 300)
        got = autopower2.predict_trace(c8, events, dhrystone, scales, n_anchors=9)
        anchors = np.linspace(0.5, 1.5, 9)
        powers = np.array(
            [
                autopower2.predict_total(
                    c8, events_at_scale(events, float(s), 50), dhrystone
                )
                for s in anchors
            ]
        )
        want = np.interp(scales, anchors, powers)
        assert np.allclose(got, want, rtol=1e-9)


class TestEventBatch:
    def test_events_at_scale_array_matches_scalar(self, flow, c8, dhrystone):
        events = flow.run(c8, dhrystone).events
        scales = np.array([0.5, 1.0, 1.7])
        batch = events_at_scale(events, scales, 50)
        assert isinstance(batch, EventBatch)
        assert len(batch) == 3
        for i, s in enumerate(scales):
            scalar = events_at_scale(events, float(s), 50)
            row = batch[i]
            for name in EVENT_NAMES:
                assert row.counts[name] == pytest.approx(
                    scalar.counts[name], rel=1e-12, abs=0
                ), name

    def test_rates_match_eventparams(self, flow, c8, dhrystone):
        events = flow.run(c8, dhrystone).events
        batch = EventBatch.from_events([events, events.scaled(2.0)])
        rates = batch.rates_for_component("LSU")
        want = events.rates_for_component("LSU")
        for name, vec in rates.items():
            assert vec[0] == pytest.approx(want[name], rel=1e-12)
            # scaling counts and cycles together leaves rates unchanged
            assert vec[1] == pytest.approx(want[name], rel=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            EventBatch(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            EventBatch(np.zeros((1, len(EVENT_NAMES))))  # cycles must be > 0

    def test_events_at_scale_rejects_bad_scales(self, flow, c8, dhrystone):
        events = flow.run(c8, dhrystone).events
        with pytest.raises(ValueError):
            events_at_scale(events, np.array([1.0, -0.5]), 50)
        with pytest.raises(ValueError):
            events_at_scale(events, np.array([]), 50)
