"""Unit tests for repro.rtl: design IR, SRAM plans, generator."""

import pytest

from repro.arch.components import COMPONENTS, sram_components
from repro.arch.config import BOOM_CONFIGS, config_by_name
from repro.rtl.design import ComponentRtl, SramBlockSpec, SramPositionRtl
from repro.rtl.generator import RtlGenerator
from repro.rtl.sram_plan import (
    SRAM_POSITION_PLANS,
    ScalingLaw,
    positions_for,
)


class TestSramBlockSpec:
    def test_capacity_and_throughput(self):
        block = SramBlockSpec(width=30, depth=8, count=2)
        assert block.capacity_bits == 480
        assert block.throughput_bits == 60
        assert block.bits_per_block == 240

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            SramBlockSpec(width=0, depth=8, count=1)
        with pytest.raises(ValueError):
            SramBlockSpec(width=8, depth=8, count=0)

    def test_mask_must_divide_width(self):
        with pytest.raises(ValueError, match="divisible"):
            SramBlockSpec(width=30, depth=8, count=1, mask_sectors=4)


class TestScalingLaw:
    def test_constant(self):
        law = ScalingLaw(12.0)
        assert law.evaluate(config_by_name("C1")) == 12.0

    def test_product(self):
        law = ScalingLaw(240.0, ("FetchWidth", "DecodeWidth"))
        assert law.evaluate(config_by_name("C1")) == 960.0  # 240*4*1
        assert law.evaluate(config_by_name("C15")) == 9600.0  # 240*8*5

    def test_inverse(self):
        law = ScalingLaw(1.0, ("RobEntry",), inverse_params=("DecodeWidth",))
        assert law.evaluate_int(config_by_name("C7")) == 27  # 81/3

    def test_non_integral_rejected(self):
        law = ScalingLaw(0.3, ("FetchWidth",))
        with pytest.raises(ValueError, match="non-integral"):
            law.evaluate_int(config_by_name("C1"))


class TestSramPlans:
    def test_fourteen_positions(self):
        assert len(SRAM_POSITION_PLANS) == 14

    def test_every_sram_component_has_a_plan(self):
        for comp in sram_components():
            assert positions_for(comp.name), comp.name

    def test_meta_matches_paper_table1(self):
        meta = next(p for p in SRAM_POSITION_PLANS if p.name == "meta")
        c1 = meta.block(config_by_name("C1"))
        c15 = meta.block(config_by_name("C15"))
        assert (c1.width, c1.depth, c1.count) == (120, 8, 1)
        assert (c15.width, c15.depth, c15.count) == (240, 40, 1)

    def test_all_plans_integral_for_all_configs(self):
        for plan in SRAM_POSITION_PLANS:
            for config in BOOM_CONFIGS:
                block = plan.block(config)  # raises on non-integral laws
                assert block.capacity_bits > 0

    def test_rob_payload_derived_scaling(self):
        # Width/depth individually non-linear; capacity linear in RobEntry.
        plan = next(p for p in SRAM_POSITION_PLANS if p.name == "rob_payload")
        for config in BOOM_CONFIGS:
            block = plan.block(config)
            assert block.capacity_bits == 24 * config["RobEntry"]


class TestGenerator:
    @pytest.fixture(scope="class")
    def designs(self):
        gen = RtlGenerator()
        return {c.name: gen.generate(c) for c in BOOM_CONFIGS}

    def test_all_components_present(self, designs):
        for design in designs.values():
            assert len(design.components) == len(COMPONENTS)

    def test_registers_positive_and_monotone_c1_c15(self, designs):
        for comp in COMPONENTS:
            r1 = designs["C1"].component(comp.name).registers
            r15 = designs["C15"].component(comp.name).registers
            assert 0 < r1 <= r15

    def test_total_registers_grow_with_scale(self, designs):
        totals = [designs[f"C{i}"].total_registers for i in (1, 5, 10, 15)]
        assert totals == sorted(totals)

    def test_sram_positions_attached_to_right_components(self, designs):
        design = designs["C8"]
        for comp in design.components:
            for pos in comp.sram_positions:
                assert pos.component == comp.name

    def test_deterministic(self):
        gen = RtlGenerator()
        c8 = config_by_name("C8")
        assert gen.generate(c8) == gen.generate(c8)

    def test_total_sram_bits_grow_with_scale(self, designs):
        assert designs["C1"].total_sram_bits < designs["C15"].total_sram_bits

    def test_unknown_component_lookup(self, designs):
        with pytest.raises(KeyError):
            designs["C1"].component("NoSuch")

    def test_unknown_position_lookup(self, designs):
        with pytest.raises(KeyError):
            designs["C1"].component("IFU").position("nope")


class TestDesignIr:
    def test_mismatched_position_component_rejected(self):
        pos = SramPositionRtl("x", "ROB", SramBlockSpec(8, 8, 1))
        with pytest.raises(ValueError, match="belongs to"):
            ComponentRtl(name="IFU", registers=10, comb_units=5.0, sram_positions=(pos,))

    def test_negative_registers_rejected(self):
        with pytest.raises(ValueError):
            ComponentRtl(name="IFU", registers=-1, comb_units=0.0)
