"""Unit and behaviour tests for the assembled AutoPower model."""

import numpy as np
import pytest

from repro.arch.config import config_by_name
from repro.arch.workloads import workload_by_name
from repro.core.autopower import AutoPower, events_at_scale
from repro.ml.metrics import mape, r2_score


class TestEventsAtScale:
    def test_window_cycles_set(self, flow, c8):
        events = flow.run(c8, workload_by_name("qsort")).events
        win = events_at_scale(events, 1.0, 50)
        assert win.cycles == 50.0

    def test_rates_scale_linearly(self, flow, c8):
        events = flow.run(c8, workload_by_name("qsort")).events
        base = events_at_scale(events, 1.0, 50)
        hot = events_at_scale(events, 1.5, 50)
        assert hot.rate("dcache_accesses") == pytest.approx(
            1.5 * base.rate("dcache_accesses")
        )

    def test_invalid_inputs(self, flow, c8):
        events = flow.run(c8, workload_by_name("qsort")).events
        with pytest.raises(ValueError):
            events_at_scale(events, 0.0, 50)
        with pytest.raises(ValueError):
            events_at_scale(events, 1.0, 0)


class TestPredictReport:
    def test_report_structure(self, autopower2, flow, c8):
        w = workload_by_name("dhrystone")
        res = flow.run(c8, w)
        report = autopower2.predict_report(c8, res.events, w)
        assert report.config_name == "C8"
        assert len(report.components) == 22
        assert report.total > 0

    def test_total_equals_group_sum(self, autopower2, flow, c8):
        w = workload_by_name("dhrystone")
        res = flow.run(c8, w)
        report = autopower2.predict_report(c8, res.events, w)
        group_sum = sum(
            report.group_total(g) for g in ("clock", "sram", "register", "comb")
        )
        assert report.total == pytest.approx(group_sum)

    def test_requires_fit(self, flow):
        model = AutoPower(library=flow.library)
        with pytest.raises(RuntimeError):
            model.predict_total(config_by_name("C1"), None, None)

    def test_training_configs_recorded(self, autopower2):
        assert autopower2.train_config_names == ("C1", "C15")

    def test_empty_fit_rejected(self, flow):
        with pytest.raises(ValueError):
            AutoPower(library=flow.library).fit_results([])


class TestFewShotAccuracy:
    """The paper's headline behaviour on the synthetic substrate."""

    def test_total_power_accuracy(self, autopower2, flow, test_configs, workloads):
        true, pred = [], []
        for config in test_configs:
            for w in workloads:
                res = flow.run(config, w)
                true.append(res.power.total)
                pred.append(autopower2.predict_total(config, res.events, w))
        # Paper: MAPE 4.36 %, R2 0.96 with 2 training configs.  Synthetic
        # substrate target band: well under 10 % and R2 above 0.88.
        assert mape(true, pred) < 10.0
        assert r2_score(true, pred) > 0.88

    def test_accuracy_on_training_configs_is_tight(
        self, autopower2, flow, train_configs, workloads
    ):
        true, pred = [], []
        for config in train_configs:
            for w in workloads:
                res = flow.run(config, w)
                true.append(res.power.total)
                pred.append(autopower2.predict_total(config, res.events, w))
        assert mape(true, pred) < 5.0

    def test_predictions_track_scale(self, autopower2, flow, workloads):
        # Predicted power must grow from small to large configurations.
        w = workloads[0]
        p2 = autopower2.predict_total(
            config_by_name("C2"), flow.run(config_by_name("C2"), w).events, w
        )
        p8 = autopower2.predict_total(
            config_by_name("C8"), flow.run(config_by_name("C8"), w).events, w
        )
        p14 = autopower2.predict_total(
            config_by_name("C14"), flow.run(config_by_name("C14"), w).events, w
        )
        assert p2 < p8 < p14


class TestTracePrediction:
    def test_trace_shape_and_positivity(self, autopower2, flow):
        c2 = config_by_name("C2")
        gemm = workload_by_name("gemm")
        events = flow.run(c2, gemm).events
        scales = np.linspace(0.6, 1.4, 300)
        trace = autopower2.predict_trace(c2, events, gemm, scales, n_anchors=17)
        assert trace.shape == (300,)
        assert np.all(trace > 0)

    def test_trace_monotone_in_scale(self, autopower2, flow):
        c2 = config_by_name("C2")
        gemm = workload_by_name("gemm")
        events = flow.run(c2, gemm).events
        lo = autopower2.predict_trace(c2, events, gemm, np.array([0.6]), n_anchors=17)
        hi = autopower2.predict_trace(c2, events, gemm, np.array([1.6]), n_anchors=17)
        assert hi[0] > lo[0]

    def test_constant_scales_supported(self, autopower2, flow):
        c2 = config_by_name("C2")
        gemm = workload_by_name("gemm")
        events = flow.run(c2, gemm).events
        trace = autopower2.predict_trace(c2, events, gemm, np.full(10, 1.0))
        assert np.allclose(trace, trace[0])

    def test_empty_scales_rejected(self, autopower2, flow):
        c2 = config_by_name("C2")
        gemm = workload_by_name("gemm")
        events = flow.run(c2, gemm).events
        with pytest.raises(ValueError):
            autopower2.predict_trace(c2, events, gemm, np.array([]))
