"""Tests for the central REPRO_* environment-variable registry."""

import os

import pytest

from repro import env


class TestRegistry:
    def test_every_knob_is_declared_with_doc(self):
        assert set(env.REGISTRY) == {
            "REPRO_JOBS",
            "REPRO_NO_KERNEL",
            "REPRO_NO_FLOW_CACHE",
            "REPRO_FLOW_CACHE_DIR",
            "REPRO_FLOW_CACHE_MAX_MB",
            "REPRO_CHAOS_DIR",
            "REPRO_BENCH_JSON",
        }
        for var in env.REGISTRY.values():
            assert var.doc.strip(), f"{var.name} has no docstring"

    def test_unknown_name_is_a_programming_error(self):
        with pytest.raises(KeyError):
            env.get_str("REPRO_NOT_DECLARED")

    def test_reads_are_live_for_monkeypatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "thread:4")
        assert env.get_str("REPRO_JOBS") == "thread:4"
        monkeypatch.delenv("REPRO_JOBS")
        assert env.get_str("REPRO_JOBS") is None

    def test_blank_counts_as_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "   ")
        assert env.get_str("REPRO_JOBS") is None
        assert not env.is_set("REPRO_JOBS")


class TestTypedAccessors:
    def test_bool_truthy_spellings(self, monkeypatch):
        for value in ("1", "true", "YES", "On"):
            monkeypatch.setenv("REPRO_NO_KERNEL", value)
            assert env.get_bool("REPRO_NO_KERNEL") is True
        for value in ("0", "false", "no", "off"):
            monkeypatch.setenv("REPRO_NO_KERNEL", value)
            assert env.get_bool("REPRO_NO_KERNEL") is False
        monkeypatch.delenv("REPRO_NO_KERNEL")
        assert env.get_bool("REPRO_NO_KERNEL") is False

    def test_float_with_default_and_malformed(self, monkeypatch):
        assert env.get_float("REPRO_FLOW_CACHE_MAX_MB") == 512.0
        monkeypatch.setenv("REPRO_FLOW_CACHE_MAX_MB", "64")
        assert env.get_float("REPRO_FLOW_CACHE_MAX_MB") == 64.0
        monkeypatch.setenv("REPRO_FLOW_CACHE_MAX_MB", "lots")
        assert env.get_float("REPRO_FLOW_CACHE_MAX_MB") == 512.0

    def test_path_is_absolute_and_user_expanded(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FLOW_CACHE_DIR", str(tmp_path / "c"))
        assert env.get_path("REPRO_FLOW_CACHE_DIR") == str(tmp_path / "c")
        monkeypatch.setenv("REPRO_FLOW_CACHE_DIR", "~/cache")
        resolved = env.get_path("REPRO_FLOW_CACHE_DIR")
        assert os.path.isabs(resolved)
        assert "~" not in resolved

    def test_explicit_environ_mapping_wins(self):
        value = env.get_path(
            "REPRO_CHAOS_DIR", environ={"REPRO_CHAOS_DIR": "/tmp/chaos"}
        )
        assert value == "/tmp/chaos"
        assert env.get_path("REPRO_CHAOS_DIR", environ={}) is None


class TestTables:
    def test_markdown_table_has_one_row_per_knob(self):
        table = env.markdown_table()
        lines = table.strip().splitlines()
        assert lines[0].startswith("| Variable ")
        assert len(lines) == 2 + len(env.REGISTRY)  # header + rule + rows

    def test_plain_table_mentions_defaults(self):
        text = env.plain_table()
        assert "512.0" in text
        assert "REPRO_NO_KERNEL" in text
