"""Tests for the experiment harness (fast paths)."""

import pytest

from repro.experiments import fig1_breakdown, submodels, table1_example, table4_trace
from repro.experiments.runner import TRAIN_SETS, train_configs_for
from repro.experiments.runner import test_configs_for as holdout_configs_for
from repro.experiments.tables import format_table


class TestTables:
    def test_format_table_basic(self):
        out = format_table(["a", "b"], [["x", 1.5], ["long-cell", 2.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.500" in out

    def test_format_table_title(self):
        out = format_table(["a"], [["x"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestSplits:
    def test_train_sets_cover_budgets(self):
        assert set(TRAIN_SETS) == {2, 3, 4, 5, 6}

    def test_extremes_always_included(self):
        for names in TRAIN_SETS.values():
            assert "C1" in names
            assert "C15" in names

    def test_train_test_disjoint_and_complete(self):
        for n in TRAIN_SETS:
            train = {c.name for c in train_configs_for(n)}
            test = {c.name for c in holdout_configs_for(n)}
            assert not train & test
            assert len(train) + len(test) == 15

    def test_unknown_budget(self):
        with pytest.raises(KeyError):
            train_configs_for(9)


class TestFig1(object):
    def test_breakdown_shares(self, flow):
        result = fig1_breakdown.run(flow)
        assert sum(result.overall.values()) == pytest.approx(1.0)
        # Observation 1: clock + SRAM dominate.
        assert result.clock_plus_sram > 0.55
        assert len(result.per_config) == 15

    def test_rows_render(self, flow):
        result = fig1_breakdown.run(flow)
        assert len(result.rows()) == 16  # overall + 15 configs


class TestTable1(object):
    def test_laws_match_paper(self, flow):
        result = table1_example.run(flow)
        assert "240" in result.capacity_law
        assert "FetchWidth" in result.capacity_law
        assert "DecodeWidth" in result.capacity_law
        assert result.throughput_law.startswith("30 * FetchWidth")
        assert result.all_exact


class TestSubmodels(object):
    def test_paper_bands(self, flow):
        result = submodels.run(flow)
        # Paper: R & g MAPE 6.93 % @ 2 configs; block info ~0 MAPE.
        assert result.mean_reg_and_gate_mape < 7.0
        assert result.mean_block_mape < 0.5

    def test_rows_cover_components_and_positions(self, flow):
        result = submodels.run(flow)
        assert len(result.register_count_mape) == 22
        assert len(result.block_width_mape) == 14


class TestTable4(object):
    def test_trace_errors_small(self, flow):
        result = table4_trace.run(flow, max_windows=200, n_anchors=17)
        assert len(result.rows_) == 6  # 2 workloads x 3 configs
        for row in result.rows_:
            assert row.average_error < 15.0
            assert row.max_power_error < 25.0

    def test_rows_render(self, flow):
        result = table4_trace.run(flow, configs=("C2",), max_windows=50, n_anchors=9)
        assert len(result.rows()) == 2
