"""Tests for the CLI experiment runner."""

import pytest

from repro.cli import EXPERIMENTS, main
from repro.parallel import get_default_jobs


class TestCli:
    def test_listing_returns_zero(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "table4" in out

    def test_unknown_experiment_exits_nonzero_with_message(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'fig99'" in err
        assert "fig4" in err  # the message lists the valid names

    def test_jobs_flag_parses_and_propagates(self, monkeypatch, capsys):
        seen = {}

        def probe():
            seen["jobs"] = get_default_jobs()

        monkeypatch.setitem(EXPERIMENTS, "probe", (probe, "test probe"))
        assert main(["--jobs", "3", "probe"]) == 0
        assert seen["jobs"] == 3
        # The session default is restored once the run finishes.
        assert get_default_jobs() is None

    def test_jobs_flag_rejects_garbage(self, capsys):
        with pytest.raises(SystemExit):
            main(["--jobs", "two", "fig1"])

    def test_jobs_default_is_unset(self, monkeypatch):
        seen = {}

        def probe():
            seen["jobs"] = get_default_jobs()

        monkeypatch.setitem(EXPERIMENTS, "probe", (probe, "test probe"))
        assert main(["probe"]) == 0
        assert seen["jobs"] is None

    def test_registry_covers_paper_artifacts(self):
        for name in ("fig1", "fig4", "fig6", "fig7", "fig8", "table1", "table4"):
            assert name in EXPERIMENTS

    def test_fig1_runs_end_to_end(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "power-group breakdown" in out
        assert "clock + SRAM share" in out

    def test_table1_runs_end_to_end(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "240" in out
        assert "all shapes exact: True" in out
