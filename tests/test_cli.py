"""Tests for the CLI experiment runner."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_listing_returns_zero(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "table4" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_registry_covers_paper_artifacts(self):
        for name in ("fig1", "fig4", "fig6", "fig7", "fig8", "table1", "table4"):
            assert name in EXPERIMENTS

    def test_fig1_runs_end_to_end(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "power-group breakdown" in out
        assert "clock + SRAM share" in out

    def test_table1_runs_end_to_end(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "240" in out
        assert "all shapes exact: True" in out
